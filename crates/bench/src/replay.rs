//! Workload capture and replay over the durable query log.
//!
//! `reproduce capture` runs a deterministic Table-1-derived workload
//! through a full [`Engine`] with the qlog enabled, producing a JSONL
//! baseline: every query with its timings, plan feedback, and result
//! digest. `reproduce replay` rebuilds the same graph (same generator
//! seed), re-runs every recorded query against the *current* build, and
//! compares result digests — a digest mismatch is a semantic regression
//! and hard-fails — alongside latency and cardinality deltas.

use std::sync::Arc;

use nepal_core::{digest_result, BackendRegistry, Engine, NativeBackend};
use nepal_obs::{QlogRecord, QueryLog};

use crate::{build_virtualized, table1_queries};

/// The deterministic capture workload: Table-1 family instances wrapped as
/// full Nepal queries, plus aggregate heads so the digest covers the
/// result-processing layer too.
pub fn workload_queries(seed: u64, instances: usize) -> Vec<String> {
    let (snap, _) = build_virtualized(seed);
    let mut queries = Vec::new();
    for (_, rpes) in table1_queries(&snap, instances) {
        for rpe in rpes.into_iter().take(instances) {
            queries.push(format!("Retrieve P From PATHS P Where P MATCHES {rpe}"));
        }
    }
    queries.push("Select count(P) From PATHS P Where P MATCHES VNF()->[Vertical()]{1,6}->Host()".to_string());
    queries
        .push("Select count(distinct P) From PATHS P Where P MATCHES Host()->[ConnectedTo()]{1,2}->Host()".to_string());
    queries
}

/// A fresh native engine over the seed-determined virtualized snapshot.
fn fresh_engine(seed: u64) -> Engine {
    let (snap, _) = build_virtualized(seed);
    Engine::new(BackendRegistry::new("native", Box::new(NativeBackend::new(Arc::new(snap.graph)))))
}

/// Capture the workload into a qlog at `path`. Returns the number of
/// queries executed (= records written).
pub fn capture_workload(path: &str, instances: usize, seed: u64) -> std::io::Result<usize> {
    // Start the baseline from an empty live file; earlier captures would
    // otherwise replay twice.
    let _ = std::fs::remove_file(path);
    let queries = workload_queries(seed, instances);
    let mut engine = fresh_engine(seed);
    engine.enable_qlog(path, 64 * 1024 * 1024, 2)?;
    for q in &queries {
        let _ = engine.query(q);
    }
    Ok(queries.len())
}

/// One replayed query compared against its recorded baseline.
#[derive(Debug, Clone)]
pub struct ReplayRow {
    pub query: String,
    pub fingerprint: u64,
    pub base_ns: u64,
    pub base_rows: u64,
    pub base_digest: u64,
    pub base_error: bool,
    pub cur_ns: u64,
    pub cur_rows: u64,
    pub cur_digest: u64,
    pub cur_error: bool,
    pub digest_match: bool,
}

/// The replay verdict over a whole captured workload.
#[derive(Debug, Clone, Default)]
pub struct ReplayReport {
    pub total: usize,
    pub digest_mismatches: usize,
    /// Queries whose error-ness changed (ok→error or error→ok).
    pub error_changes: usize,
    pub base_total_ns: u64,
    pub cur_total_ns: u64,
    pub rows: Vec<ReplayRow>,
}

impl ReplayReport {
    /// Current wall-clock over baseline wall-clock (successful queries
    /// only); > 1 means the current build is slower.
    pub fn latency_ratio(&self) -> f64 {
        if self.base_total_ns == 0 {
            1.0
        } else {
            self.cur_total_ns as f64 / self.base_total_ns as f64
        }
    }

    pub fn passed(&self) -> bool {
        self.digest_mismatches == 0 && self.error_changes == 0
    }
}

/// Replay a captured qlog against a freshly built engine (same generator
/// seed as the capture). Reads only the live log generation.
pub fn replay_qlog(path: &str, seed: u64) -> std::io::Result<ReplayReport> {
    let records = QueryLog::read_records(path)?;
    let mut engine = fresh_engine(seed);
    let mut report = ReplayReport::default();
    for rec in &records {
        let row = replay_one(&mut engine, rec);
        report.total += 1;
        if !row.digest_match {
            report.digest_mismatches += 1;
        }
        if row.base_error != row.cur_error {
            report.error_changes += 1;
        }
        if !row.base_error && !row.cur_error {
            report.base_total_ns += row.base_ns;
            report.cur_total_ns += row.cur_ns;
        }
        report.rows.push(row);
    }
    Ok(report)
}

fn replay_one(engine: &mut Engine, rec: &QlogRecord) -> ReplayRow {
    let base_error = rec.error.is_some();
    let (cur_ns, cur_rows, cur_digest, cur_error) = match engine.query_profiled(&rec.query) {
        Ok((result, profile)) => (profile.total_ns, result.rows.len() as u64, digest_result(&result), false),
        Err(_) => (0, 0, 0, true),
    };
    // Errors carry no digest: error-vs-error matches, ok-vs-error doesn't.
    let digest_match = if base_error || cur_error { base_error == cur_error } else { rec.digest == cur_digest };
    ReplayRow {
        query: rec.query.clone(),
        fingerprint: rec.fingerprint,
        base_ns: rec.total_ns,
        base_rows: rec.rows,
        base_digest: rec.digest,
        base_error,
        cur_ns,
        cur_rows,
        cur_digest,
        cur_error,
        digest_match,
    }
}

/// Render the replay verdict for the terminal.
pub fn format_replay(report: &ReplayReport) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "Replay: {} quer{} — {} digest mismatch(es), {} error change(s), latency {:.2}x baseline\n",
        report.total,
        if report.total == 1 { "y" } else { "ies" },
        report.digest_mismatches,
        report.error_changes,
        report.latency_ratio()
    ));
    for r in report.rows.iter().filter(|r| !r.digest_match || r.base_error != r.cur_error) {
        s.push_str(&format!(
            "  MISMATCH {:016x} rows {}->{} digest {:016x}->{:016x}\n    {}\n",
            r.fingerprint, r.base_rows, r.cur_rows, r.base_digest, r.cur_digest, r.query
        ));
    }
    s.push_str(if report.passed() { "replay PASSED\n" } else { "replay FAILED\n" });
    s
}

/// Render the replay verdict as the `BENCH_replay.json` document.
pub fn replay_json(report: &ReplayReport) -> String {
    let rows: Vec<String> = report
        .rows
        .iter()
        .map(|r| {
            format!(
                "{{\"query\":{:?},\"fp\":\"{:016x}\",\"base_ns\":{},\"cur_ns\":{},\"base_rows\":{},\"cur_rows\":{},\
                 \"base_digest\":\"{:016x}\",\"cur_digest\":\"{:016x}\",\"digest_match\":{},\"base_error\":{},\"cur_error\":{}}}",
                r.query,
                r.fingerprint,
                r.base_ns,
                r.cur_ns,
                r.base_rows,
                r.cur_rows,
                r.base_digest,
                r.cur_digest,
                r.digest_match,
                r.base_error,
                r.cur_error
            )
        })
        .collect();
    format!(
        "{{\n\"total\":{},\n\"digest_mismatches\":{},\n\"error_changes\":{},\n\"latency_ratio\":{:.3},\n\
         \"base_total_ns\":{},\n\"cur_total_ns\":{},\n\"rows\":[\n  {}\n]\n}}\n",
        report.total,
        report.digest_mismatches,
        report.error_changes,
        report.latency_ratio(),
        report.base_total_ns,
        report.cur_total_ns,
        rows.join(",\n  ")
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_then_replay_has_zero_mismatches() {
        let dir = std::env::temp_dir().join(format!("nepal-replay-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("workload.jsonl");
        let path = path.to_str().unwrap();
        let n = capture_workload(path, 2, 42).unwrap();
        assert!(n >= 6, "captured {n} queries");
        let records = QueryLog::read_records(path).unwrap();
        assert_eq!(records.len(), n, "one record per query");
        assert!(records.iter().all(|r| r.error.is_none()));
        assert!(records.iter().any(|r| !r.feedback.vars.is_empty()), "plan feedback recorded");
        // Same seed, same build: digests must all match.
        let report = replay_qlog(path, 42).unwrap();
        assert_eq!(report.total, n);
        assert_eq!(report.digest_mismatches, 0, "{}", format_replay(&report));
        assert!(report.passed());
        let json = replay_json(&report);
        assert!(json.contains("\"digest_mismatches\":0"), "{json}");
        // A different seed builds a different graph: digests must differ
        // for at least one query (the anchors exist under both seeds only
        // sometimes — error changes also count as failure).
        let bad = replay_qlog(path, 7).unwrap();
        assert!(!bad.passed(), "replay against a different graph must fail");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
