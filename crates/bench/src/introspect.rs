//! Workload-introspection drill (DESIGN.md §5h): run the tiered workload
//! through a fully instrumented engine and verify the three introspection
//! surfaces tell a complete, machine-checkable story —
//!
//! 1. per-fingerprint cost attribution on `/top.json` (cpu-ns, rows,
//!    bytes, materializations per statement),
//! 2. a nonzero store access heatmap for **every** generated class
//!    (`nepal_heat_*` gauge families), and
//! 3. a populated metrics-history ring on `/history.json` with at least
//!    two snapshots.
//!
//! The drill drives the same [`Telemetry::handle`] router the HTTP
//! endpoint uses, so a green run certifies the operator-visible routes,
//! not just the in-process tables.

use std::sync::Arc;
use std::time::Duration;

use nepal_core::{BackendRegistry, Engine, NativeBackend};
use nepal_graph::{StoreGauges, TemporalGraph};
use nepal_obs::{HistoryRing, StmtSort, Telemetry};
use nepal_workload::{generate_tier_churned, SizeTier};

/// What the drill observed on the three introspection surfaces.
#[derive(Debug, Clone)]
pub struct IntrospectReport {
    pub tier: SizeTier,
    /// Engine queries executed through the instrumented path.
    pub queries: usize,
    /// Distinct fingerprints in the statement-stats table.
    pub fingerprints: usize,
    /// Sums over the top table — nonzero proves attribution flowed.
    pub attributed_cpu_ns: u64,
    pub attributed_rows: u64,
    pub attributed_bytes: u64,
    pub attributed_materializations: u64,
    /// Classes present in the generated store / classes with read heat.
    pub classes_total: usize,
    pub classes_hot: usize,
    /// Classes the heatmap never saw (must be empty to pass).
    pub cold_classes: Vec<String>,
    /// Snapshots admitted to the metrics-history ring.
    pub history_len: usize,
    /// HTTP status codes of the three routes.
    pub top_status: u16,
    pub history_status: u16,
    pub metrics_status: u16,
}

impl IntrospectReport {
    /// Did every introspection surface carry real data?
    pub fn passed(&self) -> bool {
        self.fingerprints >= 1
            && self.attributed_cpu_ns > 0
            && self.attributed_rows > 0
            && self.attributed_bytes > 0
            && self.classes_total > 0
            && self.cold_classes.is_empty()
            && self.history_len >= 2
            && self.top_status == 200
            && self.history_status == 200
            && self.metrics_status == 200
    }
}

/// Read every class through the store's hot paths so the heatmap has
/// something to say about all of them: one extent scan per class plus a
/// few materializing version reads (which also count bytes read).
fn heat_pass(g: &TemporalGraph) {
    for row in g.class_memory() {
        let uids: Vec<_> = g.extent_exact(row.class).iter().copied().take(8).collect();
        for uid in uids {
            let last = g.versions(uid).len().saturating_sub(1);
            let _ = g.fields_of(uid, last);
        }
    }
}

/// Run the drill at `tier`. Builds the churned generator graph, runs the
/// sweep families through an [`Engine`] with statement stats on, performs
/// a per-class read pass, ticks the history ring twice, then audits the
/// `/top.json`, `/history.json`, and `/metrics` routes.
pub fn run_introspect(tier: SizeTier, seed: u64) -> IntrospectReport {
    let (topo, _) = generate_tier_churned(tier, seed);
    let graph = Arc::new(topo.graph);

    let registry = BackendRegistry::new("native", Box::new(NativeBackend::new(graph.clone())));
    let mut engine = Engine::new(registry);
    let gauges = Arc::new(StoreGauges::register(&engine.metrics));
    let stmt = engine.enable_stmt(512);

    let telemetry = Arc::new(Telemetry::new(engine.metrics.clone(), engine.slow_log.clone(), engine.tracer.clone()));
    telemetry.set_stmt(stmt.clone());
    // Minimum (1ms) resolution, so the drill controls snapshot count
    // deterministically instead of sleeping through wall time.
    let history = Arc::new(HistoryRing::new(Duration::from_millis(1), 64));
    telemetry.set_history(history.clone());
    {
        let (gauges, graph) = (gauges.clone(), graph.clone());
        telemetry.add_refresher(move || gauges.refresh(&graph));
    }

    // The tier sweep families as engine statements — unanchored, so the
    // anchor scan fans out over the class extents and the meters see real
    // row/byte traffic. Three repetitions accumulate per-fingerprint calls.
    let families = [
        "Retrieve P From PATHS P Where P MATCHES VNF()->[Vertical()]{1,6}->Host()",
        "Retrieve P From PATHS P Where P MATCHES Service()->[Vertical()]{1,8}->Host()",
        "Retrieve P From PATHS P Where P MATCHES Container()->[VmNetwork()]->VirtualNetwork()",
    ];
    let mut queries = 0usize;
    for _ in 0..3 {
        for q in &families {
            let _ = engine.query(q);
            queries += 1;
        }
    }

    heat_pass(&graph);
    // The ring clamps resolution to 1ms, so back-to-back ticks in the same
    // millisecond are rejected — tick until two snapshots are admitted.
    let mut admitted = 0;
    while admitted < 2 {
        if telemetry.tick_history() {
            admitted += 1;
        } else {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    let top = stmt.top(64, StmtSort::Cpu);
    let fingerprints = top.len();
    let attributed_cpu_ns: u64 = top.iter().map(|e| e.cpu_ns_total).sum();
    let attributed_rows: u64 = top.iter().map(|e| e.rows).sum();
    let attributed_bytes: u64 = top.iter().map(|e| e.bytes_scanned).sum();
    let attributed_materializations: u64 = top.iter().map(|e| e.materializations).sum();

    let rows = graph.class_memory();
    let classes_total = rows.len();
    let mut cold_classes = Vec::new();
    for row in &rows {
        let heat = graph.class_heat(row.class);
        // Property-less classes (bare relationship edges) can never
        // accumulate bytes_read; read activity alone makes them hot.
        let wants_bytes = !graph.schema().all_fields(row.class).is_empty();
        if !heat.is_hot() || (wants_bytes && heat.bytes_read == 0) {
            cold_classes.push(row.name.clone());
        }
    }
    let classes_hot = classes_total - cold_classes.len();

    let (top_status, _, _) = telemetry.handle("/top.json");
    let (history_status, _, _) = telemetry.handle("/history.json");
    let (metrics_status, _, metrics_text) = telemetry.handle("/metrics");
    debug_assert!(metrics_text.contains("nepal_heat_scans"), "heat gauges must be exported on scrape");

    IntrospectReport {
        tier,
        queries,
        fingerprints,
        attributed_cpu_ns,
        attributed_rows,
        attributed_bytes,
        attributed_materializations,
        classes_total,
        classes_hot,
        cold_classes,
        history_len: history.len(),
        top_status,
        history_status,
        metrics_status,
    }
}

/// Render the drill outcome for the terminal.
pub fn format_introspect(r: &IntrospectReport) -> String {
    format!(
        "Workload-introspection drill ({} tier)\n\
         statements: {} query execution(s) -> {} fingerprint(s) attributed\n\
         attribution: {} cpu-ns  {} row(s)  {} byte(s)  {} materialization(s)\n\
         heatmap: {}/{} class(es) hot{}\n\
         history: {} snapshot(s) in the ring\n\
         routes: /top.json {}  /history.json {}  /metrics {}\n\
         verdict: {}\n",
        r.tier.name(),
        r.queries,
        r.fingerprints,
        r.attributed_cpu_ns,
        r.attributed_rows,
        r.attributed_bytes,
        r.attributed_materializations,
        r.classes_hot,
        r.classes_total,
        if r.cold_classes.is_empty() { String::new() } else { format!("  COLD: {}", r.cold_classes.join(", ")) },
        r.history_len,
        r.top_status,
        r.history_status,
        r.metrics_status,
        if r.passed() { "PASS" } else { "FAIL" }
    )
}

/// Render the drill as the `BENCH_introspect.json` document.
pub fn introspect_json(r: &IntrospectReport) -> String {
    let cold: Vec<String> = r.cold_classes.iter().map(|c| format!("{c:?}")).collect();
    format!(
        "{{\n\"tier\":{:?},\n\"queries\":{},\n\"fingerprints\":{},\n\
         \"attributed_cpu_ns\":{},\n\"attributed_rows\":{},\n\"attributed_bytes\":{},\n\
         \"attributed_materializations\":{},\n\"classes_total\":{},\n\"classes_hot\":{},\n\
         \"cold_classes\":[{}],\n\"history_len\":{},\n\
         \"top_status\":{},\n\"history_status\":{},\n\"metrics_status\":{},\n\"passed\":{}\n}}\n",
        r.tier.name(),
        r.queries,
        r.fingerprints,
        r.attributed_cpu_ns,
        r.attributed_rows,
        r.attributed_bytes,
        r.attributed_materializations,
        r.classes_total,
        r.classes_hot,
        cold.join(","),
        r.history_len,
        r.top_status,
        r.history_status,
        r.metrics_status,
        r.passed()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_drill_attributes_heats_and_snapshots() {
        let r = run_introspect(SizeTier::Toy, 42);
        assert!(r.fingerprints >= 3, "each family has its own fingerprint, got {}", r.fingerprints);
        assert!(r.attributed_cpu_ns > 0 && r.attributed_rows > 0 && r.attributed_bytes > 0);
        assert!(r.cold_classes.is_empty(), "cold classes: {:?}", r.cold_classes);
        assert!(r.history_len >= 2);
        assert!(r.passed(), "{}", format_introspect(&r));
        let json = introspect_json(&r);
        assert!(json.contains("\"passed\":true"), "{json}");
        assert!(json.contains("\"attributed_cpu_ns\""));
    }
}
