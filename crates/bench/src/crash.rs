//! Crash-forensics drill: induce a worker panic in a loaded server and
//! verify the flight recorder leaves a usable diagnostics bundle behind.
//!
//! The drill is the CI smoke for the black-box recorder (DESIGN.md §5f):
//! start a bounded [`GremlinServer`] with the process-wide recorder on and
//! the panic hook installed, drive it with concurrent clients so several
//! worker threads accumulate wide events, then send the magic
//! [`CHAOS_PANIC_REQUEST_ID`] request. The induced panic is caught by the
//! worker's panic barrier (the client gets a status-500 frame and the
//! server lives on), but the process-wide panic hook still runs first —
//! writing a snapshot bundle exactly as a real crash would. The drill then
//! re-parses the bundle from disk and checks it tells a useful story:
//! valid JSON, a panic trigger, and pre-anomaly events from at least two
//! distinct threads.

use std::path::{Path, PathBuf};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use nepal_core::{BackendRegistry, Engine, NativeBackend, StandardSlos};
use nepal_gremlin::protocol::{read_frame, request, write_frame};
use nepal_gremlin::{
    bytecode_to_json, parse_json, property_graph_from, shared_graph, GStep, GremlinClient, GremlinServer, Json,
    ProtoError, ServeConfig, CHAOS_PANIC_REQUEST_ID,
};
use nepal_obs::{install_panic_hook, HistoryRing, SnapshotConfig, Telemetry};

use crate::build_virtualized;

/// What the drill found in the bundle it recovered from disk.
#[derive(Debug, Clone)]
pub struct CrashReport {
    /// The bundle written by the panic hook.
    pub bundle_path: PathBuf,
    /// The bundle's `trigger` field (expected: `"panic"`).
    pub trigger: String,
    /// Wide events captured in the bundle.
    pub events: usize,
    /// Distinct ring threads contributing events.
    pub distinct_threads: usize,
    /// Requests the load clients completed before the chaos request.
    pub load_ok: u64,
    /// The server's evaluation-panic counter (expected: exactly 1).
    pub evaluation_panics: u64,
    /// The status code the chaos request was answered with (expected 500).
    pub chaos_status: u64,
    /// Statements attributed in the bundle's top-queries section.
    pub stmt_tracked: usize,
    /// Metrics-history snapshots embedded in the bundle.
    pub history_len: usize,
}

impl CrashReport {
    /// Did the drill prove the recorder works end to end?
    pub fn passed(&self) -> bool {
        self.trigger == "panic"
            && self.events > 0
            && self.distinct_threads >= 2
            && self.evaluation_panics == 1
            && self.chaos_status == 500
            && self.stmt_tracked >= 1
            && self.history_len >= 1
    }
}

/// Run the drill. `dir` receives the snapshot bundles (created if needed);
/// pass a scratch directory — existing bundles in it are rotated like any
/// other snapshot.
pub fn run_crash_forensics(dir: &Path, seed: u64) -> Result<CrashReport, String> {
    // Recorder on for the whole drill (leave it on afterwards: the process
    // is a one-shot CLI, and the panic hook stays installed anyway).
    let rec = nepal_obs::flight::recorder();
    rec.set_enabled(true);

    // Engine + telemetry: the bundle composes metrics/alerts/slow/traces
    // from a real engine, so run the load through one worth snapshotting.
    let (snap, _) = build_virtualized(seed);
    let graph = Arc::new(snap.graph);
    let registry = BackendRegistry::new("native", Box::new(NativeBackend::new(graph.clone())));
    let mut engine = Engine::new(registry);
    let slo = engine.install_standard_slos(&StandardSlos::default());
    let telemetry = Arc::new(Telemetry::new(engine.metrics.clone(), engine.slow_log.clone(), engine.tracer.clone()));
    telemetry.set_slo(slo);
    telemetry.set_flight(rec.clone());
    telemetry.set_snapshots(SnapshotConfig { dir: dir.to_path_buf(), keep: 4, window: Duration::from_secs(60) });
    telemetry.set_build_info(vec![("bin".to_string(), "crash-forensics".to_string())]);
    // Statement attribution and metrics history ride along in the bundle:
    // the post-crash story should say *what* was running and *how* the
    // gauges were trending, not just that a panic happened.
    let stmt = engine.enable_stmt(64);
    telemetry.set_stmt(stmt);
    let history = Arc::new(HistoryRing::new(Duration::from_millis(0), 32));
    telemetry.set_history(history);
    install_panic_hook(telemetry.clone());

    // A few engine queries so the query-lifecycle events are on the record
    // alongside the server-side ones.
    for q in [
        "Retrieve P From PATHS P Where P MATCHES VM()->[Vertical()]{1,4}->Host()",
        "Retrieve P From PATHS P Where P MATCHES VNF()->[Vertical()]{1,6}->Host()",
    ] {
        let _ = engine.query(q);
    }
    // Two history ticks (1ms apart — the ring's minimum resolution) so the
    // bundle's history tail is non-trivial before the anomaly.
    let mut admitted = 0;
    while admitted < 2 {
        if telemetry.tick_history() {
            admitted += 1;
        } else {
            std::thread::sleep(Duration::from_millis(1));
        }
    }

    let pg = shared_graph(property_graph_from(&graph));
    let cfg = ServeConfig { workers: 3, queue_depth: 8, ..ServeConfig::default() };
    let mut server = GremlinServer::start_cfg(pg, "127.0.0.1:0", None, cfg).map_err(|e| format!("bind server: {e}"))?;
    let addr = server.addr;

    // Concurrent load: several client threads, fresh connection per
    // request, so multiple worker threads write RequestDone events.
    let handles: Vec<_> = (0..4)
        .map(|_| {
            std::thread::spawn(move || {
                let mut ok = 0u64;
                for _ in 0..20 {
                    let outcome = std::net::TcpStream::connect(addr)
                        .map_err(ProtoError::Io)
                        .and_then(|s| GremlinClient::new(s).submit(&[GStep::V(vec![]), GStep::Count]));
                    if outcome.is_ok() {
                        ok += 1;
                    }
                }
                ok
            })
        })
        .collect();
    let load_ok: u64 = handles.into_iter().map(|h| h.join().expect("load client panicked")).sum();

    // The anomaly: a chaos request that panics inside the worker's panic
    // barrier. The panic hook writes the bundle before the barrier catches.
    let mut conn = server.connect().map_err(|e| format!("connect: {e}"))?;
    let req = request(CHAOS_PANIC_REQUEST_ID, bytecode_to_json(&[GStep::V(vec![]), GStep::Count]));
    write_frame(&mut conn, &req).map_err(|e| format!("chaos write: {e}"))?;
    let resp = read_frame(&mut conn).map_err(|e| format!("chaos read: {e}"))?;
    let chaos_status = resp.get("status").and_then(|s| s.get("code")).and_then(|c| c.as_u64()).unwrap_or(0);
    drop(conn);

    let evaluation_panics = server.stats.evaluation_panics.load(Ordering::Relaxed);
    let report = server.drain(Duration::from_millis(2000));
    if !report.clean {
        return Err("drain did not finish within its budget".to_string());
    }

    // Recover the bundle from disk the way an operator would: newest
    // panic-triggered snapshot in the directory.
    let (name, _, _) = telemetry
        .list_snapshots()
        .into_iter()
        .filter(|(n, _, _)| n.ends_with("-panic.json"))
        .max_by(|a, b| a.2.cmp(&b.2))
        .ok_or("no panic-triggered bundle on disk")?;
    let bundle_path = dir.join(&name);
    let text = std::fs::read_to_string(&bundle_path).map_err(|e| format!("read bundle: {e}"))?;
    let doc = parse_json(&text).map_err(|e| format!("bundle is not valid JSON: {e}"))?;
    let trigger = doc.get("trigger").and_then(|t| t.as_str()).unwrap_or("").to_string();
    let events = match doc.get("flight").and_then(|f| f.get("events")) {
        Some(Json::Arr(a)) => a.clone(),
        _ => Vec::new(),
    };
    let mut threads: Vec<u64> = events.iter().filter_map(|e| e.get("thread").and_then(|t| t.as_u64())).collect();
    threads.sort_unstable();
    threads.dedup();
    let stmt_tracked = match doc.get("stmt").and_then(|s| s.get("statements")) {
        Some(Json::Arr(a)) => a.len(),
        _ => 0,
    };
    let history_len = doc.get("history").and_then(|h| h.get("len")).and_then(|l| l.as_u64()).unwrap_or(0) as usize;

    Ok(CrashReport {
        bundle_path,
        trigger,
        events: events.len(),
        distinct_threads: threads.len(),
        load_ok,
        evaluation_panics,
        chaos_status,
        stmt_tracked,
        history_len,
    })
}

/// Render the drill outcome for the terminal.
pub fn format_crash_report(r: &CrashReport) -> String {
    format!(
        "Crash-forensics drill: induced worker panic under load\n\
         load: {} request(s) completed before the anomaly\n\
         chaos request answered with status {} (server survived; {} evaluation panic(s) counted)\n\
         bundle: {}\n\
         trigger: {:?}  wide events: {}  distinct threads: {}\n\
         workload context: {} statement(s) attributed, {} history snapshot(s)\n\
         verdict: {}\n",
        r.load_ok,
        r.chaos_status,
        r.evaluation_panics,
        r.bundle_path.display(),
        r.trigger,
        r.events,
        r.distinct_threads,
        r.stmt_tracked,
        r.history_len,
        if r.passed() { "PASS" } else { "FAIL" }
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn induced_panic_leaves_a_parseable_bundle() {
        let dir = std::env::temp_dir().join(format!("nepal-crash-drill-{}", std::process::id()));
        let report = run_crash_forensics(&dir, 42).expect("drill runs");
        assert_eq!(report.trigger, "panic");
        assert_eq!(report.chaos_status, 500, "chaos request must be answered, not dropped");
        assert_eq!(report.evaluation_panics, 1);
        assert!(report.events > 0, "bundle must carry pre-anomaly wide events");
        assert!(report.distinct_threads >= 2, "events must come from >=2 threads, got {}", report.distinct_threads);
        assert!(report.stmt_tracked >= 1, "bundle must attribute the pre-crash statements");
        assert!(report.history_len >= 1, "bundle must carry the metrics-history tail");
        assert!(report.passed());
        std::fs::remove_dir_all(&dir).ok();
    }
}
