//! The `reproduce obs-report` experiment: the observability surface
//! benchmarked against the paper workloads.
//!
//! Four measurements, written to `BENCH_memory.json`:
//!
//! 1. **Memory growth under churn** — the virtualized service graph run
//!    through 60 simulated days of field updates and edge rewires, with a
//!    [`TemporalGraph::memory_report`] point every 10 days, and every
//!    point cross-checked against the brute-force
//!    [`TemporalGraph::memory_recount`] walk (worst relative error
//!    recorded; the acceptance bound is 1%).
//! 2. **Accounting overhead** — the Table-1 query workload timed twice on
//!    the same engine: queries alone, then queries + per-query store-gauge
//!    refresh + SLO evaluation. The delta is the price of keeping the
//!    resource gauges and burn-rate engine current on every request (CI
//!    gates this under 5%).
//! 3. **Healthy alerts** — the standard SLO rule set evaluated over the
//!    workload window; a healthy run reports zero firing rules.
//! 4. **Induced overload** — a deliberately impossible latency SLO
//!    (p99 ≤ 1ns) primed, breached by the workload, and then re-evaluated
//!    on an empty window: it must fire and then resolve, demonstrating the
//!    full alert lifecycle.

use std::sync::Arc;
use std::time::Instant;

use nepal_core::{BackendRegistry, Engine, NativeBackend, StandardSlos};
use nepal_graph::{StoreGauges, TemporalGraph};
use nepal_obs::{quantile_from_counts, SloEngine, SloRule};
use nepal_workload::{alive_edges, apply_churn, generate_virtualized, updatable_entities, ChurnParams, VirtParams};

use crate::table1_queries;

const DAY_US: i64 = 86_400_000_000;

/// One point of the memory-growth-under-churn curve.
#[derive(Debug, Clone)]
pub struct ChurnPoint {
    pub day: u32,
    pub versions: u64,
    pub entity_bytes: u64,
    pub adjacency_bytes: u64,
    pub unique_index_bytes: u64,
    pub journal_bytes: u64,
    pub total_bytes: u64,
}

/// The full obs-report outcome.
#[derive(Debug, Clone)]
pub struct ObsReport {
    pub churn_curve: Vec<ChurnPoint>,
    /// Worst `|report − recount| / recount` across every curve point and
    /// every reported figure (0.0 = exact agreement).
    pub recount_rel_err: f64,
    pub queries: usize,
    pub baseline_ms: f64,
    pub accounted_ms: f64,
    /// `(accounted − baseline) / baseline`, floored at 0 (timing jitter
    /// can make the accounted pass marginally faster).
    pub overhead_pct: f64,
    pub p50_ns: u64,
    pub p95_ns: u64,
    pub p99_ns: u64,
    pub healthy_firing: usize,
    pub overload_fired: bool,
    pub overload_resolved: bool,
}

fn report_versions(g: &TemporalGraph) -> u64 {
    g.class_memory().iter().map(|c| c.versions).sum()
}

/// Relative disagreement between two byte figures (0 when both are 0).
fn rel_err(a: u64, b: u64) -> f64 {
    if b == 0 {
        if a == 0 {
            0.0
        } else {
            1.0
        }
    } else {
        (a as f64 - b as f64).abs() / b as f64
    }
}

fn push_point(g: &TemporalGraph, day: u32, curve: &mut Vec<ChurnPoint>, worst: &mut f64) {
    let report = g.memory_report();
    let recount = g.memory_recount();
    for (a, b) in [
        (report.entity_bytes, recount.entity_bytes),
        (report.adjacency_bytes, recount.adjacency_bytes),
        (report.unique_index_bytes, recount.unique_index_bytes),
        (report.total_bytes, recount.total_bytes),
    ] {
        *worst = worst.max(rel_err(a, b));
    }
    curve.push(ChurnPoint {
        day,
        versions: report_versions(g),
        entity_bytes: report.entity_bytes,
        adjacency_bytes: report.adjacency_bytes,
        unique_index_bytes: report.unique_index_bytes,
        journal_bytes: report.journal_bytes,
        total_bytes: report.total_bytes,
    });
}

/// Run the whole experiment. `instances` bounds the per-family query
/// count (the CI smoke uses a handful; the default reproduce run uses 50).
pub fn run_obs_report(instances: usize, seed: u64) -> ObsReport {
    // 1. Memory growth under churn, report-vs-recount checked per point.
    let mut topo = generate_virtualized(VirtParams { seed, ..Default::default() });
    let mut curve = Vec::new();
    let mut worst_err = 0.0f64;
    push_point(&topo.graph, 0, &mut curve, &mut worst_err);
    let (step_days, steps) = (10u32, 6u32);
    let mut start_ts = topo.params.start_ts;
    for s in 1..=steps {
        // Recompute the eligible sets each step: rewires retire edge uids
        // and create fresh ones.
        let updatable = updatable_entities(&topo.graph, "status");
        let rewirable = alive_edges(&topo.graph);
        let params = ChurnParams {
            days: step_days,
            daily_update_fraction: 0.0016,
            daily_rewire_fraction: 0.001,
            seed: seed + s as u64,
        };
        apply_churn(&mut topo.graph, &updatable, &rewirable, start_ts, &params);
        start_ts += step_days as i64 * DAY_US;
        push_point(&topo.graph, s * step_days, &mut curve, &mut worst_err);
    }

    // 2. Accounting overhead over the Table-1 workload.
    let snap = generate_virtualized(VirtParams { seed, ..Default::default() });
    let queries: Vec<String> = table1_queries(&snap, instances)
        .into_iter()
        .flat_map(|(_, rpes)| rpes.into_iter().take(instances))
        .map(|rpe| format!("Retrieve P From PATHS P Where P MATCHES {rpe}"))
        .collect();
    let graph = Arc::new(snap.graph);
    let registry = BackendRegistry::new("native", Box::new(NativeBackend::new(graph.clone())));
    let mut engine = Engine::new(registry);
    let gauges = StoreGauges::register(&engine.metrics);
    // Generous thresholds: a healthy run must report zero firing rules
    // even on a slow CI box.
    let slo = engine.install_standard_slos(&StandardSlos {
        max_p99_ns: 5_000_000_000,
        max_error_ratio: 0.05,
        max_store_bytes: 4 << 30,
        max_qerror: 1e6,
    });
    slo.evaluate(); // prime the windows before the measured workload

    for q in &queries {
        let _ = engine.query(q); // warm-up pass
    }
    // Best-of-three per loop against run-to-run jitter. The overhead
    // numerator is the directly timed refresh+evaluate cost measured in
    // situ inside the accounted loop — differencing the two loop totals
    // would drown the real cost (µs per query) in workload jitter (ms).
    let mut baseline_ms = f64::INFINITY;
    let mut accounted_ms = f64::INFINITY;
    let mut observe_ms = f64::INFINITY;
    for _ in 0..3 {
        let t0 = Instant::now();
        for q in &queries {
            let _ = engine.query(q);
        }
        baseline_ms = baseline_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        let t1 = Instant::now();
        let mut obs = 0.0;
        for q in &queries {
            let _ = engine.query(q);
            let t = Instant::now();
            gauges.refresh(&graph);
            slo.evaluate();
            obs += t.elapsed().as_secs_f64() * 1e3;
        }
        accounted_ms = accounted_ms.min(t1.elapsed().as_secs_f64() * 1e3);
        observe_ms = observe_ms.min(obs);
    }
    let overhead_pct = if baseline_ms > 0.0 { (observe_ms / baseline_ms * 100.0).max(0.0) } else { 0.0 };

    // 3. Healthy outcome: latency/error/memory/q-error all inside target.
    gauges.refresh_deep(&graph);
    let healthy_firing = slo.evaluate().iter().filter(|s| s.state.is_firing()).count();

    // Workload latency quantiles from the engine histogram.
    let counts = engine
        .metrics
        .histogram_handle("nepal_query_duration_ns")
        .map(|h| h.bucket_counts())
        .unwrap_or([0; nepal_obs::HISTOGRAM_BUCKETS]);
    let (p50_ns, p95_ns, p99_ns) =
        (quantile_from_counts(&counts, 0.50), quantile_from_counts(&counts, 0.95), quantile_from_counts(&counts, 0.99));

    // 4. Induced overload: impossible latency target fires, then resolves
    // once the window drains.
    let overload = SloEngine::new(engine.metrics.clone());
    overload.add(SloRule::latency("induced-overload", "nepal_query_duration_ns", 0.99, 1));
    overload.evaluate(); // prime: absorb the cumulative history
    for q in queries.iter().take(5) {
        let _ = engine.query(q);
    }
    let overload_fired = overload.evaluate().iter().any(|s| s.state.is_firing());
    let overload_resolved = !overload.evaluate().iter().any(|s| s.state.is_firing());

    ObsReport {
        churn_curve: curve,
        recount_rel_err: worst_err,
        queries: queries.len(),
        baseline_ms,
        accounted_ms,
        overhead_pct,
        p50_ns,
        p95_ns,
        p99_ns,
        healthy_firing,
        overload_fired,
        overload_resolved,
    }
}

/// Render the report for the terminal.
pub fn format_obs_report(r: &ObsReport) -> String {
    let mut s = String::new();
    s.push_str("Observability report: accounting, SLO alerts, churn footprint\n");
    s.push_str(&format!(
        "{:>4} {:>10} {:>12} {:>12} {:>12} {:>12}\n",
        "day", "versions", "entity B", "adjacency B", "journal B", "total B"
    ));
    for p in &r.churn_curve {
        s.push_str(&format!(
            "{:>4} {:>10} {:>12} {:>12} {:>12} {:>12}\n",
            p.day, p.versions, p.entity_bytes, p.adjacency_bytes, p.journal_bytes, p.total_bytes
        ));
    }
    s.push_str(&format!("\nreport vs recount: worst relative error {:.6}% (bound 1%)\n", r.recount_rel_err * 100.0));
    s.push_str(&format!(
        "accounting overhead: {} queries, {:.1} ms bare vs {:.1} ms with refresh+SLO (observe cost {:.2}%)\n",
        r.queries, r.baseline_ms, r.accounted_ms, r.overhead_pct
    ));
    s.push_str(&format!("workload latency: p50 {}ns  p95 {}ns  p99 {}ns\n", r.p50_ns, r.p95_ns, r.p99_ns));
    s.push_str(&format!("healthy run: {} firing alert(s)\n", r.healthy_firing));
    s.push_str(&format!("induced overload: fired={} resolved={}\n", r.overload_fired, r.overload_resolved));
    s
}

/// Render the report as the `BENCH_memory.json` document.
pub fn obs_report_json(r: &ObsReport) -> String {
    let points: Vec<String> = r
        .churn_curve
        .iter()
        .map(|p| {
            format!(
                "{{\"day\":{},\"versions\":{},\"entity_bytes\":{},\"adjacency_bytes\":{},\
                 \"unique_index_bytes\":{},\"journal_bytes\":{},\"total_bytes\":{}}}",
                p.day,
                p.versions,
                p.entity_bytes,
                p.adjacency_bytes,
                p.unique_index_bytes,
                p.journal_bytes,
                p.total_bytes
            )
        })
        .collect();
    format!(
        "{{\n\"churn_curve\":[\n  {}\n],\n\
         \"recount_rel_err_pct\":{:.6},\n\
         \"queries\":{},\n\"baseline_ms\":{:.3},\n\"accounted_ms\":{:.3},\n\"overhead_pct\":{:.3},\n\
         \"latency_ns\":{{\"p50\":{},\"p95\":{},\"p99\":{}}},\n\
         \"healthy_firing\":{},\n\"overload_fired\":{},\n\"overload_resolved\":{}\n}}\n",
        points.join(",\n  "),
        r.recount_rel_err * 100.0,
        r.queries,
        r.baseline_ms,
        r.accounted_ms,
        r.overhead_pct,
        r.p50_ns,
        r.p95_ns,
        r.p99_ns,
        r.healthy_firing,
        r.overload_fired,
        r.overload_resolved
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn obs_report_smoke_holds_acceptance_shape() {
        let r = run_obs_report(2, 42);
        // Churn grows the footprint monotonically in versions and bytes.
        assert_eq!(r.churn_curve.len(), 7);
        assert!(r.churn_curve.last().unwrap().versions > r.churn_curve[0].versions);
        assert!(r.churn_curve.last().unwrap().total_bytes > r.churn_curve[0].total_bytes);
        // Incremental accounting agrees with the brute-force walk within 1%.
        assert!(r.recount_rel_err < 0.01, "recount err {}", r.recount_rel_err);
        // Healthy run: nothing firing; overload fires then resolves.
        assert_eq!(r.healthy_firing, 0);
        assert!(r.overload_fired);
        assert!(r.overload_resolved);
        let json = obs_report_json(&r);
        assert!(json.contains("\"churn_curve\""));
        assert!(json.contains("\"overload_fired\":true"));
    }
}
