//! Overload benchmark for the serving path: drive N concurrent clients
//! against a bounded [`GremlinServer`] at and beyond its admission
//! capacity, measuring throughput, latency quantiles, and shed rate.
//!
//! Two phases share one server: **at-capacity** (as many clients as
//! serving workers — nothing should shed) and **overload** (several times
//! the worker count — excess arrivals must be shed with explicit 503
//! frames, and everything that *is* admitted must still complete). Each
//! request uses a fresh connection, since admission is per-connection.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use nepal_gremlin::{property_graph_from, shared_graph, GStep, GremlinClient, GremlinServer, ProtoError, ServeConfig};

use crate::build_virtualized;

/// Knobs for one serve-load run.
#[derive(Debug, Clone)]
pub struct ServeLoadConfig {
    /// Serving worker pool size (`--max-inflight`).
    pub workers: usize,
    /// Bounded admission queue depth.
    pub queue_depth: usize,
    /// Requests each client issues per phase.
    pub requests_per_client: usize,
    /// Overload multiplier: the second phase runs `workers * overload_x`
    /// concurrent clients.
    pub overload_x: usize,
    /// Optional per-request deadline forwarded to the server.
    pub deadline: Option<Duration>,
}

impl Default for ServeLoadConfig {
    fn default() -> Self {
        ServeLoadConfig { workers: 2, queue_depth: 2, requests_per_client: 40, overload_x: 4, deadline: None }
    }
}

/// One phase of the load run.
#[derive(Debug, Clone)]
pub struct ServeLoadRow {
    pub phase: &'static str,
    pub clients: usize,
    pub ok: u64,
    pub shed: u64,
    pub timeouts: u64,
    pub errors: u64,
    pub elapsed_ms: f64,
    pub throughput_rps: f64,
    pub p50_us: u64,
    pub p95_us: u64,
    pub p99_us: u64,
    /// Shed requests / total requests attempted.
    pub shed_rate: f64,
}

fn quantile(sorted: &[u64], q: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * q).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Run one phase: `clients` threads, each issuing `requests` count
/// traversals over fresh connections.
fn run_phase(phase: &'static str, addr: std::net::SocketAddr, clients: usize, requests: usize) -> ServeLoadRow {
    let ok = Arc::new(AtomicU64::new(0));
    let shed = Arc::new(AtomicU64::new(0));
    let timeouts = Arc::new(AtomicU64::new(0));
    let errors = Arc::new(AtomicU64::new(0));
    let t0 = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|_| {
            let (ok, shed, timeouts, errors) = (ok.clone(), shed.clone(), timeouts.clone(), errors.clone());
            std::thread::spawn(move || {
                let mut lat = Vec::with_capacity(requests);
                for _ in 0..requests {
                    let r0 = Instant::now();
                    let outcome = std::net::TcpStream::connect(addr)
                        .map_err(ProtoError::Io)
                        .and_then(|s| GremlinClient::new(s).submit(&[GStep::V(vec![]), GStep::Count]));
                    match outcome {
                        Ok(_) => {
                            ok.fetch_add(1, Ordering::Relaxed);
                            lat.push(r0.elapsed().as_micros() as u64);
                        }
                        Err(ProtoError::Overloaded { .. }) => {
                            shed.fetch_add(1, Ordering::Relaxed);
                        }
                        Err(ProtoError::Timeout(_)) => {
                            timeouts.fetch_add(1, Ordering::Relaxed);
                        }
                        // A shed frame racing our request write surfaces as
                        // a broken pipe; count it as an error, not a shed —
                        // the server-side counter is authoritative.
                        Err(_) => {
                            errors.fetch_add(1, Ordering::Relaxed);
                        }
                    }
                }
                lat
            })
        })
        .collect();
    let mut latencies: Vec<u64> = Vec::new();
    for h in handles {
        latencies.extend(h.join().expect("load client panicked"));
    }
    let elapsed = t0.elapsed();
    latencies.sort_unstable();
    let (ok, shed) = (ok.load(Ordering::Relaxed), shed.load(Ordering::Relaxed));
    let total = (clients * requests) as u64;
    ServeLoadRow {
        phase,
        clients,
        ok,
        shed,
        timeouts: timeouts.load(Ordering::Relaxed),
        errors: errors.load(Ordering::Relaxed),
        elapsed_ms: elapsed.as_secs_f64() * 1e3,
        throughput_rps: ok as f64 / elapsed.as_secs_f64().max(1e-9),
        p50_us: quantile(&latencies, 0.50),
        p95_us: quantile(&latencies, 0.95),
        p99_us: quantile(&latencies, 0.99),
        shed_rate: shed as f64 / total.max(1) as f64,
    }
}

/// Start a bounded server over the virtualized inventory and run the
/// at-capacity and overload phases against it. Returns the phase rows and
/// the server's evaluation-panic count (must be zero).
pub fn run_serve_load(cfg: &ServeLoadConfig, seed: u64) -> (Vec<ServeLoadRow>, u64) {
    let (snap, _) = build_virtualized(seed);
    let pg = shared_graph(property_graph_from(&snap.graph));
    let server_cfg = ServeConfig {
        workers: cfg.workers.max(1),
        queue_depth: cfg.queue_depth.max(1),
        deadline: cfg.deadline,
        ..ServeConfig::default()
    };
    let mut server = GremlinServer::start_cfg(pg, "127.0.0.1:0", None, server_cfg).expect("bind serve-load server");
    let addr = server.addr;

    let rows = vec![
        run_phase("at-capacity", addr, cfg.workers.max(1), cfg.requests_per_client),
        run_phase("overload", addr, cfg.workers.max(1) * cfg.overload_x.max(2), cfg.requests_per_client),
    ];
    let panics = server.stats.evaluation_panics.load(Ordering::Relaxed);
    let report = server.drain(Duration::from_millis(2000));
    assert!(report.clean, "serve-load drain must finish within its budget");
    (rows, panics)
}

/// Flight-recorder overhead at capacity: the same at-capacity phase run
/// back-to-back with the process-wide recorder off and on.
#[derive(Debug, Clone)]
pub struct FlightOverhead {
    pub off: ServeLoadRow,
    pub on: ServeLoadRow,
    /// Throughput lost with the recorder on, percent (negative = noise in
    /// the recorder's favour).
    pub overhead_pct: f64,
    /// Wide events captured during the recorder-on phase.
    pub events_recorded: u64,
}

/// Measure the flight recorder's serving overhead: one bounded server, the
/// at-capacity phase run twice (recorder off, then on), comparing
/// throughput. An interleaved warm-up phase runs first so neither timed
/// phase pays first-touch costs. Restores the recorder's previous
/// enablement before returning.
pub fn run_flight_overhead(cfg: &ServeLoadConfig, seed: u64) -> FlightOverhead {
    let (snap, _) = build_virtualized(seed);
    let pg = shared_graph(property_graph_from(&snap.graph));
    let server_cfg = ServeConfig {
        workers: cfg.workers.max(1),
        queue_depth: cfg.queue_depth.max(1),
        deadline: cfg.deadline,
        ..ServeConfig::default()
    };
    let mut server = GremlinServer::start_cfg(pg, "127.0.0.1:0", None, server_cfg).expect("bind overhead server");
    let addr = server.addr;
    let clients = cfg.workers.max(1);

    let rec = nepal_obs::flight::recorder();
    let was_enabled = rec.is_enabled();
    rec.set_enabled(false);
    run_phase("warm-up", addr, clients, (cfg.requests_per_client / 4).max(2));
    let off = run_phase("recorder-off", addr, clients, cfg.requests_per_client);
    rec.set_enabled(true);
    let before = rec.stats().total_written;
    let on = run_phase("recorder-on", addr, clients, cfg.requests_per_client);
    let events_recorded = rec.stats().total_written.saturating_sub(before);
    rec.set_enabled(was_enabled);
    let report = server.drain(Duration::from_millis(2000));
    assert!(report.clean, "overhead drain must finish within its budget");

    let overhead_pct = if off.throughput_rps > 0.0 {
        (off.throughput_rps - on.throughput_rps) / off.throughput_rps * 100.0
    } else {
        0.0
    };
    FlightOverhead { off, on, overhead_pct, events_recorded }
}

/// Cost-attribution overhead at capacity: the same at-capacity phase run
/// back-to-back with the per-fingerprint statement meters off and on.
#[derive(Debug, Clone)]
pub struct AttributionOverhead {
    pub off: ServeLoadRow,
    pub on: ServeLoadRow,
    /// Throughput lost with the meters on, percent (negative = noise in
    /// the meters' favour).
    pub overhead_pct: f64,
    /// Distinct fingerprints tracked during the meters-on phase.
    pub fingerprints_tracked: usize,
    /// Statement records captured during the meters-on phase.
    pub calls_recorded: u64,
}

/// Measure the cost-attribution overhead on the serving path: one bounded
/// server with a statement-stats table attached, the at-capacity phase run
/// twice (meters disabled, then enabled), comparing throughput. The
/// disabled phase skips the CPU-clock samples and the record call — the
/// same fast path a server without attribution runs.
pub fn run_attribution_overhead(cfg: &ServeLoadConfig, seed: u64) -> AttributionOverhead {
    let (snap, _) = build_virtualized(seed);
    let pg = shared_graph(property_graph_from(&snap.graph));
    let stmt = Arc::new(nepal_obs::StmtStats::new(512));
    let server_cfg = ServeConfig {
        workers: cfg.workers.max(1),
        queue_depth: cfg.queue_depth.max(1),
        deadline: cfg.deadline,
        stmt: Some(stmt.clone()),
        ..ServeConfig::default()
    };
    let mut server = GremlinServer::start_cfg(pg, "127.0.0.1:0", None, server_cfg).expect("bind attribution server");
    let addr = server.addr;
    let clients = cfg.workers.max(1);

    stmt.set_enabled(false);
    run_phase("warm-up", addr, clients, (cfg.requests_per_client / 4).max(2));
    let off = run_phase("meters-off", addr, clients, cfg.requests_per_client);
    let calls_before = stmt.totals().calls;
    assert_eq!(calls_before, 0, "disabled meters must record nothing");
    stmt.set_enabled(true);
    let on = run_phase("meters-on", addr, clients, cfg.requests_per_client);
    let fingerprints_tracked = stmt.tracked();
    let calls_recorded = stmt.totals().calls;
    let report = server.drain(Duration::from_millis(2000));
    assert!(report.clean, "attribution drain must finish within its budget");

    let overhead_pct = if off.throughput_rps > 0.0 {
        (off.throughput_rps - on.throughput_rps) / off.throughput_rps * 100.0
    } else {
        0.0
    };
    AttributionOverhead { off, on, overhead_pct, fingerprints_tracked, calls_recorded }
}

/// Render the attribution-overhead comparison for the terminal.
pub fn format_attribution_overhead(o: &AttributionOverhead) -> String {
    format!(
        "Cost-attribution overhead (at capacity, {} client(s), {} ok request(s) per phase):\n\
         meters off: {:>8.1} req/s  p95 {:>6} us\n\
         meters on:  {:>8.1} req/s  p95 {:>6} us  ({} record(s), {} fingerprint(s))\n\
         overhead: {:.2}% throughput\n",
        o.off.clients,
        o.off.ok,
        o.off.throughput_rps,
        o.off.p95_us,
        o.on.throughput_rps,
        o.on.p95_us,
        o.calls_recorded,
        o.fingerprints_tracked,
        o.overhead_pct
    )
}

/// Render the overhead comparison for the terminal.
pub fn format_flight_overhead(o: &FlightOverhead) -> String {
    format!(
        "Flight-recorder overhead (at capacity, {} client(s), {} ok request(s) per phase):\n\
         recorder off: {:>8.1} req/s  p95 {:>6} us\n\
         recorder on:  {:>8.1} req/s  p95 {:>6} us  ({} wide event(s) captured)\n\
         overhead: {:.2}% throughput\n",
        o.off.clients,
        o.off.ok,
        o.off.throughput_rps,
        o.off.p95_us,
        o.on.throughput_rps,
        o.on.p95_us,
        o.events_recorded,
        o.overhead_pct
    )
}

/// Human-readable table.
pub fn format_serve_load(rows: &[ServeLoadRow], stats_panics: u64) -> String {
    let mut s = String::new();
    s.push_str("Serve-load: bounded admission under concurrent clients (fresh connection per request).\n");
    s.push_str(&format!(
        "{:<12} {:>8} {:>7} {:>6} {:>9} {:>7} {:>10} {:>9} {:>9} {:>9} {:>10}\n",
        "phase",
        "clients",
        "ok",
        "shed",
        "timeouts",
        "errors",
        "thr(req/s)",
        "p50(us)",
        "p95(us)",
        "p99(us)",
        "shed rate"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<12} {:>8} {:>7} {:>6} {:>9} {:>7} {:>10.1} {:>9} {:>9} {:>9} {:>9.1}%\n",
            r.phase,
            r.clients,
            r.ok,
            r.shed,
            r.timeouts,
            r.errors,
            r.throughput_rps,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            r.shed_rate * 100.0
        ));
    }
    s.push_str(&format!("evaluation panics: {stats_panics}\n"));
    s
}

/// The `BENCH_serve.json` document.
pub fn serve_load_json(rows: &[ServeLoadRow], cfg: &ServeLoadConfig, panics: u64) -> String {
    serve_load_json_with_overhead(rows, cfg, panics, None)
}

/// [`serve_load_json`] optionally embedding a flight-recorder overhead
/// comparison (the `"flight_overhead"` key).
pub fn serve_load_json_with_overhead(
    rows: &[ServeLoadRow],
    cfg: &ServeLoadConfig,
    panics: u64,
    overhead: Option<&FlightOverhead>,
) -> String {
    serve_load_json_full(rows, cfg, panics, overhead, None)
}

/// [`serve_load_json_with_overhead`] also embedding a cost-attribution
/// overhead comparison (the `"attribution_overhead"` key).
pub fn serve_load_json_full(
    rows: &[ServeLoadRow],
    cfg: &ServeLoadConfig,
    panics: u64,
    overhead: Option<&FlightOverhead>,
    attribution: Option<&AttributionOverhead>,
) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"config\": {{\"workers\": {}, \"queue_depth\": {}, \"requests_per_client\": {}, \"overload_x\": {}, \
         \"deadline_ms\": {}}},\n",
        cfg.workers,
        cfg.queue_depth,
        cfg.requests_per_client,
        cfg.overload_x,
        cfg.deadline.map(|d| d.as_millis() as u64).map_or("null".to_string(), |m| m.to_string())
    ));
    s.push_str(&format!("  \"evaluation_panics\": {panics},\n"));
    s.push_str("  \"phases\": [\n");
    for (i, r) in rows.iter().enumerate() {
        s.push_str(&format!(
            "    {{\"phase\": \"{}\", \"clients\": {}, \"ok\": {}, \"shed\": {}, \"timeouts\": {}, \"errors\": {}, \
             \"elapsed_ms\": {:.3}, \"throughput_rps\": {:.1}, \"p50_us\": {}, \"p95_us\": {}, \"p99_us\": {}, \
             \"shed_rate\": {:.4}}}{}\n",
            r.phase,
            r.clients,
            r.ok,
            r.shed,
            r.timeouts,
            r.errors,
            r.elapsed_ms,
            r.throughput_rps,
            r.p50_us,
            r.p95_us,
            r.p99_us,
            r.shed_rate,
            if i + 1 < rows.len() { "," } else { "" }
        ));
    }
    s.push_str("  ],\n");
    match overhead {
        Some(o) => s.push_str(&format!(
            "  \"flight_overhead\": {{\"off_rps\": {:.1}, \"on_rps\": {:.1}, \"off_p95_us\": {}, \
             \"on_p95_us\": {}, \"events_recorded\": {}, \"overhead_pct\": {:.2}}},\n",
            o.off.throughput_rps, o.on.throughput_rps, o.off.p95_us, o.on.p95_us, o.events_recorded, o.overhead_pct
        )),
        None => s.push_str("  \"flight_overhead\": null,\n"),
    }
    match attribution {
        Some(a) => s.push_str(&format!(
            "  \"attribution_overhead\": {{\"off_rps\": {:.1}, \"on_rps\": {:.1}, \"off_p95_us\": {}, \
             \"on_p95_us\": {}, \"fingerprints_tracked\": {}, \"calls_recorded\": {}, \"overhead_pct\": {:.2}}}\n",
            a.off.throughput_rps,
            a.on.throughput_rps,
            a.off.p95_us,
            a.on.p95_us,
            a.fingerprints_tracked,
            a.calls_recorded,
            a.overhead_pct
        )),
        None => s.push_str("  \"attribution_overhead\": null\n"),
    }
    s.push_str("}\n");
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_serve_load_completes_and_reports() {
        let cfg = ServeLoadConfig { workers: 2, queue_depth: 2, requests_per_client: 6, overload_x: 3, deadline: None };
        let (rows, panics) = run_serve_load(&cfg, 42);
        assert_eq!(panics, 0);
        assert_eq!(rows.len(), 2);
        // At capacity every request is admitted and completes.
        assert_eq!(rows[0].ok, (rows[0].clients * cfg.requests_per_client) as u64);
        // Overload: every attempt is accounted for, and admitted work done.
        let r = &rows[1];
        assert_eq!(r.ok + r.shed + r.timeouts + r.errors, (r.clients * cfg.requests_per_client) as u64);
        assert!(r.ok > 0, "admitted requests must still complete under overload");
        let json = serve_load_json(&rows, &cfg, panics);
        assert!(json.contains("\"phase\": \"overload\""));
        assert!(json.contains("\"evaluation_panics\": 0"));
    }

    #[test]
    fn attribution_overhead_records_only_when_enabled() {
        let cfg = ServeLoadConfig { workers: 2, queue_depth: 2, requests_per_client: 6, overload_x: 2, deadline: None };
        let o = run_attribution_overhead(&cfg, 7);
        // The meters-off phase asserts zero records internally; the on
        // phase must have captured every admitted request.
        assert_eq!(o.calls_recorded, o.on.ok);
        assert!(o.fingerprints_tracked >= 1, "the shared count() shape tracks one fingerprint");
        let json = serve_load_json_full(&[o.off.clone(), o.on.clone()], &cfg, 0, None, Some(&o));
        assert!(json.contains("\"attribution_overhead\""), "{json}");
        assert!(json.contains("\"calls_recorded\""), "{json}");
        assert!(format_attribution_overhead(&o).contains("meters on"));
    }
}
