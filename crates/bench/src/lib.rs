//! Benchmark harness reproducing every table in the paper's evaluation
//! (§6). See `src/bin/reproduce.rs` for the CLI and EXPERIMENTS.md for the
//! paper-vs-measured record.
//!
//! Methodology mirrors §6: for each query type we execute N instances
//! (rotating the anchor over real element ids), skip instances that return
//! zero paths ("we avoided instances that result in zero paths"), and
//! report the average number of paths returned and the average execution
//! time — once against the freshly loaded snapshot and once against the
//! database carrying a 60-day history.

pub mod crash;
pub mod introspect;
pub mod obs_report;
pub mod replay;
pub mod serve_load;
pub mod tiers;

pub use crash::{format_crash_report, run_crash_forensics, CrashReport};
pub use introspect::{format_introspect, introspect_json, run_introspect, IntrospectReport};
pub use obs_report::{format_obs_report, obs_report_json, run_obs_report, ChurnPoint, ObsReport};
pub use replay::{capture_workload, format_replay, replay_json, replay_qlog, ReplayReport, ReplayRow};
pub use serve_load::{
    format_attribution_overhead, format_flight_overhead, format_serve_load, run_attribution_overhead,
    run_flight_overhead, run_serve_load, serve_load_json, serve_load_json_full, serve_load_json_with_overhead,
    AttributionOverhead, FlightOverhead, ServeLoadConfig, ServeLoadRow,
};
pub use tiers::{
    check_gates, format_tier_scaling, run_scaling_tiers, tier_aggregates, tier_scaling_json, GateOutcome, TierReport,
    TierScalingRow, TierStorageRow,
};

use std::time::Instant;

use nepal_graph::{GraphView, TemporalGraph, TimeFilter, Uid};
use nepal_rpe::{evaluate, parse_rpe, plan_rpe, EvalOptions, GraphEstimator, Seeds};
use nepal_schema::Value;
use nepal_workload::{
    apply_churn, generate_legacy, generate_virtualized, updatable_entities, ChurnParams, LegacyParams, LegacyTopology,
    VirtParams, VirtTopology,
};

/// One row of a Table-1/2 style report.
#[derive(Debug, Clone)]
pub struct QueryRow {
    pub name: String,
    pub instances: usize,
    pub avg_paths: f64,
    pub avg_ms_snap: f64,
    pub avg_ms_hist: f64,
}

/// Run one query template over a list of instance RPEs.
fn run_instances(g: &TemporalGraph, rpes: &[String]) -> (usize, f64, f64) {
    run_instances_opts(g, rpes, &EvalOptions::default())
}

/// [`run_instances`] with explicit evaluation options (the thread-scaling
/// sweep varies `EvalOptions::threads`).
fn run_instances_opts(g: &TemporalGraph, rpes: &[String], opts: &EvalOptions) -> (usize, f64, f64) {
    let view = GraphView::new(g, TimeFilter::Current);
    let mut total_paths = 0usize;
    let mut total_ms = 0f64;
    let mut used = 0usize;
    for rpe_text in rpes {
        let rpe = parse_rpe(rpe_text).expect("bench RPE parses");
        let plan = plan_rpe(g.schema(), &rpe, &GraphEstimator { graph: g }).expect("bench RPE plans");
        let t0 = Instant::now();
        let paths = evaluate(&view, &plan, Seeds::Anchor, opts);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        if paths.is_empty() {
            continue; // §6: zero-result instances are skipped
        }
        used += 1;
        total_paths += paths.len();
        total_ms += ms;
    }
    if used == 0 {
        (0, 0.0, 0.0)
    } else {
        (used, total_paths as f64 / used as f64, total_ms / used as f64)
    }
}

fn int_field(g: &TemporalGraph, uid: Uid, idx: usize) -> i64 {
    match &g.current_version(uid).expect("alive").fields()[idx] {
        Value::Int(i) => *i,
        other => panic!("expected int field, got {other:?}"),
    }
}

/// Build the virtualized-service graph, snapshot + churned-history twins.
pub fn build_virtualized(seed: u64) -> (VirtTopology, TemporalGraph) {
    let snap = generate_virtualized(VirtParams { seed, ..Default::default() });
    let mut hist_topo = generate_virtualized(VirtParams { seed, ..Default::default() });
    let updatable = updatable_entities(&hist_topo.graph, "status");
    apply_churn(&mut hist_topo.graph, &updatable, &[], hist_topo.params.start_ts, &ChurnParams::virtualized_default());
    (snap, hist_topo.graph)
}

/// The five Table-1 query families, as instance RPE lists.
pub fn table1_queries(topo: &VirtTopology, instances: usize) -> Vec<(String, Vec<String>)> {
    let g = &topo.graph;
    // Top-down: one instance per distinct VNF (§6: "there are only 33
    // distinct VNFs so we evaluated only 33 queries instances").
    let top_down: Vec<String> = topo
        .vnfs
        .iter()
        .map(|&v| {
            let id = int_field(g, v, 0);
            format!("VNF(vnf_id={id})->[Vertical()]{{1,6}}->Host()")
        })
        .collect();
    let bottom_up: Vec<String> = (0..instances)
        .map(|i| {
            let h = topo.hosts[i % topo.hosts.len()];
            let id = int_field(g, h, 0);
            format!("VNF()->[Vertical()]{{1,6}}->Host(host_id={id})")
        })
        .collect();
    // VM-VM through virtual networks/routers, length 4.
    let vms: Vec<Uid> = topo
        .containers
        .iter()
        .copied()
        .filter(|&c| {
            let cls = g.class_of(c).unwrap();
            g.schema().is_subclass(cls, g.schema().class_by_name("VM").unwrap())
        })
        .collect();
    let vm_vm: Vec<String> = (0..instances)
        .map(|i| {
            let vm = vms[(i * 7) % vms.len()];
            let id = int_field(g, vm, 2);
            format!("VM(vm_id={id})->[ConnectedTo()]{{1,4}}->Container()")
        })
        .collect();
    let host_pairs = |limit: usize, hops: usize| -> Vec<String> {
        (0..limit)
            .map(|i| {
                let a = topo.hosts[(i * 3) % topo.hosts.len()];
                let b = topo.hosts[(i * 3 + 7) % topo.hosts.len()];
                let (ia, ib) = (int_field(g, a, 0), int_field(g, b, 0));
                format!("Host(host_id={ia})->[ConnectedTo()]{{1,{hops}}}->Host(host_id={ib})")
            })
            .collect()
    };
    vec![
        ("Top-down".into(), top_down),
        ("Bottom-up".into(), bottom_up),
        ("VM-VM (4)".into(), vm_vm),
        ("Host-Host (4)".into(), host_pairs(instances, 4)),
        ("Host-Host (6)".into(), host_pairs(instances.min(10), 6)),
    ]
}

/// Run Table 1: the virtualized service graph.
pub fn run_table1(instances: usize, seed: u64) -> Vec<QueryRow> {
    let (snap, hist) = build_virtualized(seed);
    let queries = table1_queries(&snap, instances);
    queries
        .into_iter()
        .map(|(name, rpes)| {
            let (n, paths, ms_snap) = run_instances(&snap.graph, &rpes);
            let (_, _, ms_hist) = run_instances(&hist, &rpes);
            QueryRow { name, instances: n, avg_paths: paths, avg_ms_snap: ms_snap, avg_ms_hist: ms_hist }
        })
        .collect()
}

/// Build the legacy graph, snapshot + churned-history twins.
pub fn build_legacy(params: LegacyParams) -> (LegacyTopology, TemporalGraph) {
    let snap = generate_legacy(params.clone());
    let mut hist = generate_legacy(params);
    let updatable = updatable_entities(&hist.graph, "type_indicator");
    apply_churn(&mut hist.graph, &updatable, &[], hist.params.start_ts, &ChurnParams::legacy_default());
    (snap, hist.graph)
}

/// The four Table-2 query families. `typed` switches the atoms to the
/// 66-subclass concepts (Table 3 mode).
pub fn table2_queries(
    topo: &LegacyTopology,
    instances: usize,
    typed: bool,
    hub_bias: f64,
) -> Vec<(String, Vec<String>)> {
    let g = &topo.graph;
    let node_id = |uid: Uid| int_field(g, uid, 0);
    let (svc, v0, v1, v2) = if typed {
        ("T3()".to_string(), "T0()".to_string(), "T1()".to_string(), "T2()".to_string())
    } else {
        (
            "LegacyEdge(type_indicator='ti3')".to_string(),
            "LegacyEdge(type_indicator='ti0')".to_string(),
            "LegacyEdge(type_indicator='ti1')".to_string(),
            "LegacyEdge(type_indicator='ti2')".to_string(),
        )
    };
    let service_path: Vec<String> = (0..instances)
        .map(|i| {
            let s = topo.svc_sources[(i * 131) % topo.svc_sources.len()];
            format!("LegacyNode(node_id={})->[{svc}]{{1,4}}", node_id(s))
        })
        .collect();
    let reverse_path: Vec<String> = (0..instances)
        .map(|i| {
            let s = topo.svc_sinks[i % topo.svc_sinks.len()];
            format!("[{svc}]{{1,4}}->LegacyNode(node_id={})", node_id(s))
        })
        .collect();
    let top_down: Vec<String> = (0..instances)
        .map(|i| {
            let s = topo.levels[0][(i * 37) % topo.levels[0].len()];
            format!("LegacyNode(node_id={})->{v0}->{v1}->{v2}", node_id(s))
        })
        .collect();
    // Bottom-up: a biased fraction of instances land on noise hubs — the
    // paper's "16 of the 50 samples have a response time of 2 to 4 seconds".
    let bottom_up: Vec<String> = (0..instances)
        .map(|i| {
            let s = if (i as f64 / instances.max(1) as f64) < hub_bias {
                topo.hubs[i % topo.hubs.len()]
            } else {
                topo.levels[3][(i * 53 + topo.hubs.len()) % topo.levels[3].len()]
            };
            format!("{v0}->{v1}->{v2}->LegacyNode(node_id={})", node_id(s))
        })
        .collect();
    vec![
        ("Service path".into(), service_path),
        ("Reverse path".into(), reverse_path),
        ("Top-down".into(), top_down),
        ("Bottom-up".into(), bottom_up),
    ]
}

/// Run Table 2: the legacy topology, single-edge-class load.
pub fn run_table2(params: LegacyParams, instances: usize) -> Vec<QueryRow> {
    let (snap, hist) = build_legacy(params);
    let queries = table2_queries(&snap, instances, false, 0.32);
    queries
        .into_iter()
        .map(|(name, rpes)| {
            let (n, paths, ms_snap) = run_instances(&snap.graph, &rpes);
            let (_, _, ms_hist) = run_instances(&hist, &rpes);
            QueryRow { name, instances: n, avg_paths: paths, avg_ms_snap: ms_snap, avg_ms_hist: ms_hist }
        })
        .collect()
}

/// One row of the Table-3 (partitioning ablation) report.
#[derive(Debug, Clone)]
pub struct AblationRow {
    pub name: String,
    pub single_class_ms: f64,
    pub subclassed_ms: f64,
    pub speedup: f64,
}

/// Run the §6 in-text experiment: reload the legacy graph with 66 edge
/// subclasses and re-evaluate the two slowest queries.
pub fn run_table3(base: LegacyParams, instances: usize) -> Vec<AblationRow> {
    let single = generate_legacy(LegacyParams { edge_subclasses: 1, ..base.clone() });
    let parted = generate_legacy(LegacyParams { edge_subclasses: 66, ..base });
    let q_single = table2_queries(&single, instances, false, 1.0);
    let q_parted = table2_queries(&parted, instances, true, 1.0);
    let mut out = Vec::new();
    for name in ["Reverse path", "Bottom-up"] {
        let rpes_a = &q_single.iter().find(|(n, _)| n == name).unwrap().1;
        let rpes_b = &q_parted.iter().find(|(n, _)| n == name).unwrap().1;
        let (_, _, ms_a) = run_instances(&single.graph, rpes_a);
        let (_, _, ms_b) = run_instances(&parted.graph, rpes_b);
        out.push(AblationRow {
            name: name.to_string(),
            single_class_ms: ms_a,
            subclassed_ms: ms_b,
            speedup: if ms_b > 0.0 { ms_a / ms_b } else { f64::INFINITY },
        });
    }
    out
}

/// Storage-overhead report (§6.1).
#[derive(Debug, Clone)]
pub struct StorageRow {
    pub dataset: String,
    pub snapshot_bytes: u64,
    pub history_bytes: u64,
    /// Temporal-table overhead: history / snapshot − 1.
    pub overhead_pct: f64,
    /// The naive alternative: 60 separate daily snapshots.
    pub naive_pct: f64,
}

/// Run the storage experiment: versioned history vs 60 materialized
/// snapshots, for both data sets.
pub fn run_storage(legacy_params: LegacyParams) -> Vec<StorageRow> {
    let mut out = Vec::new();
    {
        let (snap, hist) = build_virtualized(42);
        let s = snap.graph.approx_version_bytes();
        let h = hist.approx_version_bytes();
        out.push(StorageRow {
            dataset: "virtualized service".into(),
            snapshot_bytes: s,
            history_bytes: h,
            overhead_pct: (h as f64 / s as f64 - 1.0) * 100.0,
            naive_pct: 5_900.0, // 60 copies − 1 = 59× = 5,900%
        });
    }
    {
        let (snap, hist) = build_legacy(legacy_params);
        let s = snap.graph.approx_version_bytes();
        let h = hist.approx_version_bytes();
        out.push(StorageRow {
            dataset: "legacy topology".into(),
            snapshot_bytes: s,
            history_bytes: h,
            overhead_pct: (h as f64 / s as f64 - 1.0) * 100.0,
            naive_pct: 5_900.0,
        });
    }
    out
}

/// One measurement of the thread-scaling sweep: a query family evaluated
/// with a fixed worker-thread count.
#[derive(Debug, Clone)]
pub struct ScalingRow {
    pub table: String,
    pub name: String,
    pub threads: usize,
    pub avg_ms: f64,
    /// Time at 1 thread / time at this thread count (>1 = faster).
    pub speedup: f64,
}

/// Thread counts swept by [`run_scaling`]: {1, 2, 4, all cores},
/// deduplicated and sorted (a single-core host sweeps {1, 2, 4} — the
/// overhead of the pool is still measured, the speedup is just flat).
pub fn scaling_thread_counts() -> Vec<usize> {
    let max = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut counts = vec![1, 2, 4, max];
    counts.sort_unstable();
    counts.dedup();
    counts
}

fn sweep_families(
    table: &str,
    g: &TemporalGraph,
    families: &[(String, Vec<String>)],
    counts: &[usize],
    out: &mut Vec<ScalingRow>,
) {
    for (name, rpes) in families {
        let mut base_ms = 0.0f64;
        for &t in counts {
            let opts = EvalOptions { threads: t, ..Default::default() };
            let (_, _, ms) = run_instances_opts(g, rpes, &opts);
            if t == 1 {
                base_ms = ms;
            }
            out.push(ScalingRow {
                table: table.to_string(),
                name: name.clone(),
                threads: t,
                avg_ms: ms,
                speedup: if ms > 0.0 { base_ms / ms } else { 1.0 },
            });
        }
    }
}

/// The thread-scaling sweep: every Table-1 family over the virtualized
/// snapshot plus the Table-2 families over a CI-sized legacy snapshot,
/// each evaluated at every [`scaling_thread_counts`] setting.
pub fn run_scaling(instances: usize, seed: u64) -> Vec<ScalingRow> {
    let counts = scaling_thread_counts();
    let mut out = Vec::new();
    let (snap, _) = build_virtualized(seed);
    let t1 = table1_queries(&snap, instances);
    sweep_families("table1", &snap.graph, &t1, &counts, &mut out);
    let legacy = generate_legacy(LegacyParams { nodes: 8000, edges: 36_000, ..Default::default() });
    let t2 = table2_queries(&legacy, instances.min(8), false, 0.32);
    sweep_families("table2", &legacy.graph, &t2, &counts, &mut out);
    out
}

/// Per-table aggregates of a scaling sweep: `(table, threads, total_ms,
/// speedup-vs-1-thread)`, in sweep order.
pub fn scaling_aggregates(rows: &[ScalingRow]) -> Vec<(String, usize, f64, f64)> {
    let mut out: Vec<(String, usize, f64, f64)> = Vec::new();
    for r in rows {
        match out.iter_mut().find(|(t, n, _, _)| *t == r.table && *n == r.threads) {
            Some(slot) => slot.2 += r.avg_ms,
            None => out.push((r.table.clone(), r.threads, r.avg_ms, 1.0)),
        }
    }
    for i in 0..out.len() {
        let base =
            out.iter().find(|(t, n, _, _)| *t == out[i].0 && *n == 1).map(|(_, _, ms, _)| *ms).unwrap_or(out[i].2);
        out[i].3 = if out[i].2 > 0.0 { base / out[i].2 } else { 1.0 };
    }
    out
}

/// Render the scaling sweep (and aggregates) for the terminal.
pub fn format_scaling(rows: &[ScalingRow]) -> String {
    let mut s = String::new();
    s.push_str("Thread scaling: anchored evaluation at 1/2/4/all worker threads\n");
    s.push_str(&format!("{:<8} {:<16} {:>7} {:>12} {:>9}\n", "Table", "Type", "threads", "avg time", "speedup"));
    for r in rows {
        s.push_str(&format!(
            "{:<8} {:<16} {:>7} {:>9.3} ms {:>8.2}x\n",
            r.table, r.name, r.threads, r.avg_ms, r.speedup
        ));
    }
    s.push_str("\nAggregates (sum of family averages):\n");
    for (table, threads, ms, speedup) in scaling_aggregates(rows) {
        s.push_str(&format!("{table:<8} threads={threads:<3} {ms:>9.3} ms {speedup:>8.2}x\n"));
    }
    s
}

/// Render the scaling sweep as the `BENCH_scaling.json` document.
pub fn scaling_json(rows: &[ScalingRow]) -> String {
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let row_items: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"table\":{:?},\"name\":{:?},\"threads\":{},\"avg_ms\":{:.3},\"speedup\":{:.3}}}",
                r.table, r.name, r.threads, r.avg_ms, r.speedup
            )
        })
        .collect();
    let agg_items: Vec<String> = scaling_aggregates(rows)
        .iter()
        .map(|(table, threads, ms, speedup)| {
            format!("{{\"table\":{table:?},\"threads\":{threads},\"total_ms\":{ms:.3},\"speedup\":{speedup:.3}}}")
        })
        .collect();
    let counts: Vec<String> = scaling_thread_counts().iter().map(|c| c.to_string()).collect();
    format!(
        "{{\n\"host_parallelism\":{host},\n\"thread_counts\":[{}],\n\"rows\":[\n  {}\n],\n\"aggregates\":[\n  {}\n]\n}}\n",
        counts.join(","),
        row_items.join(",\n  "),
        agg_items.join(",\n  ")
    )
}

/// Run one instance of each Table-1 query family through a full [`Engine`]
/// over the virtualized graph and return the engine's metrics (plus the
/// store gauges) as JSON — the `reproduce --json` BENCH_metrics.json output.
pub fn metrics_snapshot_json(seed: u64) -> String {
    use nepal_core::{BackendRegistry, Engine, NativeBackend};
    use std::sync::Arc;

    let (snap, _) = build_virtualized(seed);
    let queries = table1_queries(&snap, 1);
    let graph = Arc::new(snap.graph);
    let registry = BackendRegistry::new("native", Box::new(NativeBackend::new(graph.clone())));
    let mut engine = Engine::new(registry);
    let store_gauges = nepal_graph::StoreGauges::register(&engine.metrics);
    for (_, rpes) in &queries {
        if let Some(rpe) = rpes.first() {
            let _ = engine.query(&format!("Retrieve P From PATHS P Where P MATCHES {rpe}"));
        }
    }
    store_gauges.refresh(&graph);
    engine.metrics.render_json()
}

/// Render a Table-1/2 style report.
pub fn format_query_table(title: &str, rows: &[QueryRow]) -> String {
    let mut s = String::new();
    s.push_str(&format!("{title}\n"));
    s.push_str(&format!("{:<16} {:>5} {:>12} {:>14} {:>14}\n", "Type", "#inst", "# paths", "Time snap", "Time hist"));
    for r in rows {
        s.push_str(&format!(
            "{:<16} {:>5} {:>12.1} {:>11.3} ms {:>11.3} ms\n",
            r.name, r.instances, r.avg_paths, r.avg_ms_snap, r.avg_ms_hist
        ));
    }
    s
}

/// Render Table-1/2 rows as a JSON array (the `reproduce --json` output).
pub fn query_rows_json(rows: &[QueryRow]) -> String {
    let items: Vec<String> = rows
        .iter()
        .map(|r| {
            format!(
                "{{\"name\":{:?},\"instances\":{},\"avg_paths\":{:.2},\
                 \"avg_ms_snapshot\":{:.3},\"avg_ms_history\":{:.3}}}",
                r.name, r.instances, r.avg_paths, r.avg_ms_snap, r.avg_ms_hist
            )
        })
        .collect();
    format!("[\n  {}\n]\n", items.join(",\n  "))
}

/// Render the ablation report.
pub fn format_ablation(rows: &[AblationRow]) -> String {
    let mut s = String::new();
    s.push_str("Table 3 (in-text §6): 1 edge class vs 66 edge subclasses\n");
    s.push_str(&format!("{:<16} {:>16} {:>16} {:>9}\n", "Type", "1 class", "66 subclasses", "speedup"));
    for r in rows {
        s.push_str(&format!(
            "{:<16} {:>13.3} ms {:>13.3} ms {:>8.1}x\n",
            r.name, r.single_class_ms, r.subclassed_ms, r.speedup
        ));
    }
    s
}

/// Render the storage report.
pub fn format_storage(rows: &[StorageRow]) -> String {
    let mut s = String::new();
    s.push_str("Table 4 (in-text §6.1): 60-day history storage overhead\n");
    s.push_str(&format!(
        "{:<22} {:>14} {:>14} {:>10} {:>12}\n",
        "Dataset", "snapshot", "with history", "overhead", "60 snapshots"
    ));
    for r in rows {
        s.push_str(&format!(
            "{:<22} {:>11} KB {:>11} KB {:>9.1}% {:>11.0}%\n",
            r.dataset,
            r.snapshot_bytes / 1024,
            r.history_bytes / 1024,
            r.overhead_pct,
            r.naive_pct
        ));
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shapes_hold_at_small_instance_counts() {
        let rows = run_table1(6, 42);
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap().clone();
        // Top-down uses all 33 VNFs.
        assert_eq!(get("Top-down").instances, 33);
        assert!(get("Top-down").avg_paths >= 1.0);
        // VM-VM returns the most paths of the length-4 queries (paper:
        // 215.9 vs 18.5/19.5).
        assert!(get("VM-VM (4)").avg_paths > get("Host-Host (4)").avg_paths);
        // Host-Host(6) explores far more paths than Host-Host(4) (561.7 vs
        // 18.5).
        assert!(get("Host-Host (6)").avg_paths > 5.0 * get("Host-Host (4)").avg_paths);
    }

    #[test]
    fn table2_and_3_shapes_hold_at_tiny_scale() {
        let params = LegacyParams { nodes: 8000, edges: 36_000, ..Default::default() };
        let rows = run_table2(params.clone(), 8);
        let get = |n: &str| rows.iter().find(|r| r.name == n).unwrap().clone();
        // Reverse service path explodes vs forward (paper: 391,000 vs 32.9).
        assert!(
            get("Reverse path").avg_paths > 10.0 * get("Service path").avg_paths,
            "reverse {} vs forward {}",
            get("Reverse path").avg_paths,
            get("Service path").avg_paths
        );
        // Partitioning speeds up Bottom-up by a large factor and Reverse
        // path only modestly (paper: 13.7x vs 1.17x).
        let ablation = run_table3(params, 6);
        let bu = ablation.iter().find(|r| r.name == "Bottom-up").unwrap();
        let rp = ablation.iter().find(|r| r.name == "Reverse path").unwrap();
        assert!(bu.speedup > 2.0, "bottom-up speedup {}", bu.speedup);
        assert!(bu.speedup > rp.speedup, "bottom-up {} vs reverse {}", bu.speedup, rp.speedup);
    }

    #[test]
    fn storage_overheads_match_paper_band() {
        let rows = run_storage(LegacyParams { nodes: 8000, edges: 36_000, ..Default::default() });
        let virt = &rows[0];
        let legacy = &rows[1];
        // §6.1: 6% (virtualized) and 16% (legacy), vs 5,900% naive.
        assert!((2.0..=12.0).contains(&virt.overhead_pct), "virt {}", virt.overhead_pct);
        assert!((8.0..=26.0).contains(&legacy.overhead_pct), "legacy {}", legacy.overhead_pct);
        assert!(virt.naive_pct > 100.0 * virt.overhead_pct);
    }
}
