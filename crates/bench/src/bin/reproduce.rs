//! Regenerate every table of the paper's evaluation section.
//!
//! ```text
//! reproduce [table1] [table2] [table3] [storage] [scaling] [all]
//!           [--full]          # paper-scale legacy graph (1.6M/7.1M)
//!           [--instances N]   # query instances per type (default 50, as §6)
//!           [--json]          # also write BENCH_table1.json / BENCH_table2.json /
//!                             # BENCH_scaling.json
//! reproduce scaling [--tiers toy,small,medium,large] [--storage-only]
//!           [--gate-speedup X] [--gate-recovery X] [--gate-delta-savings PCT]
//!           # tiered scaling sweep: threads x size tiers over the churned
//!           # ONAP-style generator graph, plus per-tier storage bytes,
//!           # delta-encoding savings, and journal-vs-binary recovery
//!           # times (default tiers: toy,small,medium; --full adds large).
//!           # --storage-only skips the query sweep (CI recovery smoke).
//!           # Gates exit 1 when unmet; the speedup gate (aggregate at 4
//!           # threads on the largest tier) is skipped on hosts with <4
//!           # cores.
//! reproduce capture [--qlog FILE] [--instances N]
//!           # run the deterministic workload with the durable query log on,
//!           # writing a JSONL baseline (default nepal-qlog.jsonl)
//! reproduce replay [--qlog FILE] [--json]
//!           # re-run a captured qlog against the current build and compare
//!           # result digests; exits 1 on any mismatch; --json writes
//!           # BENCH_replay.json
//! reproduce obs-report [--instances N]
//!           # resource accounting + SLO alert experiment: memory growth
//!           # under churn, report-vs-recount agreement, accounting
//!           # overhead over the Table-1 workload, healthy/overload alert
//!           # outcomes; always writes BENCH_memory.json
//! reproduce serve-load [--workers N] [--queue-depth N] [--requests N]
//!           [--overload-x N] [--deadline-ms MS] [--overhead-gate PCT]
//!           [--attribution-gate PCT]
//!           # overload benchmark: concurrent clients at and beyond the
//!           # bounded server's capacity — throughput, p50/p95/p99, shed
//!           # rate, plus the flight-recorder on/off overhead comparison
//!           # and the statement-attribution meters-off/on comparison;
//!           # always writes BENCH_serve.json; --overhead-gate /
//!           # --attribution-gate exit 1 if the recorder / the meters
//!           # cost more than PCT percent throughput
//! reproduce introspect [--tier toy|small|medium|large]
//!           # workload-introspection drill (default tier: medium): run
//!           # the sweep families through an instrumented engine and
//!           # verify /top.json attributes per-fingerprint cpu/rows/bytes,
//!           # every generated class has nonzero nepal_heat_* gauges, and
//!           # /history.json holds >=2 snapshots; writes
//!           # BENCH_introspect.json; exits 1 on any cold surface
//! reproduce crash-forensics [--dir DIR]
//!           # crash drill: induce a caught worker panic under concurrent
//!           # load and verify the panic hook leaves a parseable
//!           # diagnostics bundle with events from >=2 threads; exits 1
//!           # on any failed check (default DIR: nepal-crash-forensics)
//! ```

use nepal_bench::{
    capture_workload, check_gates, format_ablation, format_attribution_overhead, format_crash_report,
    format_flight_overhead, format_introspect, format_obs_report, format_query_table, format_replay, format_serve_load,
    format_storage, format_tier_scaling, introspect_json, metrics_snapshot_json, obs_report_json, query_rows_json,
    replay_json, replay_qlog, run_attribution_overhead, run_crash_forensics, run_flight_overhead, run_introspect,
    run_obs_report, run_scaling_tiers, run_serve_load, run_storage, run_table1, run_table2, run_table3,
    scaling_thread_counts, serve_load_json_full, tier_scaling_json, ServeLoadConfig,
};
use nepal_workload::{LegacyParams, SizeTier};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let full = args.iter().any(|a| a == "--full");
    let json = args.iter().any(|a| a == "--json");
    let instances = args
        .iter()
        .position(|a| a == "--instances")
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(50usize);
    let named: Vec<&String> = args.iter().filter(|a| !a.starts_with("--") && a.parse::<usize>().is_err()).collect();
    let qlog_path = args
        .iter()
        .position(|a| a == "--qlog")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "nepal-qlog.jsonl".to_string());

    // Workload capture/replay run standalone (they build their own engine
    // and never mix with the table sweeps).
    if named.iter().any(|a| *a == "capture") {
        match capture_workload(&qlog_path, instances.min(8), 42) {
            Ok(n) => println!("captured {n} queries into {qlog_path}"),
            Err(e) => {
                eprintln!("capture failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    if named.iter().any(|a| *a == "replay") {
        let report = match replay_qlog(&qlog_path, 42) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("replay failed: cannot read {qlog_path}: {e}");
                std::process::exit(1);
            }
        };
        print!("{}", format_replay(&report));
        if json {
            write_json("BENCH_replay.json", &replay_json(&report));
        }
        if !report.passed() {
            std::process::exit(1);
        }
        return;
    }

    if named.iter().any(|a| *a == "obs-report") {
        let report = run_obs_report(instances, 42);
        print!("{}", format_obs_report(&report));
        write_json("BENCH_memory.json", &obs_report_json(&report));
        return;
    }

    if named.iter().any(|a| *a == "serve-load") {
        let flag = |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1));
        let mut cfg = ServeLoadConfig::default();
        if let Some(n) = flag("--workers").and_then(|v| v.parse().ok()) {
            cfg.workers = n;
        }
        if let Some(n) = flag("--queue-depth").and_then(|v| v.parse().ok()) {
            cfg.queue_depth = n;
        }
        if let Some(n) = flag("--requests").and_then(|v| v.parse().ok()) {
            cfg.requests_per_client = n;
        }
        if let Some(n) = flag("--overload-x").and_then(|v| v.parse().ok()) {
            cfg.overload_x = n;
        }
        if let Some(ms) = flag("--deadline-ms").and_then(|v| v.parse().ok()) {
            cfg.deadline = Some(std::time::Duration::from_millis(ms));
        }
        let (rows, panics) = run_serve_load(&cfg, 42);
        print!("{}", format_serve_load(&rows, panics));
        let overhead = run_flight_overhead(&cfg, 42);
        print!("{}", format_flight_overhead(&overhead));
        let attribution = run_attribution_overhead(&cfg, 42);
        print!("{}", format_attribution_overhead(&attribution));
        write_json("BENCH_serve.json", &serve_load_json_full(&rows, &cfg, panics, Some(&overhead), Some(&attribution)));
        if panics != 0 {
            eprintln!("serve-load observed {panics} evaluation panic(s)");
            std::process::exit(1);
        }
        if let Some(gate) = flag("--overhead-gate").and_then(|v| v.parse::<f64>().ok()) {
            if overhead.overhead_pct > gate {
                eprintln!("flight-recorder overhead {:.2}% exceeds the {:.2}% gate", overhead.overhead_pct, gate);
                std::process::exit(1);
            }
        }
        if let Some(gate) = flag("--attribution-gate").and_then(|v| v.parse::<f64>().ok()) {
            if attribution.overhead_pct > gate {
                eprintln!(
                    "statement-attribution overhead {:.2}% exceeds the {:.2}% gate",
                    attribution.overhead_pct, gate
                );
                std::process::exit(1);
            }
        }
        return;
    }

    if named.iter().any(|a| *a == "introspect") {
        let tier = args
            .iter()
            .position(|a| a == "--tier")
            .and_then(|i| args.get(i + 1))
            .map(|s| {
                SizeTier::from_name(s).unwrap_or_else(|| {
                    eprintln!("unknown tier {s:?} (expected toy|small|medium|large)");
                    std::process::exit(2);
                })
            })
            .unwrap_or(SizeTier::Medium);
        let report = run_introspect(tier, 42);
        print!("{}", format_introspect(&report));
        write_json("BENCH_introspect.json", &introspect_json(&report));
        if !report.passed() {
            std::process::exit(1);
        }
        return;
    }

    if named.iter().any(|a| *a == "crash-forensics") {
        let dir = args
            .iter()
            .position(|a| a == "--dir")
            .and_then(|i| args.get(i + 1))
            .cloned()
            .unwrap_or_else(|| "nepal-crash-forensics".to_string());
        match run_crash_forensics(std::path::Path::new(&dir), 42) {
            Ok(report) => {
                print!("{}", format_crash_report(&report));
                if !report.passed() {
                    std::process::exit(1);
                }
            }
            Err(e) => {
                eprintln!("crash-forensics drill failed: {e}");
                std::process::exit(1);
            }
        }
        return;
    }

    let wants = |t: &str| named.is_empty() || named.iter().any(|a| *a == t || *a == "all");
    let legacy_params = if full { LegacyParams::full_scale() } else { LegacyParams::default() };

    println!(
        "Nepal evaluation reproduction (instances per type: {instances}{})",
        if full { ", FULL legacy scale" } else { "" }
    );
    println!("================================================================\n");

    if wants("table1") {
        let rows = run_table1(instances, 42);
        println!(
            "{}",
            format_query_table(
                "Table 1. Query response times, virtualized service graph (~2k nodes / ~11k edges).",
                &rows
            )
        );
        if json {
            write_json("BENCH_table1.json", &query_rows_json(&rows));
            write_json("BENCH_metrics.json", &metrics_snapshot_json(42));
        }
    }
    if wants("table2") {
        let rows = run_table2(legacy_params.clone(), instances);
        println!(
            "{}",
            format_query_table(
                &format!(
                    "Table 2. Query response times, legacy topology ({} nodes / {} edges).",
                    legacy_params.nodes, legacy_params.edges
                ),
                &rows
            )
        );
        if json {
            write_json("BENCH_table2.json", &query_rows_json(&rows));
        }
    }
    if wants("table3") {
        let rows = run_table3(legacy_params.clone(), instances);
        println!("{}", format_ablation(&rows));
    }
    if wants("storage") {
        let rows = run_storage(legacy_params);
        println!("{}", format_storage(&rows));
    }
    if wants("scaling") {
        let flag = |name: &str| args.iter().position(|a| a == name).and_then(|i| args.get(i + 1));
        let tiers: Vec<SizeTier> = match flag("--tiers") {
            Some(list) => list
                .split(',')
                .filter(|s| !s.is_empty())
                .map(|s| {
                    SizeTier::from_name(s).unwrap_or_else(|| {
                        eprintln!("unknown tier {s:?} (expected toy|small|medium|large)");
                        std::process::exit(2);
                    })
                })
                .collect(),
            // Default stays bounded; --full promotes the sweep to the
            // million-entity headline tier.
            None if full => vec![SizeTier::Toy, SizeTier::Small, SizeTier::Medium, SizeTier::Large],
            None => vec![SizeTier::Toy, SizeTier::Small, SizeTier::Medium],
        };
        let counts = if args.iter().any(|a| a == "--storage-only") { Vec::new() } else { scaling_thread_counts() };
        let reports = run_scaling_tiers(&tiers, 42, &counts);
        println!("{}", format_tier_scaling(&reports));
        if json {
            write_json("BENCH_scaling.json", &tier_scaling_json(&reports, &counts));
        }
        let gate = |name: &str| flag(name).and_then(|v| v.parse::<f64>().ok());
        let outcome =
            check_gates(&reports, gate("--gate-speedup"), gate("--gate-recovery"), gate("--gate-delta-savings"));
        for s in &outcome.skipped {
            eprintln!("gate skipped: {s}");
        }
        if !outcome.passed() {
            for f in &outcome.failures {
                eprintln!("gate FAILED: {f}");
            }
            std::process::exit(1);
        }
    }
}

fn write_json(path: &str, contents: &str) {
    match std::fs::write(path, contents) {
        Ok(()) => eprintln!("wrote {path}"),
        Err(e) => eprintln!("warning: could not write {path}: {e}"),
    }
}
