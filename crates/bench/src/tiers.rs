//! The tiered scaling sweep: threads × size tiers over the ONAP-style
//! generator, plus per-tier storage and recovery measurements.
//!
//! Unlike the Table-1 sweep (anchored single-instance queries), each
//! family here is *unanchored and many-seeded* — one evaluation fans out
//! from hundreds-to-thousands of seeds, which is the shape the
//! work-stealing pool actually wins on at the large tier. Per tier the
//! sweep also records bytes/entity, the delta-encoding saving on version
//! history, and recovery time for journal replay vs the binary snapshot.

use std::sync::Arc;
use std::time::Instant;

use nepal_graph::{load_binary, load_journal, save_binary, save_journal, GraphView, TemporalGraph, TimeFilter, Uid};
use nepal_rpe::{evaluate, parse_rpe, plan_rpe, EvalOptions, GraphEstimator, Seeds};
use nepal_workload::{generate_tier_churned, SizeTier, VirtTopology};

/// One measurement of the tier sweep: a many-seed family evaluated with a
/// fixed worker-thread count at a fixed size tier.
#[derive(Debug, Clone)]
pub struct TierScalingRow {
    pub tier: SizeTier,
    pub name: String,
    pub threads: usize,
    pub seeds: usize,
    pub paths: usize,
    pub ms: f64,
    /// Time at 1 thread / time at this thread count (>1 = faster).
    pub speedup: f64,
}

/// Per-tier storage + recovery measurements.
#[derive(Debug, Clone)]
pub struct TierStorageRow {
    pub tier: SizeTier,
    pub entities: u64,
    pub versions: u64,
    /// In-memory store bytes per entity (entity + adjacency + indexes).
    pub bytes_per_entity: f64,
    /// Delta-encoding saving on version-history bytes (non-head versions),
    /// percent.
    pub history_delta_savings_pct: f64,
    pub journal_bytes: u64,
    pub binsnap_bytes: u64,
    /// Wall time to rebuild the store by replaying the text journal.
    pub journal_load_ms: f64,
    /// Wall time to load the binary snapshot (serial decode).
    pub binsnap_load_ms_serial: f64,
    /// Wall time to load the binary snapshot with the sweep's max threads.
    pub binsnap_load_ms_parallel: f64,
    /// journal_load_ms / min(binary load times).
    pub recovery_speedup: f64,
}

/// Everything measured for one tier.
#[derive(Debug, Clone)]
pub struct TierReport {
    pub tier: SizeTier,
    pub storage: TierStorageRow,
    pub rows: Vec<TierScalingRow>,
}

/// The unanchored many-seed families of the sweep: `(name, rpe,
/// seed-roster picker)`. Seeds are rostered from the generator so the
/// fan-out scales with the tier.
fn tier_families(topo: &VirtTopology) -> Vec<(&'static str, &'static str, Vec<Uid>)> {
    vec![
        // Top-down vertical descent from every VNF — the paper's
        // troubleshooting query, unanchored.
        ("vnf_to_host", "VNF()->[Vertical()]{1,6}->Host()", topo.vnfs.clone()),
        // Full service-to-metal descent from every service.
        ("service_to_host", "Service()->[Vertical()]{1,8}->Host()", topo.services.clone()),
        // Virtual-network attachment fan-out from containers (bounded
        // roster: every 4th container).
        (
            "container_to_network",
            "Container()->[VmNetwork()]->VirtualNetwork()",
            topo.containers.iter().copied().step_by(4).collect(),
        ),
    ]
}

fn eval_family(g: &TemporalGraph, rpe: &str, seeds: &[Uid], threads: usize) -> (usize, f64) {
    let plan = plan_rpe(g.schema(), &parse_rpe(rpe).expect("sweep RPE parses"), &GraphEstimator { graph: g })
        .expect("sweep RPE plans");
    let view = GraphView::new(g, TimeFilter::Current);
    let opts = EvalOptions { threads, ..Default::default() };
    let t0 = Instant::now();
    let paths = evaluate(&view, &plan, Seeds::Sources(seeds), &opts);
    (paths.len(), t0.elapsed().as_secs_f64() * 1e3)
}

fn measure_storage(tier: SizeTier, g: &TemporalGraph, max_threads: usize) -> TierStorageRow {
    let report = g.memory_report();
    let entities = g.num_entities() as u64;
    let (hist_stored, hist_full) = g.history_version_bytes();
    let history_delta_savings_pct =
        if hist_full == 0 { 0.0 } else { 100.0 * (1.0 - hist_stored as f64 / hist_full as f64) };

    let mut journal = Vec::new();
    save_journal(g, &mut journal).expect("journal save");
    let mut binsnap = Vec::new();
    save_binary(g, &mut binsnap).expect("binary save");
    let schema: Arc<_> = g.schema().clone();

    // Warm-up load: fault in allocator pools once so neither contender
    // pays the first-touch page-fault cost; every timed load below then
    // reuses freed memory (each store is dropped before the next run).
    drop(load_journal(schema.clone(), &mut std::io::Cursor::new(&journal)).expect("journal load"));

    let t0 = Instant::now();
    let gj = load_journal(schema.clone(), &mut std::io::Cursor::new(&journal)).expect("journal load");
    let journal_load_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(gj.num_versions(), g.num_versions());
    drop(gj);

    let t0 = Instant::now();
    let gb = load_binary(schema.clone(), &binsnap, 1).expect("binary load");
    let binsnap_load_ms_serial = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(gb.num_versions(), g.num_versions());
    drop(gb);

    let binsnap_load_ms_parallel = if max_threads > 1 {
        let t0 = Instant::now();
        let gp = load_binary(schema, &binsnap, max_threads).expect("binary load");
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        assert_eq!(gp.num_versions(), g.num_versions());
        ms
    } else {
        binsnap_load_ms_serial
    };

    let best_bin = binsnap_load_ms_serial.min(binsnap_load_ms_parallel);
    TierStorageRow {
        tier,
        entities,
        versions: g.num_versions(),
        bytes_per_entity: if entities == 0 { 0.0 } else { report.total_bytes as f64 / entities as f64 },
        history_delta_savings_pct,
        journal_bytes: journal.len() as u64,
        binsnap_bytes: binsnap.len() as u64,
        journal_load_ms,
        binsnap_load_ms_serial,
        binsnap_load_ms_parallel,
        recovery_speedup: if best_bin > 0.0 { journal_load_ms / best_bin } else { 1.0 },
    }
}

/// Run the full sweep: for each tier, generate + churn the graph, run
/// every family at every thread count, and measure storage + recovery.
/// An empty `counts` skips the query sweep entirely (storage-only mode,
/// used by the CI recovery smoke); the binary-snapshot parallel load then
/// uses the host's available parallelism.
pub fn run_scaling_tiers(tiers: &[SizeTier], seed: u64, counts: &[usize]) -> Vec<TierReport> {
    let max_threads = counts.iter().copied().max().unwrap_or_else(nepal_graph::binsnap::default_threads);
    let mut out = Vec::new();
    for &tier in tiers {
        let (topo, _) = generate_tier_churned(tier, seed);
        let g = &topo.graph;
        let mut rows = Vec::new();
        for (name, rpe, seeds) in tier_families(&topo) {
            let mut base_ms = 0.0f64;
            for &t in counts {
                let (paths, ms) = eval_family(g, rpe, &seeds, t);
                if t == 1 {
                    base_ms = ms;
                }
                rows.push(TierScalingRow {
                    tier,
                    name: name.to_string(),
                    threads: t,
                    seeds: seeds.len(),
                    paths,
                    ms,
                    speedup: if ms > 0.0 { base_ms / ms } else { 1.0 },
                });
            }
        }
        let storage = measure_storage(tier, g, max_threads);
        out.push(TierReport { tier, storage, rows });
    }
    out
}

/// Aggregate speedup per (tier, threads): total family ms at 1 thread /
/// total at `threads`.
pub fn tier_aggregates(reports: &[TierReport]) -> Vec<(SizeTier, usize, f64, f64)> {
    let mut out: Vec<(SizeTier, usize, f64, f64)> = Vec::new();
    for rep in reports {
        for r in &rep.rows {
            match out.iter_mut().find(|(t, n, _, _)| *t == r.tier && *n == r.threads) {
                Some(slot) => slot.2 += r.ms,
                None => out.push((r.tier, r.threads, r.ms, 1.0)),
            }
        }
    }
    for i in 0..out.len() {
        let base =
            out.iter().find(|(t, n, _, _)| *t == out[i].0 && *n == 1).map(|(_, _, ms, _)| *ms).unwrap_or(out[i].2);
        out[i].3 = if out[i].2 > 0.0 { base / out[i].2 } else { 1.0 };
    }
    out
}

/// Render the sweep for the terminal.
pub fn format_tier_scaling(reports: &[TierReport]) -> String {
    let mut s = String::new();
    s.push_str("Tiered scaling sweep: unanchored many-seed families, threads x size tiers\n");
    s.push_str(&format!(
        "{:<8} {:<22} {:>7} {:>8} {:>9} {:>11} {:>9}\n",
        "Tier", "Family", "threads", "seeds", "paths", "time", "speedup"
    ));
    for rep in reports {
        for r in &rep.rows {
            s.push_str(&format!(
                "{:<8} {:<22} {:>7} {:>8} {:>9} {:>8.2} ms {:>8.2}x\n",
                r.tier.name(),
                r.name,
                r.threads,
                r.seeds,
                r.paths,
                r.ms,
                r.speedup
            ));
        }
    }
    s.push_str("\nAggregates (sum of family times per tier):\n");
    for (tier, threads, ms, speedup) in tier_aggregates(reports) {
        s.push_str(&format!("{:<8} threads={threads:<3} {ms:>9.2} ms {speedup:>8.2}x\n", tier.name()));
    }
    s.push_str("\nStorage and recovery per tier:\n");
    s.push_str(&format!(
        "{:<8} {:>10} {:>10} {:>8} {:>8} {:>12} {:>12} {:>12} {:>10}\n",
        "Tier", "entities", "versions", "B/ent", "Δsave%", "journal", "binsnap", "jload", "recovery"
    ));
    for rep in reports {
        let st = &rep.storage;
        s.push_str(&format!(
            "{:<8} {:>10} {:>10} {:>8.1} {:>7.1}% {:>11}B {:>11}B {:>9.1}ms {:>9.2}x\n",
            st.tier.name(),
            st.entities,
            st.versions,
            st.bytes_per_entity,
            st.history_delta_savings_pct,
            st.journal_bytes,
            st.binsnap_bytes,
            st.journal_load_ms,
            st.recovery_speedup,
        ));
    }
    s
}

/// Render the sweep as the `BENCH_scaling.json` document. Every record —
/// query rows, aggregates, and storage rows — carries `tier`,
/// `host_parallelism`, and `bytes_per_entity`.
pub fn tier_scaling_json(reports: &[TierReport], counts: &[usize]) -> String {
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let bpe = |tier: SizeTier| -> f64 {
        reports.iter().find(|r| r.tier == tier).map(|r| r.storage.bytes_per_entity).unwrap_or(0.0)
    };
    let row_items: Vec<String> = reports
        .iter()
        .flat_map(|rep| rep.rows.iter())
        .map(|r| {
            format!(
                "{{\"tier\":{:?},\"host_parallelism\":{host},\"bytes_per_entity\":{:.1},\
                 \"name\":{:?},\"threads\":{},\"seeds\":{},\"paths\":{},\"ms\":{:.3},\"speedup\":{:.3}}}",
                r.tier.name(),
                bpe(r.tier),
                r.name,
                r.threads,
                r.seeds,
                r.paths,
                r.ms,
                r.speedup
            )
        })
        .collect();
    let agg_items: Vec<String> = tier_aggregates(reports)
        .iter()
        .map(|(tier, threads, ms, speedup)| {
            format!(
                "{{\"tier\":{:?},\"host_parallelism\":{host},\"bytes_per_entity\":{:.1},\
                 \"threads\":{threads},\"total_ms\":{ms:.3},\"speedup\":{speedup:.3}}}",
                tier.name(),
                bpe(*tier)
            )
        })
        .collect();
    let storage_items: Vec<String> = reports
        .iter()
        .map(|rep| {
            let st = &rep.storage;
            format!(
                "{{\"tier\":{:?},\"host_parallelism\":{host},\"bytes_per_entity\":{:.1},\
                 \"entities\":{},\"versions\":{},\"history_delta_savings_pct\":{:.2},\
                 \"journal_bytes\":{},\"binsnap_bytes\":{},\"journal_load_ms\":{:.3},\
                 \"binsnap_load_ms_serial\":{:.3},\"binsnap_load_ms_parallel\":{:.3},\
                 \"recovery_speedup\":{:.3}}}",
                st.tier.name(),
                st.bytes_per_entity,
                st.entities,
                st.versions,
                st.history_delta_savings_pct,
                st.journal_bytes,
                st.binsnap_bytes,
                st.journal_load_ms,
                st.binsnap_load_ms_serial,
                st.binsnap_load_ms_parallel,
                st.recovery_speedup,
            )
        })
        .collect();
    let count_items: Vec<String> = counts.iter().map(|c| c.to_string()).collect();
    format!(
        "{{\n\"host_parallelism\":{host},\n\"thread_counts\":[{}],\n\"rows\":[\n  {}\n],\n\
         \"aggregates\":[\n  {}\n],\n\"storage\":[\n  {}\n]\n}}\n",
        count_items.join(","),
        row_items.join(",\n  "),
        agg_items.join(",\n  "),
        storage_items.join(",\n  ")
    )
}

/// Gate outcomes for the CI smokes. `None` = gate not applicable on this
/// host (e.g. speedup gates on a single-core runner).
#[derive(Debug, Clone, Default)]
pub struct GateOutcome {
    pub failures: Vec<String>,
    pub skipped: Vec<String>,
}

impl GateOutcome {
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// Check the sweep's gates, all against the *largest* swept tier. The
/// `speedup` gate (aggregate at 4 threads) and the `recovery` gate
/// (binary snapshot load vs journal replay — the binary loader's decode
/// is parallel and its apply is overlapped, so the ratio is a parallelism
/// measurement) are skipped (recorded, not failed) when the host has
/// fewer than 4 cores; `delta_savings` applies unconditionally.
pub fn check_gates(
    reports: &[TierReport],
    speedup: Option<f64>,
    recovery: Option<f64>,
    delta_savings: Option<f64>,
) -> GateOutcome {
    let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let mut out = GateOutcome::default();
    let Some(top) = reports.iter().map(|r| r.tier).max() else {
        out.failures.push("no tiers swept".into());
        return out;
    };
    if let Some(gate) = speedup {
        if host < 4 {
            out.skipped.push(format!(
                "speedup gate ({gate:.2}x at 4 threads, {} tier) skipped: host_parallelism = {host} < 4",
                top.name()
            ));
        } else {
            match tier_aggregates(reports).iter().find(|(t, n, _, _)| *t == top && *n == 4) {
                Some((_, _, _, speedup)) if *speedup >= gate => {}
                Some((_, _, _, speedup)) => out.failures.push(format!(
                    "aggregate speedup at 4 threads on {} tier is {speedup:.2}x < required {gate:.2}x",
                    top.name()
                )),
                None => out.failures.push(format!("no 4-thread aggregate for {} tier", top.name())),
            }
        }
    }
    if let Some(gate) = recovery {
        if host < 4 {
            out.skipped.push(format!(
                "recovery gate ({gate:.2}x, {} tier) skipped: host_parallelism = {host} < 4",
                top.name()
            ));
        } else {
            let st = &reports.iter().find(|r| r.tier == top).expect("top tier swept").storage;
            if st.recovery_speedup < gate {
                out.failures.push(format!(
                    "binary snapshot recovery on {} tier is {:.2}x vs journal replay, < required {gate:.2}x",
                    top.name(),
                    st.recovery_speedup
                ));
            }
        }
    }
    if let Some(gate) = delta_savings {
        let st = &reports.iter().find(|r| r.tier == top).expect("top tier swept").storage;
        if st.history_delta_savings_pct < gate {
            out.failures.push(format!(
                "history delta savings on {} tier is {:.1}% < required {gate:.1}%",
                top.name(),
                st.history_delta_savings_pct
            ));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn toy_sweep_produces_rows_storage_and_json() {
        let reports = run_scaling_tiers(&[SizeTier::Toy], 42, &[1, 2]);
        assert_eq!(reports.len(), 1);
        let rep = &reports[0];
        assert_eq!(rep.rows.len(), 3 * 2, "3 families x 2 thread counts");
        assert!(rep.rows.iter().all(|r| r.paths > 0), "families must return paths");
        let st = &rep.storage;
        assert!(st.entities > 0 && st.bytes_per_entity > 0.0);
        assert!(st.history_delta_savings_pct > 0.0, "churned toy graph must delta-compress history");
        assert!(st.binsnap_bytes < st.journal_bytes, "binary snapshot must be smaller than the text journal");
        assert!(st.recovery_speedup > 1.0, "binary load must beat journal replay");
        let json = tier_scaling_json(&reports, &[1, 2]);
        assert!(json.contains("\"tier\":\"toy\""));
        assert!(json.contains("\"host_parallelism\""));
        assert!(json.contains("\"bytes_per_entity\""));
        assert!(json.contains("\"recovery_speedup\""));
    }

    #[test]
    fn gates_report_failures_and_skips() {
        let reports = run_scaling_tiers(&[SizeTier::Toy], 42, &[1]);
        let host = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
        // Impossible delta gate always fails; the impossible recovery gate
        // fails on >=4-core hosts and is recorded skipped on smaller ones
        // (binary-vs-journal recovery is a parallelism measurement).
        let out = check_gates(&reports, None, Some(1e6), Some(99.9));
        if host < 4 {
            assert_eq!(out.failures.len(), 1);
            assert!(out.skipped.iter().any(|s| s.contains("recovery")), "skipped = {:?}", out.skipped);
        } else {
            assert_eq!(out.failures.len(), 2);
        }
        // Speedup gate either applies (>=4 cores) or is recorded skipped.
        let out = check_gates(&reports, Some(1.2), None, None);
        if host < 4 {
            assert!(!out.skipped.is_empty() && out.passed());
        }
    }
}
