//! Canonical, self-delimiting text codec for [`Value`]s.
//!
//! Used by the graph journal (persistence) and anywhere a value must
//! round-trip losslessly through text. The encoding is netstring-inspired:
//! every value starts with a one-byte tag; strings are length-prefixed so
//! no escaping is ever needed; floats are encoded via their bit pattern so
//! round-trips are exact.
//!
//! ```text
//! _            null          b1 / b0       bool
//! i-42;        int           f3FF0000…;    float (hex bits)
//! t1486800…;   timestamp     a9:10.0.0.1   ip (length-prefixed text)
//! s5:hello     string        l2[i1;i2;]    list
//! e…[…]        set           m…[k v …]     map        c…[…] composite
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::value::Value;

/// Codec error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    pub pos: usize,
    pub msg: String,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "value codec error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for CodecError {}

/// Encode a value onto a string buffer.
pub fn encode_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push('_'),
        Value::Bool(b) => out.push_str(if *b { "b1" } else { "b0" }),
        Value::Int(i) => {
            let _ = write!(out, "i{i};");
        }
        Value::Float(f) => {
            let _ = write!(out, "f{:016X};", f.to_bits());
        }
        Value::Ts(t) => {
            let _ = write!(out, "t{t};");
        }
        Value::Ip(ip) => {
            let s = ip.to_string();
            let _ = write!(out, "a{}:{}", s.len(), s);
        }
        Value::Str(s) => {
            let _ = write!(out, "s{}:{}", s.len(), s);
        }
        Value::List(items) => seq('l', items, out),
        Value::Set(items) => seq('e', items, out),
        Value::Composite(items) => seq('c', items, out),
        Value::Map(m) => {
            let _ = write!(out, "m{}[", m.len());
            for (k, val) in m {
                encode_value(k, out);
                encode_value(val, out);
            }
            out.push(']');
        }
    }
}

fn seq(tag: char, items: &[Value], out: &mut String) {
    let _ = write!(out, "{tag}{}[", items.len());
    for it in items {
        encode_value(it, out);
    }
    out.push(']');
}

/// Encode to a fresh string.
pub fn value_to_text(v: &Value) -> String {
    let mut s = String::new();
    encode_value(v, &mut s);
    s
}

struct D<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> D<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, CodecError> {
        Err(CodecError { pos: self.i, msg: msg.to_string() })
    }

    fn byte(&mut self) -> Result<u8, CodecError> {
        let b = *self.b.get(self.i).ok_or(CodecError { pos: self.i, msg: "eof".into() })?;
        self.i += 1;
        Ok(b)
    }

    fn int_until(&mut self, stop: u8) -> Result<i64, CodecError> {
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i] != stop {
            self.i += 1;
        }
        if self.i >= self.b.len() {
            return self.err("unterminated number");
        }
        let s = std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| CodecError { pos: start, msg: "bad utf8".into() })?;
        let n = s.parse().map_err(|_| CodecError { pos: start, msg: "bad number".into() })?;
        self.i += 1; // consume stop byte
        Ok(n)
    }

    fn usize_until(&mut self, stop: u8) -> Result<usize, CodecError> {
        let n = self.int_until(stop)?;
        usize::try_from(n).map_err(|_| CodecError { pos: self.i, msg: "negative length".into() })
    }

    fn take(&mut self, n: usize) -> Result<&'a str, CodecError> {
        if self.i + n > self.b.len() {
            return self.err("truncated payload");
        }
        let s = std::str::from_utf8(&self.b[self.i..self.i + n])
            .map_err(|_| CodecError { pos: self.i, msg: "bad utf8".into() })?;
        self.i += n;
        Ok(s)
    }

    fn value(&mut self) -> Result<Value, CodecError> {
        match self.byte()? {
            b'_' => Ok(Value::Null),
            b'b' => match self.byte()? {
                b'1' => Ok(Value::Bool(true)),
                b'0' => Ok(Value::Bool(false)),
                _ => self.err("bad bool"),
            },
            b'i' => Ok(Value::Int(self.int_until(b';')?)),
            b't' => Ok(Value::Ts(self.int_until(b';')?)),
            b'f' => {
                let hex = self.take(16)?.to_string();
                if self.byte()? != b';' {
                    return self.err("bad float terminator");
                }
                let bits = u64::from_str_radix(&hex, 16)
                    .map_err(|_| CodecError { pos: self.i, msg: "bad float bits".into() })?;
                Ok(Value::Float(f64::from_bits(bits)))
            }
            b'a' => {
                let n = self.usize_until(b':')?;
                let s = self.take(n)?;
                s.parse().map(Value::Ip).map_err(|_| CodecError { pos: self.i, msg: "bad ip".into() })
            }
            b's' => {
                let n = self.usize_until(b':')?;
                Ok(Value::Str(self.take(n)?.to_string()))
            }
            tag @ (b'l' | b'e' | b'c') => {
                let n = self.usize_until(b'[')?;
                let mut items = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    items.push(self.value()?);
                }
                if self.byte()? != b']' {
                    return self.err("missing `]`");
                }
                Ok(match tag {
                    b'l' => Value::List(items),
                    b'e' => Value::Set(items),
                    _ => Value::Composite(items),
                })
            }
            b'm' => {
                let n = self.usize_until(b'[')?;
                let mut m = BTreeMap::new();
                for _ in 0..n {
                    let k = self.value()?;
                    let v = self.value()?;
                    m.insert(k, v);
                }
                if self.byte()? != b']' {
                    return self.err("missing `]`");
                }
                Ok(Value::Map(m))
            }
            other => self.err(&format!("unknown tag `{}`", other as char)),
        }
    }
}

/// Decode one value from the start of `text`; returns it and the number of
/// bytes consumed.
pub fn decode_value(text: &str) -> Result<(Value, usize), CodecError> {
    let mut d = D { b: text.as_bytes(), i: 0 };
    let v = d.value()?;
    Ok((v, d.i))
}

/// Decode a value that must span the whole input.
pub fn value_from_text(text: &str) -> Result<Value, CodecError> {
    let (v, used) = decode_value(text)?;
    if used != text.len() {
        return Err(CodecError { pos: used, msg: "trailing input".into() });
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(v: Value) {
        let text = value_to_text(&v);
        let back = value_from_text(&text).unwrap_or_else(|e| panic!("{e} for `{text}`"));
        assert_eq!(v, back, "round trip failed via `{text}`");
    }

    #[test]
    fn round_trips_every_variant() {
        let mut m = BTreeMap::new();
        m.insert(Value::Str("k".into()), Value::List(vec![Value::Int(1)]));
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(0.1),
            Value::Float(f64::NAN), // exact bits preserved
            Value::Str("".into()),
            Value::Str("colons:and;brackets][nested s5:fake".into()),
            Value::Str("unicode ☃ héllo".into()),
            Value::Ts(1_486_800_000_000_000),
            Value::Ip("10.0.0.1".parse().unwrap()),
            Value::Ip("::1".parse().unwrap()),
            Value::List(vec![]),
            Value::List(vec![Value::Null, Value::Str("x".into())]),
            Value::set(vec![Value::Int(2), Value::Int(1)]),
            Value::Map(m),
            Value::Composite(vec![Value::Composite(vec![Value::Int(1)])]),
        ] {
            if let Value::Float(f) = v {
                // NaN != NaN under PartialEq? Value uses total_cmp → equal.
                let text = value_to_text(&Value::Float(f));
                let back = value_from_text(&text).unwrap();
                if let Value::Float(g) = back {
                    assert_eq!(f.to_bits(), g.to_bits());
                } else {
                    panic!("wrong variant");
                }
                continue;
            }
            rt(v);
        }
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in ["", "x", "i42", "s5:abc", "l2[i1;]", "b2", "f1234;", "m1[i1;]"] {
            assert!(value_from_text(bad).is_err(), "accepted `{bad}`");
        }
        assert!(value_from_text("i1;i2;").is_err()); // trailing input
    }

    #[test]
    fn strings_never_need_escaping() {
        // Adversarial content that would break delimiter-based formats.
        rt(Value::Str(value_to_text(&Value::List(vec![Value::Int(1)]))));
    }
}
