//! Canonical, self-delimiting text codec for [`Value`]s.
//!
//! Used by the graph journal (persistence) and anywhere a value must
//! round-trip losslessly through text. The encoding is netstring-inspired:
//! every value starts with a one-byte tag; strings are length-prefixed so
//! no escaping is ever needed; floats are encoded via their bit pattern so
//! round-trips are exact.
//!
//! ```text
//! _            null          b1 / b0       bool
//! i-42;        int           f3FF0000…;    float (hex bits)
//! t1486800…;   timestamp     a9:10.0.0.1   ip (length-prefixed text)
//! s5:hello     string        l2[i1;i2;]    list
//! e…[…]        set           m…[k v …]     map        c…[…] composite
//! ```

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::value::Value;

/// Codec error with byte offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError {
    pub pos: usize,
    pub msg: String,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "value codec error at byte {}: {}", self.pos, self.msg)
    }
}

impl std::error::Error for CodecError {}

/// Encode a value onto a string buffer.
pub fn encode_value(v: &Value, out: &mut String) {
    match v {
        Value::Null => out.push('_'),
        Value::Bool(b) => out.push_str(if *b { "b1" } else { "b0" }),
        Value::Int(i) => {
            let _ = write!(out, "i{i};");
        }
        Value::Float(f) => {
            let _ = write!(out, "f{:016X};", f.to_bits());
        }
        Value::Ts(t) => {
            let _ = write!(out, "t{t};");
        }
        Value::Ip(ip) => {
            let s = ip.to_string();
            let _ = write!(out, "a{}:{}", s.len(), s);
        }
        Value::Str(s) => {
            let _ = write!(out, "s{}:{}", s.len(), s);
        }
        Value::List(items) => seq('l', items, out),
        Value::Set(items) => seq('e', items, out),
        Value::Composite(items) => seq('c', items, out),
        Value::Map(m) => {
            let _ = write!(out, "m{}[", m.len());
            for (k, val) in m {
                encode_value(k, out);
                encode_value(val, out);
            }
            out.push(']');
        }
    }
}

fn seq(tag: char, items: &[Value], out: &mut String) {
    let _ = write!(out, "{tag}{}[", items.len());
    for it in items {
        encode_value(it, out);
    }
    out.push(']');
}

/// Encode to a fresh string.
pub fn value_to_text(v: &Value) -> String {
    let mut s = String::new();
    encode_value(v, &mut s);
    s
}

struct D<'a> {
    b: &'a [u8],
    i: usize,
}

impl<'a> D<'a> {
    fn err<T>(&self, msg: &str) -> Result<T, CodecError> {
        Err(CodecError { pos: self.i, msg: msg.to_string() })
    }

    fn byte(&mut self) -> Result<u8, CodecError> {
        let b = *self.b.get(self.i).ok_or(CodecError { pos: self.i, msg: "eof".into() })?;
        self.i += 1;
        Ok(b)
    }

    fn int_until(&mut self, stop: u8) -> Result<i64, CodecError> {
        let start = self.i;
        while self.i < self.b.len() && self.b[self.i] != stop {
            self.i += 1;
        }
        if self.i >= self.b.len() {
            return self.err("unterminated number");
        }
        let s = std::str::from_utf8(&self.b[start..self.i])
            .map_err(|_| CodecError { pos: start, msg: "bad utf8".into() })?;
        let n = s.parse().map_err(|_| CodecError { pos: start, msg: "bad number".into() })?;
        self.i += 1; // consume stop byte
        Ok(n)
    }

    fn usize_until(&mut self, stop: u8) -> Result<usize, CodecError> {
        let n = self.int_until(stop)?;
        usize::try_from(n).map_err(|_| CodecError { pos: self.i, msg: "negative length".into() })
    }

    fn take(&mut self, n: usize) -> Result<&'a str, CodecError> {
        if self.i + n > self.b.len() {
            return self.err("truncated payload");
        }
        let s = std::str::from_utf8(&self.b[self.i..self.i + n])
            .map_err(|_| CodecError { pos: self.i, msg: "bad utf8".into() })?;
        self.i += n;
        Ok(s)
    }

    fn value(&mut self) -> Result<Value, CodecError> {
        match self.byte()? {
            b'_' => Ok(Value::Null),
            b'b' => match self.byte()? {
                b'1' => Ok(Value::Bool(true)),
                b'0' => Ok(Value::Bool(false)),
                _ => self.err("bad bool"),
            },
            b'i' => Ok(Value::Int(self.int_until(b';')?)),
            b't' => Ok(Value::Ts(self.int_until(b';')?)),
            b'f' => {
                let hex = self.take(16)?.to_string();
                if self.byte()? != b';' {
                    return self.err("bad float terminator");
                }
                let bits = u64::from_str_radix(&hex, 16)
                    .map_err(|_| CodecError { pos: self.i, msg: "bad float bits".into() })?;
                Ok(Value::Float(f64::from_bits(bits)))
            }
            b'a' => {
                let n = self.usize_until(b':')?;
                let s = self.take(n)?;
                s.parse().map(Value::Ip).map_err(|_| CodecError { pos: self.i, msg: "bad ip".into() })
            }
            b's' => {
                let n = self.usize_until(b':')?;
                Ok(Value::Str(self.take(n)?.to_string()))
            }
            tag @ (b'l' | b'e' | b'c') => {
                let n = self.usize_until(b'[')?;
                let mut items = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    items.push(self.value()?);
                }
                if self.byte()? != b']' {
                    return self.err("missing `]`");
                }
                Ok(match tag {
                    b'l' => Value::List(items),
                    b'e' => Value::Set(items),
                    _ => Value::Composite(items),
                })
            }
            b'm' => {
                let n = self.usize_until(b'[')?;
                let mut m = BTreeMap::new();
                for _ in 0..n {
                    let k = self.value()?;
                    let v = self.value()?;
                    m.insert(k, v);
                }
                if self.byte()? != b']' {
                    return self.err("missing `]`");
                }
                Ok(Value::Map(m))
            }
            other => self.err(&format!("unknown tag `{}`", other as char)),
        }
    }
}

/// Decode one value from the start of `text`; returns it and the number of
/// bytes consumed.
pub fn decode_value(text: &str) -> Result<(Value, usize), CodecError> {
    let mut d = D { b: text.as_bytes(), i: 0 };
    let v = d.value()?;
    Ok((v, d.i))
}

// ----------------------------------------------------------------------
// Binary codec
// ----------------------------------------------------------------------
//
// A compact, self-delimiting binary encoding used by the graph's binary
// snapshot format. Lengths and small integers are LEB128 varints; i64
// payloads (ints, timestamps) are zigzag varints so small magnitudes stay
// short; floats are their raw bit pattern (exact round-trips, NaN
// included); strings are length-prefixed UTF-8.
//
// ```text
// 0x00 null        0x01/0x02 bool     0x03 int (zigzag varint)
// 0x04 float (8B)  0x05 ts (zigzag)   0x06 ip (len + text)
// 0x07 str         0x08 list          0x09 set
// 0x0A map         0x0B composite
// ```

/// Append `n` as an unsigned LEB128 varint.
#[inline]
pub fn write_uvarint(mut n: u64, out: &mut Vec<u8>) {
    loop {
        let b = (n & 0x7F) as u8;
        n >>= 7;
        if n == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Read an unsigned LEB128 varint from `buf` starting at `*pos`.
#[inline]
pub fn read_uvarint(buf: &[u8], pos: &mut usize) -> Result<u64, CodecError> {
    let mut n = 0u64;
    let mut shift = 0u32;
    loop {
        let b = *buf.get(*pos).ok_or(CodecError { pos: *pos, msg: "varint eof".into() })?;
        *pos += 1;
        if shift >= 64 {
            return Err(CodecError { pos: *pos, msg: "varint overflow".into() });
        }
        n |= u64::from(b & 0x7F) << shift;
        if b & 0x80 == 0 {
            return Ok(n);
        }
        shift += 7;
    }
}

/// Append `n` as a zigzag-encoded signed varint.
#[inline]
pub fn write_ivarint(n: i64, out: &mut Vec<u8>) {
    write_uvarint(((n << 1) ^ (n >> 63)) as u64, out);
}

/// Read a zigzag-encoded signed varint.
#[inline]
pub fn read_ivarint(buf: &[u8], pos: &mut usize) -> Result<i64, CodecError> {
    let z = read_uvarint(buf, pos)?;
    Ok(((z >> 1) as i64) ^ -((z & 1) as i64))
}

/// Append the binary encoding of `v`.
pub fn encode_value_bin(v: &Value, out: &mut Vec<u8>) {
    match v {
        Value::Null => out.push(0x00),
        Value::Bool(false) => out.push(0x01),
        Value::Bool(true) => out.push(0x02),
        Value::Int(i) => {
            out.push(0x03);
            write_ivarint(*i, out);
        }
        Value::Float(f) => {
            out.push(0x04);
            out.extend_from_slice(&f.to_bits().to_le_bytes());
        }
        Value::Ts(t) => {
            out.push(0x05);
            write_ivarint(*t, out);
        }
        Value::Ip(ip) => {
            out.push(0x06);
            let s = ip.to_string();
            write_uvarint(s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Str(s) => {
            out.push(0x07);
            write_uvarint(s.len() as u64, out);
            out.extend_from_slice(s.as_bytes());
        }
        Value::List(items) => bin_seq(0x08, items, out),
        Value::Set(items) => bin_seq(0x09, items, out),
        Value::Map(m) => {
            out.push(0x0A);
            write_uvarint(m.len() as u64, out);
            for (k, val) in m {
                encode_value_bin(k, out);
                encode_value_bin(val, out);
            }
        }
        Value::Composite(items) => bin_seq(0x0B, items, out),
    }
}

fn bin_seq(tag: u8, items: &[Value], out: &mut Vec<u8>) {
    out.push(tag);
    write_uvarint(items.len() as u64, out);
    for it in items {
        encode_value_bin(it, out);
    }
}

#[inline]
fn bin_take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], CodecError> {
    let end = pos.checked_add(n).filter(|&e| e <= buf.len());
    let end = end.ok_or(CodecError { pos: *pos, msg: "truncated payload".into() })?;
    let s = &buf[*pos..end];
    *pos = end;
    Ok(s)
}

/// Decode one binary value from `buf` starting at `*pos`, advancing it.
pub fn decode_value_bin(buf: &[u8], pos: &mut usize) -> Result<Value, CodecError> {
    let tag = *buf.get(*pos).ok_or(CodecError { pos: *pos, msg: "value eof".into() })?;
    *pos += 1;
    match tag {
        0x00 => Ok(Value::Null),
        0x01 => Ok(Value::Bool(false)),
        0x02 => Ok(Value::Bool(true)),
        0x03 => Ok(Value::Int(read_ivarint(buf, pos)?)),
        0x04 => {
            let bytes = bin_take(buf, pos, 8)?;
            Ok(Value::Float(f64::from_bits(u64::from_le_bytes(bytes.try_into().unwrap()))))
        }
        0x05 => Ok(Value::Ts(read_ivarint(buf, pos)?)),
        0x06 => {
            let n = read_uvarint(buf, pos)? as usize;
            let s = std::str::from_utf8(bin_take(buf, pos, n)?)
                .map_err(|_| CodecError { pos: *pos, msg: "bad utf8".into() })?;
            s.parse().map(Value::Ip).map_err(|_| CodecError { pos: *pos, msg: "bad ip".into() })
        }
        0x07 => {
            let n = read_uvarint(buf, pos)? as usize;
            let s = std::str::from_utf8(bin_take(buf, pos, n)?)
                .map_err(|_| CodecError { pos: *pos, msg: "bad utf8".into() })?;
            Ok(Value::Str(s.to_string()))
        }
        tag @ (0x08 | 0x09 | 0x0B) => {
            let n = read_uvarint(buf, pos)? as usize;
            let mut items = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                items.push(decode_value_bin(buf, pos)?);
            }
            Ok(match tag {
                0x08 => Value::List(items),
                0x09 => Value::Set(items),
                _ => Value::Composite(items),
            })
        }
        0x0A => {
            let n = read_uvarint(buf, pos)? as usize;
            let mut m = BTreeMap::new();
            for _ in 0..n {
                let k = decode_value_bin(buf, pos)?;
                let v = decode_value_bin(buf, pos)?;
                m.insert(k, v);
            }
            Ok(Value::Map(m))
        }
        other => Err(CodecError { pos: *pos, msg: format!("unknown binary tag 0x{other:02X}") }),
    }
}

/// Decode a value that must span the whole input.
pub fn value_from_text(text: &str) -> Result<Value, CodecError> {
    let (v, used) = decode_value(text)?;
    if used != text.len() {
        return Err(CodecError { pos: used, msg: "trailing input".into() });
    }
    Ok(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rt(v: Value) {
        let text = value_to_text(&v);
        let back = value_from_text(&text).unwrap_or_else(|e| panic!("{e} for `{text}`"));
        assert_eq!(v, back, "round trip failed via `{text}`");
    }

    #[test]
    fn round_trips_every_variant() {
        let mut m = BTreeMap::new();
        m.insert(Value::Str("k".into()), Value::List(vec![Value::Int(1)]));
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(0.1),
            Value::Float(f64::NAN), // exact bits preserved
            Value::Str("".into()),
            Value::Str("colons:and;brackets][nested s5:fake".into()),
            Value::Str("unicode ☃ héllo".into()),
            Value::Ts(1_486_800_000_000_000),
            Value::Ip("10.0.0.1".parse().unwrap()),
            Value::Ip("::1".parse().unwrap()),
            Value::List(vec![]),
            Value::List(vec![Value::Null, Value::Str("x".into())]),
            Value::set(vec![Value::Int(2), Value::Int(1)]),
            Value::Map(m),
            Value::Composite(vec![Value::Composite(vec![Value::Int(1)])]),
        ] {
            if let Value::Float(f) = v {
                // NaN != NaN under PartialEq? Value uses total_cmp → equal.
                let text = value_to_text(&Value::Float(f));
                let back = value_from_text(&text).unwrap();
                if let Value::Float(g) = back {
                    assert_eq!(f.to_bits(), g.to_bits());
                } else {
                    panic!("wrong variant");
                }
                continue;
            }
            rt(v);
        }
    }

    #[test]
    fn malformed_inputs_rejected() {
        for bad in ["", "x", "i42", "s5:abc", "l2[i1;]", "b2", "f1234;", "m1[i1;]"] {
            assert!(value_from_text(bad).is_err(), "accepted `{bad}`");
        }
        assert!(value_from_text("i1;i2;").is_err()); // trailing input
    }

    #[test]
    fn strings_never_need_escaping() {
        // Adversarial content that would break delimiter-based formats.
        rt(Value::Str(value_to_text(&Value::List(vec![Value::Int(1)]))));
    }

    fn rt_bin(v: Value) {
        let mut buf = Vec::new();
        encode_value_bin(&v, &mut buf);
        let mut pos = 0;
        let back = decode_value_bin(&buf, &mut pos).unwrap_or_else(|e| panic!("{e} for {v:?}"));
        assert_eq!(pos, buf.len(), "did not consume whole encoding of {v:?}");
        if let (Value::Float(a), Value::Float(b)) = (&v, &back) {
            assert_eq!(a.to_bits(), b.to_bits());
        } else {
            assert_eq!(v, back, "binary round trip failed for {v:?}");
        }
    }

    #[test]
    fn binary_codec_round_trips_every_variant() {
        let mut m = BTreeMap::new();
        m.insert(Value::Str("k".into()), Value::List(vec![Value::Int(1)]));
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Bool(false),
            Value::Int(0),
            Value::Int(-1),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(0.1),
            Value::Float(f64::NAN),
            Value::Str("".into()),
            Value::Str("unicode ☃ héllo".into()),
            Value::Ts(1_486_800_000_000_000),
            Value::Ts(i64::MAX), // FOREVER sentinel must survive zigzag
            Value::Ip("10.0.0.1".parse().unwrap()),
            Value::Ip("::1".parse().unwrap()),
            Value::List(vec![Value::Null, Value::Str("x".into())]),
            Value::set(vec![Value::Int(2), Value::Int(1)]),
            Value::Map(m),
            Value::Composite(vec![Value::Composite(vec![Value::Int(1)])]),
        ] {
            rt_bin(v);
        }
    }

    #[test]
    fn binary_codec_is_compact_for_small_ints() {
        let mut buf = Vec::new();
        encode_value_bin(&Value::Int(42), &mut buf);
        assert_eq!(buf.len(), 2); // tag + single varint byte
    }

    #[test]
    fn varints_round_trip_edge_values() {
        for n in [0u64, 1, 127, 128, 300, u64::MAX] {
            let mut buf = Vec::new();
            write_uvarint(n, &mut buf);
            let mut pos = 0;
            assert_eq!(read_uvarint(&buf, &mut pos).unwrap(), n);
            assert_eq!(pos, buf.len());
        }
        for n in [0i64, -1, 1, i64::MIN, i64::MAX] {
            let mut buf = Vec::new();
            write_ivarint(n, &mut buf);
            let mut pos = 0;
            assert_eq!(read_ivarint(&buf, &mut pos).unwrap(), n);
        }
    }

    #[test]
    fn malformed_binary_inputs_rejected() {
        for bad in [&[][..], &[0xFF], &[0x03], &[0x07, 0x05, b'a'], &[0x04, 1, 2, 3]] {
            let mut pos = 0;
            assert!(decode_value_bin(bad, &mut pos).is_err(), "accepted {bad:?}");
        }
        // Varint longer than 64 bits.
        let mut pos = 0;
        assert!(read_uvarint(&[0x80u8; 11], &mut pos).is_err());
    }
}
