//! Field types, field definitions, and composite data types.
//!
//! Mirrors the `data_types` section of the TOSCA-derived Nepal schema
//! language (§3.2.1): composite data types with named fields, container
//! types (`list`, `set`, `map`), and inheritance among data types. The
//! composition DAG must be acyclic, which [`crate::schema::SchemaBuilder`]
//! enforces by construction order.

use std::fmt;

use crate::error::{Result, SchemaError};
use crate::value::Value;

/// Identifier of a composite data type within a schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DataTypeId(pub u32);

/// The declared type of a field.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FieldType {
    Bool,
    Int,
    Float,
    Str,
    /// Timestamp (transaction or application time).
    Ts,
    /// IPv4/IPv6 address.
    Ip,
    /// `list<T>` container.
    List(Box<FieldType>),
    /// `set<T>` container.
    Set(Box<FieldType>),
    /// `map<K, V>` container.
    Map(Box<FieldType>, Box<FieldType>),
    /// A named composite data type.
    Data(DataTypeId),
}

impl FieldType {
    /// `true` if this is a scalar (non-container, non-composite) type.
    pub fn is_scalar(&self) -> bool {
        !matches!(self, FieldType::List(_) | FieldType::Set(_) | FieldType::Map(_, _) | FieldType::Data(_))
    }
}

impl fmt::Display for FieldType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FieldType::Bool => write!(f, "bool"),
            FieldType::Int => write!(f, "int"),
            FieldType::Float => write!(f, "float"),
            FieldType::Str => write!(f, "str"),
            FieldType::Ts => write!(f, "ts"),
            FieldType::Ip => write!(f, "ip"),
            FieldType::List(t) => write!(f, "list<{t}>"),
            FieldType::Set(t) => write!(f, "set<{t}>"),
            FieldType::Map(k, v) => write!(f, "map<{k}, {v}>"),
            FieldType::Data(id) => write!(f, "data#{}", id.0),
        }
    }
}

/// Definition of one field on a class or data type.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FieldDef {
    /// Field name, unique along the inheritance chain of its owner.
    pub name: String,
    /// Declared type.
    pub ty: FieldType,
    /// Required fields must be present (non-null) in every record.
    pub required: bool,
    /// Unique fields are enforced per *exact* class extent and indexed.
    pub unique: bool,
}

impl FieldDef {
    /// A required, non-unique field.
    pub fn new(name: impl Into<String>, ty: FieldType) -> Self {
        FieldDef { name: name.into(), ty, required: true, unique: false }
    }

    /// Mark the field as a unique key.
    pub fn unique(mut self) -> Self {
        self.unique = true;
        self
    }

    /// Mark the field as optional (nullable).
    pub fn optional(mut self) -> Self {
        self.required = false;
        self
    }
}

/// A named composite data type (`data_types` in TOSCA terms).
#[derive(Debug, Clone)]
pub struct DataTypeDef {
    pub name: String,
    /// Optional parent data type; fields of the parent are inherited and
    /// laid out before this type's own fields.
    pub parent: Option<DataTypeId>,
    /// Fields declared directly on this data type.
    pub own_fields: Vec<FieldDef>,
}

/// Registry of data types; owned by a [`crate::schema::Schema`].
#[derive(Debug, Clone, Default)]
pub struct DataTypeRegistry {
    defs: Vec<DataTypeDef>,
}

impl DataTypeRegistry {
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    pub fn get(&self, id: DataTypeId) -> &DataTypeDef {
        &self.defs[id.0 as usize]
    }

    pub fn by_name(&self, name: &str) -> Option<DataTypeId> {
        self.defs.iter().position(|d| d.name == name).map(|i| DataTypeId(i as u32))
    }

    /// Register a new data type. Because a data type may only reference
    /// already-registered types, the composition DAG is acyclic by
    /// construction.
    pub fn register(&mut self, def: DataTypeDef) -> Result<DataTypeId> {
        if self.by_name(&def.name).is_some() {
            return Err(SchemaError::DuplicateDataType(def.name));
        }
        self.defs.push(def);
        Ok(DataTypeId(self.defs.len() as u32 - 1))
    }

    /// Full field layout of a data type: ancestor fields first.
    pub fn all_fields(&self, id: DataTypeId) -> Vec<&FieldDef> {
        let mut chain = Vec::new();
        let mut cur = Some(id);
        while let Some(c) = cur {
            chain.push(c);
            cur = self.get(c).parent;
        }
        let mut out = Vec::new();
        for c in chain.iter().rev() {
            out.extend(self.get(*c).own_fields.iter());
        }
        out
    }

    /// Validate a [`Value`] against a [`FieldType`].
    pub fn validate_value(&self, ty: &FieldType, v: &Value) -> Result<()> {
        let err = |expected: String| {
            Err(SchemaError::TypeMismatch { field: String::new(), expected, got: v.kind_name().to_string() })
        };
        match (ty, v) {
            (_, Value::Null) => Ok(()), // nullability checked at record level
            (FieldType::Bool, Value::Bool(_))
            | (FieldType::Int, Value::Int(_))
            | (FieldType::Float, Value::Float(_))
            | (FieldType::Str, Value::Str(_))
            | (FieldType::Ts, Value::Ts(_))
            | (FieldType::Ip, Value::Ip(_)) => Ok(()),
            (FieldType::Float, Value::Int(_)) => Ok(()), // implicit widening
            (FieldType::List(t), Value::List(items)) | (FieldType::Set(t), Value::Set(items)) => {
                for it in items {
                    self.validate_value(t, it)?;
                }
                Ok(())
            }
            (FieldType::Map(kt, vt), Value::Map(m)) => {
                for (k, val) in m {
                    self.validate_value(kt, k)?;
                    self.validate_value(vt, val)?;
                }
                Ok(())
            }
            (FieldType::Data(id), Value::Composite(fields)) => {
                let defs = self.all_fields(*id);
                if defs.len() != fields.len() {
                    return err(format!("composite `{}` with {} fields", self.get(*id).name, defs.len()));
                }
                for (fd, fv) in defs.iter().zip(fields) {
                    self.validate_value(&fd.ty, fv).map_err(|e| match e {
                        SchemaError::TypeMismatch { expected, got, .. } => {
                            SchemaError::TypeMismatch { field: fd.name.clone(), expected, got }
                        }
                        other => other,
                    })?;
                }
                Ok(())
            }
            _ => err(ty.to_string()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg_with_routing_entry() -> (DataTypeRegistry, DataTypeId) {
        let mut reg = DataTypeRegistry::default();
        let id = reg
            .register(DataTypeDef {
                name: "routingTableEntry".into(),
                parent: None,
                own_fields: vec![
                    FieldDef::new("address", FieldType::Ip),
                    FieldDef::new("mask", FieldType::Int),
                    FieldDef::new("interface", FieldType::Str),
                ],
            })
            .unwrap();
        (reg, id)
    }

    #[test]
    fn paper_routing_table_entry_validates() {
        let (reg, id) = reg_with_routing_entry();
        let entry =
            Value::Composite(vec![Value::Ip("10.0.0.1".parse().unwrap()), Value::Int(24), Value::Str("eth0".into())]);
        reg.validate_value(&FieldType::Data(id), &entry).unwrap();
        // List[routingTableEntry] routingTable — the paper's example.
        let table = Value::List(vec![entry]);
        reg.validate_value(&FieldType::List(Box::new(FieldType::Data(id))), &table).unwrap();
    }

    #[test]
    fn wrong_arity_composite_rejected() {
        let (reg, id) = reg_with_routing_entry();
        let bad = Value::Composite(vec![Value::Int(24)]);
        assert!(reg.validate_value(&FieldType::Data(id), &bad).is_err());
    }

    #[test]
    fn data_type_inheritance_extends_layout() {
        let mut reg = DataTypeRegistry::default();
        let base = reg
            .register(DataTypeDef {
                name: "base".into(),
                parent: None,
                own_fields: vec![FieldDef::new("a", FieldType::Int)],
            })
            .unwrap();
        let child = reg
            .register(DataTypeDef {
                name: "child".into(),
                parent: Some(base),
                own_fields: vec![FieldDef::new("b", FieldType::Str)],
            })
            .unwrap();
        let fields = reg.all_fields(child);
        assert_eq!(fields.len(), 2);
        assert_eq!(fields[0].name, "a");
        assert_eq!(fields[1].name, "b");
    }

    #[test]
    fn duplicate_data_type_rejected() {
        let mut reg = DataTypeRegistry::default();
        let def = DataTypeDef { name: "x".into(), parent: None, own_fields: vec![] };
        reg.register(def.clone()).unwrap();
        assert!(matches!(reg.register(def), Err(SchemaError::DuplicateDataType(_))));
    }

    #[test]
    fn container_element_types_checked() {
        let reg = DataTypeRegistry::default();
        let ty = FieldType::List(Box::new(FieldType::Int));
        assert!(reg.validate_value(&ty, &Value::List(vec![Value::Str("no".into())])).is_err());
        assert!(reg.validate_value(&ty, &Value::List(vec![Value::Int(1), Value::Int(2)])).is_ok());
    }
}
