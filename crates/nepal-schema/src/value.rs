//! Runtime values stored in node and edge fields.
//!
//! Nepal is strongly typed: every field of every node/edge class has a
//! declared [`FieldType`](crate::types::FieldType) and the stored [`Value`]
//! must conform to it. Values form a total order (floats are ordered by
//! `total_cmp`, variants by discriminant) so that they can be used as set
//! members, map keys, and index keys.

use std::cmp::Ordering;
use std::collections::BTreeMap;
use std::fmt;
use std::net::IpAddr;

use crate::time::{format_ts, Ts};

/// A dynamically typed runtime value.
///
/// The variants mirror the scalar and container types of the Nepal schema
/// language (§3.2.1 of the paper): scalars, timestamps, IP addresses, and the
/// containers `list`, `set`, and `map`, plus composite values of a named
/// `data_type`.
#[derive(Debug, Clone)]
pub enum Value {
    /// Explicit SQL-style null / absent optional value.
    Null,
    Bool(bool),
    Int(i64),
    Float(f64),
    Str(String),
    /// Transaction-time or application timestamp (microseconds since epoch).
    Ts(Ts),
    /// IPv4 or IPv6 address.
    Ip(IpAddr),
    /// Ordered list container.
    List(Vec<Value>),
    /// Set container; kept sorted and deduplicated.
    Set(Vec<Value>),
    /// Map container; kept sorted by key.
    Map(BTreeMap<Value, Value>),
    /// Composite value of a schema `data_type`: named fields in declaration
    /// order.
    Composite(Vec<Value>),
}

impl Value {
    /// Human-readable name of the variant, used in error messages.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) => "int",
            Value::Float(_) => "float",
            Value::Str(_) => "str",
            Value::Ts(_) => "ts",
            Value::Ip(_) => "ip",
            Value::List(_) => "list",
            Value::Set(_) => "set",
            Value::Map(_) => "map",
            Value::Composite(_) => "composite",
        }
    }

    fn discriminant(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) => 2,
            Value::Float(_) => 3,
            Value::Str(_) => 4,
            Value::Ts(_) => 5,
            Value::Ip(_) => 6,
            Value::List(_) => 7,
            Value::Set(_) => 8,
            Value::Map(_) => 9,
            Value::Composite(_) => 10,
        }
    }

    /// Build a set value: sorts and deduplicates the members.
    pub fn set(mut members: Vec<Value>) -> Value {
        members.sort();
        members.dedup();
        Value::Set(members)
    }

    /// Returns `true` for [`Value::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Numeric comparison helper: Int and Float compare numerically with each
    /// other (used by query predicates, *not* by the total order).
    pub fn numeric_cmp(&self, other: &Value) -> Option<Ordering> {
        match (self, other) {
            (Value::Int(a), Value::Int(b)) => Some(a.cmp(b)),
            (Value::Float(a), Value::Float(b)) => Some(a.total_cmp(b)),
            (Value::Int(a), Value::Float(b)) => Some((*a as f64).total_cmp(b)),
            (Value::Float(a), Value::Int(b)) => Some(a.total_cmp(&(*b as f64))),
            _ => None,
        }
    }

    /// Predicate-level comparison: numeric coercion between Int and Float,
    /// otherwise the total order restricted to same-variant values.
    pub fn query_cmp(&self, other: &Value) -> Option<Ordering> {
        if let Some(ord) = self.numeric_cmp(other) {
            return Some(ord);
        }
        if self.discriminant() == other.discriminant() {
            Some(self.cmp(other))
        } else {
            None
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Str(a), Str(b)) => a.cmp(b),
            (Ts(a), Ts(b)) => a.cmp(b),
            (Ip(a), Ip(b)) => a.cmp(b),
            (List(a), List(b)) => a.cmp(b),
            (Set(a), Set(b)) => a.cmp(b),
            (Map(a), Map(b)) => a.cmp(b),
            (Composite(a), Composite(b)) => a.cmp(b),
            _ => self.discriminant().cmp(&other.discriminant()),
        }
    }
}

impl std::hash::Hash for Value {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_u8(self.discriminant());
        match self {
            Value::Null => {}
            Value::Bool(b) => b.hash(state),
            Value::Int(i) => i.hash(state),
            Value::Float(f) => f.to_bits().hash(state),
            Value::Str(s) => s.hash(state),
            Value::Ts(t) => t.hash(state),
            Value::Ip(ip) => ip.hash(state),
            Value::List(v) | Value::Set(v) | Value::Composite(v) => {
                for x in v {
                    x.hash(state);
                }
            }
            Value::Map(m) => {
                for (k, v) in m {
                    k.hash(state);
                    v.hash(state);
                }
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(x) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "'{s}'"),
            Value::Ts(t) => write!(f, "'{}'", format_ts(*t)),
            Value::Ip(ip) => write!(f, "'{ip}'"),
            Value::List(v) => {
                write!(f, "[")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "]")
            }
            Value::Set(v) => {
                write!(f, "{{")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, "}}")
            }
            Value::Map(m) => {
                write!(f, "{{")?;
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{k}: {v}")?;
                }
                write!(f, "}}")
            }
            Value::Composite(v) => {
                write!(f, "(")?;
                for (i, x) in v.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{x}")?;
                }
                write!(f, ")")
            }
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_order_across_variants_is_stable() {
        let mut vals = [Value::Str("a".into()), Value::Int(3), Value::Null, Value::Bool(true), Value::Float(1.5)];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Int(3));
    }

    #[test]
    fn float_nan_is_totally_ordered() {
        let a = Value::Float(f64::NAN);
        let b = Value::Float(1.0);
        // total_cmp puts NaN above all numbers; importantly, no panic and
        // reflexivity holds.
        assert_eq!(a.cmp(&a), Ordering::Equal);
        assert_eq!(a.cmp(&b), Ordering::Greater);
    }

    #[test]
    fn set_constructor_sorts_and_dedups() {
        let s = Value::set(vec![Value::Int(2), Value::Int(1), Value::Int(2)]);
        assert_eq!(s, Value::Set(vec![Value::Int(1), Value::Int(2)]));
    }

    #[test]
    fn numeric_cmp_coerces_int_float() {
        assert_eq!(Value::Int(2).query_cmp(&Value::Float(2.0)), Some(Ordering::Equal));
        assert_eq!(Value::Float(1.5).query_cmp(&Value::Int(2)), Some(Ordering::Less));
        assert_eq!(Value::Str("x".into()).query_cmp(&Value::Int(2)), None);
    }

    #[test]
    fn display_is_readable() {
        assert_eq!(Value::Str("vm-1".into()).to_string(), "'vm-1'");
        assert_eq!(Value::List(vec![Value::Int(1), Value::Int(2)]).to_string(), "[1, 2]");
    }
}
