//! Civil-time parsing/formatting for transaction timestamps.
//!
//! Nepal timestamps are transaction times (§4 of the paper) written in
//! queries as `'YYYY-MM-DD HH:MM[:SS]'`. We represent them as microseconds
//! since the Unix epoch in a plain `i64` so they are cheap to compare, store,
//! and index. The conversion here implements the proleptic Gregorian
//! calendar in UTC (days-from-civil algorithm), with no external crates.

/// A transaction timestamp: microseconds since `1970-01-01 00:00:00` UTC.
pub type Ts = i64;

/// Microseconds in one second.
pub const MICROS_PER_SEC: i64 = 1_000_000;
/// Microseconds in one day.
pub const MICROS_PER_DAY: i64 = 86_400 * MICROS_PER_SEC;

/// Days since the epoch for a civil date (Howard Hinnant's algorithm).
fn days_from_civil(y: i64, m: u32, d: u32) -> i64 {
    let y = if m <= 2 { y - 1 } else { y };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = y - era * 400; // [0, 399]
    let mp = (m as i64 + 9) % 12; // Mar=0 .. Feb=11
    let doy = (153 * mp + 2) / 5 + d as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    era * 146_097 + doe - 719_468
}

/// Inverse of [`days_from_civil`].
fn civil_from_days(z: i64) -> (i64, u32, u32) {
    let z = z + 719_468;
    let era = if z >= 0 { z } else { z - 146_096 } / 146_097;
    let doe = z - era * 146_097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    (if m <= 2 { y + 1 } else { y }, m, d)
}

/// Build a timestamp from civil date-time components (UTC).
pub fn ts_from_civil(y: i64, mo: u32, d: u32, h: u32, mi: u32, s: u32) -> Ts {
    let days = days_from_civil(y, mo, d);
    days * MICROS_PER_DAY + ((h as i64 * 3600 + mi as i64 * 60 + s as i64) * MICROS_PER_SEC)
}

/// Parse `'YYYY-MM-DD[ HH:MM[:SS]]'` (quotes optional) into a [`Ts`].
///
/// Returns `None` on any malformed component. Sub-second precision is not
/// part of the query syntax in the paper and is not accepted.
pub fn parse_ts(text: &str) -> Option<Ts> {
    let t = text.trim().trim_matches('\'').trim();
    let (date, time) = match t.split_once(' ') {
        Some((d, tm)) => (d, Some(tm.trim())),
        None => (t, None),
    };
    let mut dp = date.split('-');
    let y: i64 = dp.next()?.parse().ok()?;
    let mo: u32 = dp.next()?.parse().ok()?;
    let d: u32 = dp.next()?.parse().ok()?;
    if dp.next().is_some() || !(1..=12).contains(&mo) || !(1..=31).contains(&d) {
        return None;
    }
    let (h, mi, s) = match time {
        None => (0, 0, 0),
        Some(tm) => {
            let mut tp = tm.split(':');
            let h: u32 = tp.next()?.parse().ok()?;
            let mi: u32 = tp.next()?.parse().ok()?;
            let s: u32 = match tp.next() {
                Some(x) => x.parse().ok()?,
                None => 0,
            };
            if tp.next().is_some() || h > 23 || mi > 59 || s > 60 {
                return None;
            }
            (h, mi, s)
        }
    };
    Some(ts_from_civil(y, mo, d, h, mi, s))
}

/// Format a [`Ts`] as `YYYY-MM-DD HH:MM:SS` (UTC).
pub fn format_ts(ts: Ts) -> String {
    let days = ts.div_euclid(MICROS_PER_DAY);
    let rem = ts.rem_euclid(MICROS_PER_DAY) / MICROS_PER_SEC;
    let (y, m, d) = civil_from_days(days);
    let (h, mi, s) = (rem / 3600, (rem % 3600) / 60, rem % 60);
    format!("{y:04}-{m:02}-{d:02} {h:02}:{mi:02}:{s:02}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epoch_is_zero() {
        assert_eq!(parse_ts("1970-01-01 00:00:00"), Some(0));
    }

    #[test]
    fn parses_paper_examples() {
        let t = parse_ts("'2017-02-15 10:00:00'").unwrap();
        assert_eq!(format_ts(t), "2017-02-15 10:00:00");
        // Minutes-only form used in §4.
        let t2 = parse_ts("2017-02-15 10:00").unwrap();
        assert_eq!(t, t2);
        // Date-only form.
        let t3 = parse_ts("2017-02-15").unwrap();
        assert_eq!(format_ts(t3), "2017-02-15 00:00:00");
    }

    #[test]
    fn round_trips_across_era_boundaries() {
        for &(y, m, d) in &[(1969i64, 12u32, 31u32), (2000, 2, 29), (2100, 3, 1), (1900, 1, 1)] {
            let ts = ts_from_civil(y, m, d, 13, 45, 59);
            assert_eq!(format_ts(ts), format!("{y:04}-{m:02}-{d:02} 13:45:59"));
        }
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(parse_ts("not a date"), None);
        assert_eq!(parse_ts("2017-13-01"), None);
        assert_eq!(parse_ts("2017-02-15 25:00"), None);
        assert_eq!(parse_ts("2017-02-15 10:61"), None);
    }

    #[test]
    fn ordering_matches_civil_ordering() {
        let a = parse_ts("2017-02-15 09:59").unwrap();
        let b = parse_ts("2017-02-15 10:00").unwrap();
        assert!(a < b);
    }
}
