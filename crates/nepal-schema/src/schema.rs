//! The Nepal class system: single-rooted hierarchies of node and edge
//! classes, the *strongly-typed concepts* abstraction of §3.2.
//!
//! Every node and edge belongs to a specific class; classes form a single
//! rooted tree with base class `Entity` and its two built-in subclasses
//! `Node` and `Edge`. A subclass inherits all fields of its parent and may
//! add more. An atom such as `VM(...)` in a query refers to the class `VM`
//! *and all of its (transitive) subclasses*, but may reference only the
//! fields declared at or above `VM` — exactly the paper's semantics.

use std::collections::HashMap;

use crate::error::{Result, SchemaError};
use crate::types::{DataTypeDef, DataTypeId, DataTypeRegistry, FieldDef};
use crate::value::Value;

/// Identifier of a class within a schema.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub u32);

/// Whether a class describes nodes or edges.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassKind {
    Node,
    Edge,
}

/// Definition of one class.
#[derive(Debug, Clone)]
pub struct ClassDef {
    pub name: String,
    pub kind: ClassKind,
    /// Parent class; `None` only for the `Entity` root.
    pub parent: Option<ClassId>,
    /// Fields declared directly on this class (inherited fields excluded).
    pub own_fields: Vec<FieldDef>,
    /// Optional cardinality hint used by the anchor-costing optimizer when
    /// database statistics are unavailable (§5.1).
    pub hint_cardinality: Option<u64>,
}

/// An allowed-edge rule: edges of class `edge` (or subclasses) may connect a
/// source node of class `from` (or subclasses) to a target node of class
/// `to` (or subclasses). Mirrors TOSCA capability types (Fig. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeRule {
    pub edge: ClassId,
    pub from: ClassId,
    pub to: ClassId,
}

/// An immutable, fully validated Nepal schema.
#[derive(Debug, Clone)]
pub struct Schema {
    pub(crate) classes: Vec<ClassDef>,
    by_name: HashMap<String, ClassId>,
    data_types: DataTypeRegistry,
    edge_rules: Vec<EdgeRule>,
    /// Flattened field layout per class (ancestor fields first).
    layouts: Vec<Vec<FieldDef>>,
    /// Children adjacency for subtree enumeration.
    children: Vec<Vec<ClassId>>,
    /// DFS pre-order interval per class; `is_subclass` is an O(1) interval
    /// containment test.
    tin: Vec<u32>,
    tout: Vec<u32>,
}

/// The id of the `Entity` root class (always 0).
pub const ENTITY: ClassId = ClassId(0);
/// The id of the `Node` root class (always 1).
pub const NODE: ClassId = ClassId(1);
/// The id of the `Edge` root class (always 2).
pub const EDGE: ClassId = ClassId(2);

impl Schema {
    /// Number of classes, including the three built-in roots.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    pub fn class(&self, id: ClassId) -> &ClassDef {
        &self.classes[id.0 as usize]
    }

    /// Look a class up by simple name, or by qualified inheritance path
    /// (e.g. `VM:VMWare` or `Node:VM:VMWare` — the last segment decides, the
    /// rest is verified).
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        if let Some(&id) = self.by_name.get(name) {
            return Some(id);
        }
        let mut segs = name.rsplit(':');
        let last = segs.next()?;
        let id = *self.by_name.get(last)?;
        // Verify every earlier segment is an ancestor.
        for seg in segs {
            let anc = *self.by_name.get(seg)?;
            if !self.is_subclass(id, anc) {
                return None;
            }
        }
        Some(id)
    }

    pub fn kind(&self, id: ClassId) -> ClassKind {
        self.class(id).kind
    }

    /// `true` iff `a` equals `b` or is (transitively) derived from `b`.
    pub fn is_subclass(&self, a: ClassId, b: ClassId) -> bool {
        self.tin[b.0 as usize] <= self.tin[a.0 as usize] && self.tin[a.0 as usize] <= self.tout[b.0 as usize]
    }

    /// All classes in the subtree rooted at `id`, including `id` itself.
    pub fn descendants(&self, id: ClassId) -> Vec<ClassId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(c) = stack.pop() {
            out.push(c);
            stack.extend(self.children[c.0 as usize].iter().copied());
        }
        out
    }

    /// Direct children of a class.
    pub fn children(&self, id: ClassId) -> &[ClassId] {
        &self.children[id.0 as usize]
    }

    /// Ancestor chain from `id` up to `Entity`, inclusive on both ends.
    pub fn ancestors(&self, id: ClassId) -> Vec<ClassId> {
        let mut out = vec![id];
        let mut cur = self.class(id).parent;
        while let Some(p) = cur {
            out.push(p);
            cur = self.class(p).parent;
        }
        out
    }

    /// Least common ancestor of two classes (used to type `source(P)` /
    /// `target(P)` expressions, §3.4).
    pub fn lca(&self, a: ClassId, b: ClassId) -> ClassId {
        let anc_a = self.ancestors(a);
        let mut cur = b;
        loop {
            if anc_a.contains(&cur) {
                return cur;
            }
            match self.class(cur).parent {
                Some(p) => cur = p,
                None => return ENTITY,
            }
        }
    }

    /// Full inheritance path name, e.g. `Node:VM:VMWare`. This is exactly
    /// the label encoding used by the Gremlin backend (§5.2).
    pub fn path_name(&self, id: ClassId) -> String {
        let mut chain = self.ancestors(id);
        chain.pop(); // drop Entity
        chain.reverse();
        chain.iter().map(|c| self.class(*c).name.as_str()).collect::<Vec<_>>().join(":")
    }

    /// The complete field layout of a class: ancestors' fields first, then
    /// own fields, in declaration order.
    pub fn all_fields(&self, id: ClassId) -> &[FieldDef] {
        &self.layouts[id.0 as usize]
    }

    /// Resolve a field by name on a class; returns its layout index.
    pub fn resolve_field(&self, class: ClassId, name: &str) -> Option<(usize, &FieldDef)> {
        self.layouts[class.0 as usize].iter().enumerate().find(|(_, f)| f.name == name)
    }

    /// Layout indexes of all unique fields of a class.
    pub fn unique_fields(&self, class: ClassId) -> Vec<usize> {
        self.layouts[class.0 as usize].iter().enumerate().filter(|(_, f)| f.unique).map(|(i, _)| i).collect()
    }

    pub fn data_types(&self) -> &DataTypeRegistry {
        &self.data_types
    }

    pub fn edge_rules(&self) -> &[EdgeRule] {
        &self.edge_rules
    }

    /// Check whether an edge of class `edge` may connect `src` to `dst`.
    ///
    /// If the schema declares no `allow` rules at all it is an *open
    /// topology* (the mode used to load the legacy graph of §6 "as
    /// provided") and every connection is permitted.
    pub fn edge_allowed(&self, edge: ClassId, src: ClassId, dst: ClassId) -> bool {
        if self.edge_rules.is_empty() {
            return true;
        }
        self.edge_rules
            .iter()
            .any(|r| self.is_subclass(edge, r.edge) && self.is_subclass(src, r.from) && self.is_subclass(dst, r.to))
    }

    /// Validate a full record of class `class` against the layout:
    /// arity, per-field types, and required (non-null) fields.
    pub fn validate_record(&self, class: ClassId, values: &[Value]) -> Result<()> {
        let layout = self.all_fields(class);
        if layout.len() != values.len() {
            return Err(SchemaError::TypeMismatch {
                field: format!("<record of {}>", self.class(class).name),
                expected: format!("{} fields", layout.len()),
                got: format!("{} fields", values.len()),
            });
        }
        for (fd, v) in layout.iter().zip(values) {
            if v.is_null() {
                if fd.required {
                    return Err(SchemaError::MissingField {
                        class: self.class(class).name.clone(),
                        field: fd.name.clone(),
                    });
                }
                continue;
            }
            self.data_types.validate_value(&fd.ty, v).map_err(|e| match e {
                SchemaError::TypeMismatch { expected, got, .. } => {
                    SchemaError::TypeMismatch { field: fd.name.clone(), expected, got }
                }
                other => other,
            })?;
        }
        Ok(())
    }

    /// All node classes (excluding `Entity`/`Edge` subtrees).
    pub fn node_classes(&self) -> Vec<ClassId> {
        self.descendants(NODE)
    }

    /// All edge classes.
    pub fn edge_classes(&self) -> Vec<ClassId> {
        self.descendants(EDGE)
    }
}

/// Builder for [`Schema`]. Classes must be registered parents-first, which
/// keeps both hierarchies acyclic by construction.
#[derive(Debug)]
pub struct SchemaBuilder {
    classes: Vec<ClassDef>,
    by_name: HashMap<String, ClassId>,
    data_types: DataTypeRegistry,
    edge_rules: Vec<EdgeRule>,
}

impl Default for SchemaBuilder {
    fn default() -> Self {
        Self::new()
    }
}

impl SchemaBuilder {
    pub fn new() -> Self {
        let mut b = SchemaBuilder {
            classes: Vec::new(),
            by_name: HashMap::new(),
            data_types: DataTypeRegistry::default(),
            edge_rules: Vec::new(),
        };
        b.push_class(ClassDef {
            name: "Entity".into(),
            kind: ClassKind::Node, // kind of Entity itself is never consulted
            parent: None,
            own_fields: vec![],
            hint_cardinality: None,
        })
        .unwrap();
        b.push_class(ClassDef {
            name: "Node".into(),
            kind: ClassKind::Node,
            parent: Some(ENTITY),
            own_fields: vec![],
            hint_cardinality: None,
        })
        .unwrap();
        b.push_class(ClassDef {
            name: "Edge".into(),
            kind: ClassKind::Edge,
            parent: Some(ENTITY),
            own_fields: vec![],
            hint_cardinality: None,
        })
        .unwrap();
        b
    }

    fn push_class(&mut self, def: ClassDef) -> Result<ClassId> {
        if self.by_name.contains_key(&def.name) {
            return Err(SchemaError::DuplicateClass(def.name));
        }
        // Reject duplicate field names along the inheritance chain.
        let mut seen: Vec<&str> = Vec::new();
        let mut cur = def.parent;
        while let Some(p) = cur {
            let pd = &self.classes[p.0 as usize];
            seen.extend(pd.own_fields.iter().map(|f| f.name.as_str()));
            cur = pd.parent;
        }
        for f in &def.own_fields {
            if seen.contains(&f.name.as_str()) || def.own_fields.iter().filter(|g| g.name == f.name).count() > 1 {
                return Err(SchemaError::DuplicateField { class: def.name.clone(), field: f.name.clone() });
            }
        }
        let id = ClassId(self.classes.len() as u32);
        self.by_name.insert(def.name.clone(), id);
        self.classes.push(def);
        Ok(id)
    }

    /// Register a composite data type.
    pub fn data_type(
        &mut self,
        name: impl Into<String>,
        parent: Option<DataTypeId>,
        fields: Vec<FieldDef>,
    ) -> Result<DataTypeId> {
        self.data_types.register(DataTypeDef { name: name.into(), parent, own_fields: fields })
    }

    /// Look up a registered data type by name.
    pub fn data_type_by_name(&self, name: &str) -> Option<DataTypeId> {
        self.data_types.by_name(name)
    }

    /// Register a node class derived from `parent` (use [`NODE`] for direct
    /// children of the root).
    pub fn node_class(&mut self, name: impl Into<String>, parent: ClassId, fields: Vec<FieldDef>) -> Result<ClassId> {
        let name = name.into();
        if parent != NODE {
            let p = &self.classes[parent.0 as usize];
            if p.kind != ClassKind::Node || parent == ENTITY {
                return Err(SchemaError::KindMismatch { class: name, expected: "Node" });
            }
        }
        self.push_class(ClassDef {
            name,
            kind: ClassKind::Node,
            parent: Some(parent),
            own_fields: fields,
            hint_cardinality: None,
        })
    }

    /// Register an edge class derived from `parent` (use [`EDGE`] for direct
    /// children of the root).
    pub fn edge_class(&mut self, name: impl Into<String>, parent: ClassId, fields: Vec<FieldDef>) -> Result<ClassId> {
        let name = name.into();
        if parent != EDGE {
            let p = &self.classes[parent.0 as usize];
            if p.kind != ClassKind::Edge || parent == ENTITY {
                return Err(SchemaError::KindMismatch { class: name, expected: "Edge" });
            }
        }
        self.push_class(ClassDef {
            name,
            kind: ClassKind::Edge,
            parent: Some(parent),
            own_fields: fields,
            hint_cardinality: None,
        })
    }

    /// Attach a cardinality hint to a class (consulted by the optimizer when
    /// no database statistics are available).
    pub fn hint_cardinality(&mut self, class: ClassId, cardinality: u64) {
        self.classes[class.0 as usize].hint_cardinality = Some(cardinality);
    }

    /// Declare that `edge` (and subclasses) may connect `from` to `to`.
    pub fn allow(&mut self, edge: ClassId, from: ClassId, to: ClassId) -> Result<()> {
        let (e, f, t) =
            (self.classes[edge.0 as usize].kind, self.classes[from.0 as usize].kind, self.classes[to.0 as usize].kind);
        if e != ClassKind::Edge || edge == ENTITY {
            return Err(SchemaError::BadEdgeRule("edge position must be an edge class".into()));
        }
        if f != ClassKind::Node || t != ClassKind::Node || from == ENTITY || to == ENTITY {
            return Err(SchemaError::BadEdgeRule("endpoints must be node classes".into()));
        }
        self.edge_rules.push(EdgeRule { edge, from, to });
        Ok(())
    }

    /// Look up an already-registered class by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.by_name.get(name).copied()
    }

    /// Finalize: precompute layouts, children lists, and DFS intervals.
    pub fn finish(self) -> Schema {
        let n = self.classes.len();
        let mut children: Vec<Vec<ClassId>> = vec![Vec::new(); n];
        for (i, c) in self.classes.iter().enumerate() {
            if let Some(p) = c.parent {
                children[p.0 as usize].push(ClassId(i as u32));
            }
        }
        let mut layouts: Vec<Vec<FieldDef>> = Vec::with_capacity(n);
        for i in 0..n {
            let mut chain = Vec::new();
            let mut cur = Some(ClassId(i as u32));
            while let Some(c) = cur {
                chain.push(c);
                cur = self.classes[c.0 as usize].parent;
            }
            let mut layout = Vec::new();
            for c in chain.iter().rev() {
                layout.extend(self.classes[c.0 as usize].own_fields.iter().cloned());
            }
            layouts.push(layout);
        }
        let mut tin = vec![0u32; n];
        let mut tout = vec![0u32; n];
        let mut clock = 0u32;
        // Iterative DFS from Entity.
        let mut stack: Vec<(ClassId, bool)> = vec![(ENTITY, false)];
        while let Some((c, done)) = stack.pop() {
            if done {
                tout[c.0 as usize] = clock;
                continue;
            }
            clock += 1;
            tin[c.0 as usize] = clock;
            stack.push((c, true));
            for &ch in &children[c.0 as usize] {
                stack.push((ch, false));
            }
        }
        Schema {
            classes: self.classes,
            by_name: self.by_name,
            data_types: self.data_types,
            edge_rules: self.edge_rules,
            layouts,
            children,
            tin,
            tout,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::FieldType;

    /// The paper's Fig. 3 style schema fragment.
    fn sample() -> Schema {
        let mut b = SchemaBuilder::new();
        let container = b.node_class("Container", NODE, vec![FieldDef::new("status", FieldType::Str)]).unwrap();
        let vm = b.node_class("VM", container, vec![FieldDef::new("vm_id", FieldType::Int).unique()]).unwrap();
        let _vmware = b.node_class("VMWare", vm, vec![]).unwrap();
        let _onmetal = b.node_class("OnMetal", vm, vec![]).unwrap();
        let _docker = b.node_class("Docker", container, vec![]).unwrap();
        let host = b.node_class("Host", NODE, vec![FieldDef::new("host_id", FieldType::Int).unique()]).unwrap();
        let vertical = b.edge_class("Vertical", EDGE, vec![]).unwrap();
        let hosted = b.edge_class("HostedOn", vertical, vec![]).unwrap();
        let connected = b.edge_class("ConnectedTo", EDGE, vec![]).unwrap();
        let _cts = b
            .edge_class(
                "ServerSwitch",
                connected,
                vec![
                    FieldDef::new("server_interface", FieldType::Str),
                    FieldDef::new("switch_interface", FieldType::Str),
                ],
            )
            .unwrap();
        b.allow(hosted, vm, host).unwrap();
        b.finish()
    }

    #[test]
    fn subclass_and_lca() {
        let s = sample();
        let vm = s.class_by_name("VM").unwrap();
        let vmware = s.class_by_name("VMWare").unwrap();
        let docker = s.class_by_name("Docker").unwrap();
        let container = s.class_by_name("Container").unwrap();
        assert!(s.is_subclass(vmware, vm));
        assert!(s.is_subclass(vm, container));
        assert!(!s.is_subclass(docker, vm));
        assert!(s.is_subclass(vm, NODE));
        assert_eq!(s.lca(vmware, docker), container);
        assert_eq!(s.lca(vm, s.class_by_name("Host").unwrap()), NODE);
    }

    #[test]
    fn qualified_name_resolution() {
        let s = sample();
        let vmware = s.class_by_name("VMWare").unwrap();
        assert_eq!(s.class_by_name("VM:VMWare"), Some(vmware));
        assert_eq!(s.class_by_name("Node:Container:VM:VMWare"), Some(vmware));
        // Wrong chain rejected.
        assert_eq!(s.class_by_name("Host:VMWare"), None);
        assert_eq!(s.path_name(vmware), "Node:Container:VM:VMWare");
    }

    #[test]
    fn field_inheritance_layout() {
        let s = sample();
        let vmware = s.class_by_name("VMWare").unwrap();
        let fields = s.all_fields(vmware);
        assert_eq!(fields.iter().map(|f| f.name.as_str()).collect::<Vec<_>>(), vec!["status", "vm_id"]);
        let (idx, fd) = s.resolve_field(vmware, "vm_id").unwrap();
        assert_eq!(idx, 1);
        assert!(fd.unique);
        // Atom `VM(...)` may not reference a Docker-only field and vice versa.
        assert!(s.resolve_field(s.class_by_name("VM").unwrap(), "nonexistent").is_none());
    }

    #[test]
    fn edge_rules_respect_inheritance() {
        let s = sample();
        let hosted = s.class_by_name("HostedOn").unwrap();
        let vm = s.class_by_name("VM").unwrap();
        let vmware = s.class_by_name("VMWare").unwrap();
        let host = s.class_by_name("Host").unwrap();
        let docker = s.class_by_name("Docker").unwrap();
        assert!(s.edge_allowed(hosted, vm, host));
        assert!(s.edge_allowed(hosted, vmware, host)); // subclass source OK
        assert!(!s.edge_allowed(hosted, docker, host)); // Docker not a VM
        assert!(!s.edge_allowed(hosted, host, vm)); // direction matters
                                                    // The paper: "one cannot directly link a VNF to a physical_server".
        let vertical = s.class_by_name("Vertical").unwrap();
        assert!(!s.edge_allowed(vertical, vm, host)); // rule is on HostedOn, not Vertical
    }

    #[test]
    fn record_validation() {
        let s = sample();
        let vm = s.class_by_name("VM").unwrap();
        s.validate_record(vm, &[Value::Str("Green".into()), Value::Int(55)]).unwrap();
        assert!(s.validate_record(vm, &[Value::Int(55)]).is_err()); // arity
        assert!(s.validate_record(vm, &[Value::Int(1), Value::Int(55)]).is_err()); // type
        assert!(s.validate_record(vm, &[Value::Null, Value::Int(55)]).is_err());
        // required
    }

    #[test]
    fn node_edge_kind_separation_enforced() {
        let mut b = SchemaBuilder::new();
        let n = b.node_class("N", NODE, vec![]).unwrap();
        assert!(b.edge_class("E", n, vec![]).is_err());
        assert!(b.node_class("N", NODE, vec![]).is_err()); // duplicate
    }

    #[test]
    fn descendants_include_self() {
        let s = sample();
        let container = s.class_by_name("Container").unwrap();
        let d = s.descendants(container);
        assert_eq!(d.len(), 5); // Container, VM, VMWare, OnMetal, Docker
        assert!(d.contains(&container));
    }
}
