//! # nepal-schema — strongly-typed concepts for the Nepal graph database
//!
//! This crate implements the Nepal data model of §3.2 of *"A Graph Database
//! for a Virtualized Network Infrastructure"* (SIGMOD 2018): a TOSCA-derived
//! schema system where **all nodes and edges have a strongly typed class**
//! within single-rooted class hierarchies, composite data types with
//! container fields, allowed-edge (capability) rules, and the abstraction
//! machinery — subclass tests, least-common-ancestor typing, inheritance
//! path names — that the query layer relies on.
//!
//! Highlights:
//! - [`schema::Schema`] / [`schema::SchemaBuilder`]: the class system.
//! - [`dsl::parse_schema`]: a compact text DSL equivalent to the TOSCA
//!   subset the paper uses.
//! - [`value::Value`] and [`types::FieldType`]: runtime values and their
//!   declared types, including `list`/`set`/`map` containers and named
//!   composite `data_types`.
//! - [`time`]: transaction-time parsing/formatting (`'2017-02-15 10:00'`).
//! - [`codec`]: the canonical value text codec used by graph persistence.
//!
//! ## Example
//!
//! ```
//! use nepal_schema::dsl::parse_schema;
//!
//! let schema = parse_schema(r#"
//!     node Container { status: str }
//!     node VM : Container { vm_id: int unique }
//!     node Host { host_id: int unique }
//!     edge HostedOn { }
//!     allow HostedOn (VM -> Host)
//! "#).unwrap();
//!
//! let vm = schema.class_by_name("VM").unwrap();
//! let container = schema.class_by_name("Container").unwrap();
//! // Strongly-typed concepts: VM is a Container; its layout inherits
//! // `status` and adds `vm_id`.
//! assert!(schema.is_subclass(vm, container));
//! assert_eq!(schema.path_name(vm), "Node:Container:VM");
//! assert_eq!(schema.all_fields(vm).len(), 2);
//! ```

pub mod codec;
pub mod dsl;
pub mod error;
pub mod schema;
pub mod time;
pub mod types;
pub mod value;

pub use error::{Result, SchemaError};
pub use schema::{ClassDef, ClassId, ClassKind, EdgeRule, Schema, SchemaBuilder, EDGE, ENTITY, NODE};
pub use time::{format_ts, parse_ts, Ts};
pub use types::{DataTypeDef, DataTypeId, FieldDef, FieldType};
pub use value::Value;
