//! Text DSL for Nepal schemas.
//!
//! The paper derives the Nepal schema language from TOSCA (`data_types`,
//! `node_types`, `capability_types`). This module provides a compact textual
//! equivalent with the same concepts — data types with containers, node and
//! edge class hierarchies, allowed-edge rules, and cardinality hints:
//!
//! ```text
//! # comment
//! data routingTableEntry { address: ip, mask: int, interface: str }
//! node Container        { status: str }
//! node VM : Container   { vm_id: int unique }
//! node Host             { host_id: int unique, routing: list<routingTableEntry> }
//! edge Vertical         { }
//! edge HostedOn : Vertical { }
//! allow HostedOn (VM -> Host)
//! hint VM 2000
//! ```
//!
//! `node X` with no explicit parent derives from `Node`; `edge X` from
//! `Edge`. Field modifiers: `unique`, `optional`.

use crate::error::{Result, SchemaError};
use crate::schema::{Schema, SchemaBuilder, EDGE, NODE};
use crate::types::{FieldDef, FieldType};

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(u64),
    LBrace,
    RBrace,
    LParen,
    RParen,
    Colon,
    Comma,
    Lt,
    Gt,
    Arrow,
}

fn tokenize(text: &str) -> Result<Vec<(usize, Tok)>> {
    let mut out = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = match line.find('#') {
            Some(i) => &line[..i],
            None => line,
        };
        let mut chars = line.char_indices().peekable();
        while let Some(&(i, c)) = chars.peek() {
            let ln = lineno + 1;
            match c {
                c if c.is_whitespace() => {
                    chars.next();
                }
                '{' => {
                    chars.next();
                    out.push((ln, Tok::LBrace));
                }
                '}' => {
                    chars.next();
                    out.push((ln, Tok::RBrace));
                }
                '(' => {
                    chars.next();
                    out.push((ln, Tok::LParen));
                }
                ')' => {
                    chars.next();
                    out.push((ln, Tok::RParen));
                }
                ':' => {
                    chars.next();
                    out.push((ln, Tok::Colon));
                }
                ',' | ';' => {
                    chars.next();
                    out.push((ln, Tok::Comma));
                }
                '<' => {
                    chars.next();
                    out.push((ln, Tok::Lt));
                }
                '>' => {
                    chars.next();
                    out.push((ln, Tok::Gt));
                }
                '-' => {
                    chars.next();
                    match chars.peek() {
                        Some(&(_, '>')) => {
                            chars.next();
                            out.push((ln, Tok::Arrow));
                        }
                        _ => return Err(SchemaError::Parse { line: ln, msg: "stray `-`".into() }),
                    }
                }
                c if c.is_ascii_digit() => {
                    let start = i;
                    let mut end = i;
                    while let Some(&(j, d)) = chars.peek() {
                        if d.is_ascii_digit() {
                            end = j + d.len_utf8();
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    let n: u64 = line[start..end]
                        .parse()
                        .map_err(|_| SchemaError::Parse { line: ln, msg: "bad number".into() })?;
                    out.push((ln, Tok::Num(n)));
                }
                c if c.is_alphanumeric() || c == '_' => {
                    let start = i;
                    let mut end = i;
                    while let Some(&(j, d)) = chars.peek() {
                        if d.is_alphanumeric() || d == '_' {
                            end = j + d.len_utf8();
                            chars.next();
                        } else {
                            break;
                        }
                    }
                    out.push((ln, Tok::Ident(line[start..end].to_string())));
                }
                other => return Err(SchemaError::Parse { line: ln, msg: format!("unexpected character `{other}`") }),
            }
        }
    }
    Ok(out)
}

struct Parser<'a> {
    toks: &'a [(usize, Tok)],
    pos: usize,
    builder: SchemaBuilder,
}

impl<'a> Parser<'a> {
    fn line(&self) -> usize {
        self.toks.get(self.pos).or_else(|| self.toks.last()).map(|t| t.0).unwrap_or(0)
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.pos).map(|t| &t.1)
    }

    fn next(&mut self) -> Option<Tok> {
        let t = self.toks.get(self.pos).map(|t| t.1.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn expect(&mut self, t: Tok) -> Result<()> {
        match self.next() {
            Some(got) if got == t => Ok(()),
            got => self.errf(&format!("expected {t:?}, got {got:?}")),
        }
    }

    fn errf<T>(&self, msg: &str) -> Result<T> {
        Err(SchemaError::Parse { line: self.line(), msg: msg.to_string() })
    }

    fn ident(&mut self) -> Result<String> {
        match self.next() {
            Some(Tok::Ident(s)) => Ok(s),
            got => self.errf(&format!("expected identifier, got {got:?}")),
        }
    }

    fn field_type(&mut self) -> Result<FieldType> {
        let name = self.ident()?;
        Ok(match name.as_str() {
            "bool" => FieldType::Bool,
            "int" => FieldType::Int,
            "float" => FieldType::Float,
            "str" | "string" => FieldType::Str,
            "ts" | "timestamp" => FieldType::Ts,
            "ip" => FieldType::Ip,
            "list" | "set" => {
                self.expect(Tok::Lt)?;
                let inner = self.field_type()?;
                self.expect(Tok::Gt)?;
                if name == "list" {
                    FieldType::List(Box::new(inner))
                } else {
                    FieldType::Set(Box::new(inner))
                }
            }
            "map" => {
                self.expect(Tok::Lt)?;
                let k = self.field_type()?;
                self.expect(Tok::Comma)?;
                let v = self.field_type()?;
                self.expect(Tok::Gt)?;
                FieldType::Map(Box::new(k), Box::new(v))
            }
            other => match self.builder.data_type_by_name(other) {
                Some(id) => FieldType::Data(id),
                None => return self.errf(&format!("unknown type `{other}`")),
            },
        })
    }

    /// Parse `{ name: type [unique] [optional], ... }`.
    fn field_block(&mut self) -> Result<Vec<FieldDef>> {
        self.expect(Tok::LBrace)?;
        let mut fields = Vec::new();
        loop {
            match self.peek() {
                Some(Tok::RBrace) => {
                    self.next();
                    break;
                }
                Some(Tok::Comma) => {
                    self.next();
                }
                Some(Tok::Ident(_)) => {
                    let name = self.ident()?;
                    self.expect(Tok::Colon)?;
                    let ty = self.field_type()?;
                    let mut fd = FieldDef::new(name, ty);
                    while let Some(Tok::Ident(m)) = self.peek() {
                        match m.as_str() {
                            "unique" => {
                                fd = fd.unique();
                                self.next();
                            }
                            "optional" => {
                                fd = fd.optional();
                                self.next();
                            }
                            _ => break,
                        }
                    }
                    fields.push(fd);
                }
                got => return self.errf(&format!("expected field or `}}`, got {got:?}")),
            }
        }
        Ok(fields)
    }

    fn class_ref(&mut self) -> Result<crate::schema::ClassId> {
        let name = self.ident()?;
        self.builder.class_by_name(&name).ok_or(SchemaError::UnknownClass(name))
    }

    fn parse(mut self) -> Result<Schema> {
        while let Some(tok) = self.peek().cloned() {
            let kw = match tok {
                Tok::Ident(s) => s,
                other => return self.errf(&format!("expected declaration keyword, got {other:?}")),
            };
            self.next();
            match kw.as_str() {
                "data" => {
                    let name = self.ident()?;
                    let parent = if self.peek() == Some(&Tok::Colon) {
                        self.next();
                        let pname = self.ident()?;
                        Some(self.builder.data_type_by_name(&pname).ok_or(SchemaError::UnknownDataType(pname))?)
                    } else {
                        None
                    };
                    let fields = self.field_block()?;
                    self.builder.data_type(name, parent, fields)?;
                }
                "node" | "edge" => {
                    let name = self.ident()?;
                    let parent = if self.peek() == Some(&Tok::Colon) {
                        self.next();
                        self.class_ref()?
                    } else if kw == "node" {
                        NODE
                    } else {
                        EDGE
                    };
                    let fields = if self.peek() == Some(&Tok::LBrace) { self.field_block()? } else { Vec::new() };
                    if kw == "node" {
                        self.builder.node_class(name, parent, fields)?;
                    } else {
                        self.builder.edge_class(name, parent, fields)?;
                    }
                }
                "allow" => {
                    let edge = self.class_ref()?;
                    self.expect(Tok::LParen)?;
                    let from = self.class_ref()?;
                    self.expect(Tok::Arrow)?;
                    let to = self.class_ref()?;
                    self.expect(Tok::RParen)?;
                    self.builder.allow(edge, from, to)?;
                }
                "hint" => {
                    let class = self.class_ref()?;
                    match self.next() {
                        Some(Tok::Num(n)) => self.builder.hint_cardinality(class, n),
                        got => return self.errf(&format!("expected number, got {got:?}")),
                    }
                }
                other => return self.errf(&format!("unknown declaration `{other}`")),
            }
        }
        Ok(self.builder.finish())
    }
}

/// Parse a schema DSL document into a [`Schema`].
pub fn parse_schema(text: &str) -> Result<Schema> {
    let toks = tokenize(text)?;
    Parser { toks: &toks, pos: 0, builder: SchemaBuilder::new() }.parse()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ClassKind;

    const FIG3: &str = r#"
        # Fig. 3 style underlay/overlay schema
        data routingTableEntry { address: ip, mask: int, interface: str }
        node Container { status: str }
        node VM : Container { vm_id: int unique }
        node VMWare : VM { }
        node OnMetal : VM { }
        node Docker : Container { }
        node VNF { vnf_id: int unique, vnf_name: str optional }
        node VFC { vfc_id: int unique }
        node Host { host_id: int unique, routing: list<routingTableEntry> optional }
        node Switch { switch_id: int unique }
        edge Vertical { }
        edge ComposedOf : Vertical { }
        edge HostedOn : Vertical { }
        edge OnVM : HostedOn { }
        edge OnServer : HostedOn { }
        edge ConnectedTo { }
        edge ServerSwitch : ConnectedTo { server_interface: str, switch_interface: str }
        allow ComposedOf (VNF -> VFC)
        allow OnVM (VFC -> VM)
        allow OnServer (VM -> Host)
        allow ServerSwitch (Host -> Switch)
        hint VM 2000
    "#;

    #[test]
    fn parses_fig3_schema() {
        let s = parse_schema(FIG3).unwrap();
        let vm = s.class_by_name("VM").unwrap();
        assert_eq!(s.kind(vm), ClassKind::Node);
        assert_eq!(s.class(vm).hint_cardinality, Some(2000));
        let onvm = s.class_by_name("OnVM").unwrap();
        assert!(s.is_subclass(onvm, s.class_by_name("Vertical").unwrap()));
        // VNF cannot be hosted directly on a Host (no such rule).
        let host = s.class_by_name("Host").unwrap();
        let vnf = s.class_by_name("VNF").unwrap();
        assert!(!s.edge_allowed(s.class_by_name("HostedOn").unwrap(), vnf, host));
        // Host.routing is a list of the composite data type.
        let (_, fd) = s.resolve_field(host, "routing").unwrap();
        assert!(!fd.required);
    }

    #[test]
    fn unknown_parent_is_error() {
        let e = parse_schema("node X : Nope { }").unwrap_err();
        assert!(matches!(e, SchemaError::UnknownClass(_)));
    }

    #[test]
    fn parse_error_carries_line() {
        let e = parse_schema("node A { }\nnode B : { }").unwrap_err();
        match e {
            SchemaError::Parse { line, .. } => assert_eq!(line, 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn edge_cannot_derive_from_node() {
        let e = parse_schema("node A { }\nedge E : A { }").unwrap_err();
        assert!(matches!(e, SchemaError::KindMismatch { .. }));
    }

    #[test]
    fn comments_and_semicolons_ok() {
        let s = parse_schema("node A { x: int; y: str } # trailing").unwrap();
        let a = s.class_by_name("A").unwrap();
        assert_eq!(s.all_fields(a).len(), 2);
    }
}
