//! Error types for schema definition and validation.

use std::fmt;

/// Errors raised while building, parsing, or validating against a schema.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// A class name was registered twice.
    DuplicateClass(String),
    /// A data type name was registered twice.
    DuplicateDataType(String),
    /// Reference to a class that does not exist.
    UnknownClass(String),
    /// Reference to a data type that does not exist.
    UnknownDataType(String),
    /// A node class was derived from an edge class or vice versa.
    KindMismatch { class: String, expected: &'static str },
    /// A field name collides with a field inherited from an ancestor.
    DuplicateField { class: String, field: String },
    /// Reference to a field that does not exist on a class.
    UnknownField { class: String, field: String },
    /// A value did not conform to the declared field type.
    TypeMismatch { field: String, expected: String, got: String },
    /// A required field was missing when validating a record.
    MissingField { class: String, field: String },
    /// The data-type composition DAG contains a cycle.
    CyclicDataType(String),
    /// An `allow` rule references a class of the wrong kind.
    BadEdgeRule(String),
    /// Error while parsing the schema DSL text.
    Parse { line: usize, msg: String },
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SchemaError::DuplicateClass(n) => write!(f, "duplicate class `{n}`"),
            SchemaError::DuplicateDataType(n) => write!(f, "duplicate data type `{n}`"),
            SchemaError::UnknownClass(n) => write!(f, "unknown class `{n}`"),
            SchemaError::UnknownDataType(n) => write!(f, "unknown data type `{n}`"),
            SchemaError::KindMismatch { class, expected } => {
                write!(f, "class `{class}` must be derived from {expected}")
            }
            SchemaError::DuplicateField { class, field } => {
                write!(f, "field `{field}` already defined on an ancestor of `{class}`")
            }
            SchemaError::UnknownField { class, field } => {
                write!(f, "class `{class}` has no field `{field}`")
            }
            SchemaError::TypeMismatch { field, expected, got } => {
                write!(f, "field `{field}` expects {expected}, got {got}")
            }
            SchemaError::MissingField { class, field } => {
                write!(f, "record of class `{class}` is missing required field `{field}`")
            }
            SchemaError::CyclicDataType(n) => {
                write!(f, "data type `{n}` participates in a composition cycle")
            }
            SchemaError::BadEdgeRule(m) => write!(f, "bad edge rule: {m}"),
            SchemaError::Parse { line, msg } => write!(f, "schema parse error at line {line}: {msg}"),
        }
    }
}

impl std::error::Error for SchemaError {}

/// Convenient result alias for schema operations.
pub type Result<T> = std::result::Result<T, SchemaError>;
