//! Backend equivalence: the relational evaluation of an RPE plan must
//! return exactly the same pathway set (and the same maximal assertion
//! intervals) as the native evaluator — on hand-built fixtures and on
//! randomized temporal graphs.

use std::sync::Arc;

use nepal_graph::{GraphView, TemporalGraph, TimeFilter, Uid};
use nepal_relational::{db_from_graph, evaluate_relational};
use nepal_rpe::{evaluate, parse_rpe, plan_rpe, EvalOptions, GraphEstimator, Pathway, Seeds};
use nepal_schema::dsl::parse_schema;
use nepal_schema::{Schema, Value};

const SCHEMA: &str = r#"
    node VNF { vnf_id: int unique }
    node VFC { vfc_id: int unique }
    node VM { vm_id: int unique, status: str }
    node Host { host_id: int unique }
    edge Vertical { }
    edge ComposedOf : Vertical { }
    edge HostedOn : Vertical { }
    edge Connects { }
"#;

fn schema() -> Arc<Schema> {
    Arc::new(parse_schema(SCHEMA).unwrap())
}

/// Deterministic pseudo-random graph with temporal churn.
fn random_graph(seed: u64, n_per_class: usize) -> TemporalGraph {
    let s = schema();
    let mut g = TemporalGraph::new(s.clone());
    let c = |n: &str| s.class_by_name(n).unwrap();
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut vnfs = Vec::new();
    let mut vfcs = Vec::new();
    let mut vms = Vec::new();
    let mut hosts = Vec::new();
    for i in 0..n_per_class {
        vnfs.push(g.insert_node(c("VNF"), vec![Value::Int(i as i64)], 0).unwrap());
        vfcs.push(g.insert_node(c("VFC"), vec![Value::Int(i as i64)], 0).unwrap());
        let status = if rng() % 2 == 0 { "Green" } else { "Red" };
        vms.push(g.insert_node(c("VM"), vec![Value::Int(i as i64), Value::Str(status.into())], 0).unwrap());
        hosts.push(g.insert_node(c("Host"), vec![Value::Int(i as i64)], 0).unwrap());
    }
    let mut edges = Vec::new();
    for i in 0..n_per_class {
        let pick = |v: &Vec<Uid>, r: u64| v[(r as usize) % v.len()];
        edges.push(g.insert_edge(c("ComposedOf"), vnfs[i], pick(&vfcs, rng()), vec![], 1).unwrap());
        edges.push(g.insert_edge(c("HostedOn"), vfcs[i], pick(&vms, rng()), vec![], 1).unwrap());
        edges.push(g.insert_edge(c("HostedOn"), vms[i], pick(&hosts, rng()), vec![], 1).unwrap());
        let a = pick(&hosts, rng());
        let b = pick(&hosts, rng());
        if a != b {
            edges.push(g.insert_edge(c("Connects"), a, b, vec![], 1).unwrap());
        }
    }
    // Temporal churn: delete some edges, update some VM statuses.
    for (k, e) in edges.iter().enumerate() {
        if k % 5 == 0 {
            let ts = 100 + (rng() % 100) as i64;
            let _ = g.delete(*e, ts);
        }
    }
    for (k, vm) in vms.iter().enumerate() {
        if k % 3 == 0 {
            let ts = 150 + (rng() % 50) as i64;
            let _ = g.update(*vm, &[(1, Value::Str("Amber".into()))], ts);
        }
    }
    g
}

fn key(paths: &[Pathway]) -> Vec<(Vec<u64>, Option<String>)> {
    let mut v: Vec<(Vec<u64>, Option<String>)> = paths
        .iter()
        .map(|p| (p.elems.iter().map(|u| u.0).collect(), p.times.as_ref().map(|t| t.to_string())))
        .collect();
    v.sort();
    v
}

fn check_equivalence(g: &TemporalGraph, rpe: &str, filter: TimeFilter) {
    let plan = plan_rpe(g.schema(), &parse_rpe(rpe).unwrap(), &GraphEstimator { graph: g }).unwrap();
    let view = GraphView::new(g, filter);
    let native = evaluate(&view, &plan, Seeds::Anchor, &EvalOptions::default());
    let mut db = db_from_graph(g).unwrap();
    let rel = evaluate_relational(&mut db, g.schema(), &plan, filter, Seeds::Anchor, &EvalOptions::default()).unwrap();
    assert_eq!(
        key(&native),
        key(&rel.pathways),
        "backend mismatch for `{rpe}` under {filter:?}: native {} vs relational {}",
        native.len(),
        rel.pathways.len()
    );
}

const QUERIES: &[&str] = &[
    "VNF(vnf_id=3)->[Vertical()]{1,6}->Host()",
    "VNF()->VFC()->VM()->Host(host_id=2)",
    "VM(status='Green')->HostedOn()->Host()",
    "Host(host_id=1)->[Connects()]{1,3}->Host()",
    "ComposedOf()->HostedOn()",
    "VFC(vfc_id=4)->VM()",
    "(VNF(vnf_id=1)|VFC(vfc_id=1))",
    "VM(vm_id=0)",
];

#[test]
fn current_snapshot_equivalence() {
    for seed in 0..4u64 {
        let g = random_graph(seed, 8);
        for q in QUERIES {
            check_equivalence(&g, q, TimeFilter::Current);
        }
    }
}

#[test]
fn as_of_equivalence() {
    for seed in 0..4u64 {
        let g = random_graph(seed, 8);
        for q in QUERIES {
            for ts in [50, 120, 180, 500] {
                check_equivalence(&g, q, TimeFilter::AsOf(ts));
            }
        }
    }
}

#[test]
fn range_equivalence_with_maximal_intervals() {
    for seed in 0..4u64 {
        let g = random_graph(seed, 6);
        for q in QUERIES {
            for (a, b) in [(0, 1000), (120, 160), (90, 110)] {
                check_equivalence(&g, q, TimeFilter::Range(a, b));
            }
        }
    }
}

#[test]
fn seeded_evaluation_equivalence() {
    let g = random_graph(7, 8);
    let plan = plan_rpe(g.schema(), &parse_rpe("Connects(){1,4}").unwrap(), &GraphEstimator { graph: &g }).unwrap();
    let hosts: Vec<Uid> = {
        let view = GraphView::new(&g, TimeFilter::Current);
        view.scan_class(g.schema().class_by_name("Host").unwrap())
    };
    let view = GraphView::new(&g, TimeFilter::Current);
    let mut db = db_from_graph(&g).unwrap();
    for h in hosts.iter().take(4) {
        let seeds = [*h];
        let native = evaluate(&view, &plan, Seeds::Sources(&seeds), &EvalOptions::default());
        let rel = evaluate_relational(
            &mut db,
            g.schema(),
            &plan,
            TimeFilter::Current,
            Seeds::Sources(&seeds),
            &EvalOptions::default(),
        )
        .unwrap();
        assert_eq!(key(&native), key(&rel.pathways), "sources seeded mismatch");
        let native_t = evaluate(&view, &plan, Seeds::Targets(&seeds), &EvalOptions::default());
        let rel_t = evaluate_relational(
            &mut db,
            g.schema(),
            &plan,
            TimeFilter::Current,
            Seeds::Targets(&seeds),
            &EvalOptions::default(),
        )
        .unwrap();
        assert_eq!(key(&native_t), key(&rel_t.pathways), "targets seeded mismatch");
    }
}

#[test]
fn emitted_sql_has_paper_shape() {
    let g = random_graph(1, 6);
    let plan = plan_rpe(
        g.schema(),
        &parse_rpe("VNF(vnf_id=3)->[Vertical()]{1,6}->Host()").unwrap(),
        &GraphEstimator { graph: &g },
    )
    .unwrap();
    let mut db = db_from_graph(&g).unwrap();
    let rel =
        evaluate_relational(&mut db, g.schema(), &plan, TimeFilter::Current, Seeds::Anchor, &EvalOptions::default())
            .unwrap();
    let sql = rel.sql.join("\n");
    assert!(sql.contains("create TEMP table tmp_select_node_1"), "{sql}");
    assert!(sql.contains("ARRAY[N.id_] as uid_list"), "{sql}");
    assert!(sql.contains("= ANY(T.uid_list)"), "{sql}");
    // AsOf adds the temporal_tables-style predicate.
    let rel2 = evaluate_relational(
        &mut db,
        g.schema(),
        &plan,
        TimeFilter::AsOf(nepal_schema::parse_ts("2017-02-15 10:00:00").unwrap()),
        Seeds::Anchor,
        &EvalOptions::default(),
    )
    .unwrap();
    let sql2 = rel2.sql.join("\n");
    assert!(sql2.contains("sys_period @> '2017-02-15 10:00:00'::timestamptz"), "{sql2}");
}

#[test]
fn emitted_sql_parses_with_the_sql_engine() {
    // Every statement the translator emits must be valid SQL in the
    // dialect the bundled SQL engine implements (comments included).
    let g = random_graph(2, 6);
    let plan = plan_rpe(
        g.schema(),
        &parse_rpe("VNF(vnf_id=3)->[Vertical()]{1,6}->Host()").unwrap(),
        &GraphEstimator { graph: &g },
    )
    .unwrap();
    let mut db = db_from_graph(&g).unwrap();
    for filter in [TimeFilter::Current, TimeFilter::AsOf(500)] {
        let rel =
            evaluate_relational(&mut db, g.schema(), &plan, filter, Seeds::Anchor, &EvalOptions::default()).unwrap();
        for stmt in &rel.sql {
            nepal_relational::parse_sql(stmt).unwrap_or_else(|e| panic!("emitted SQL does not parse: {e}\n{stmt}"));
        }
    }
}

#[test]
fn structured_data_predicates_cross_backend() {
    // Dotted composite predicates evaluate identically in the relational
    // backend (composite values travel as opaque jsonb-style cells).
    let s = Arc::new(
        parse_schema(
            r#"
            data geo { region: str }
            node Port { port_id: int unique, loc: geo }
            "#,
        )
        .unwrap(),
    );
    let mut g = TemporalGraph::new(s.clone());
    let port = s.class_by_name("Port").unwrap();
    for (i, region) in ["east", "west", "east"].iter().enumerate() {
        g.insert_node(port, vec![Value::Int(i as i64), Value::Composite(vec![Value::Str(region.to_string())])], 0)
            .unwrap();
    }
    check_equivalence(&g, "Port(loc.region='east')", TimeFilter::Current);
    check_equivalence(&g, "Port(loc.region='west')", TimeFilter::Current);
}
