//! A parser and executor for the SQL subset Nepal emits (§5.2).
//!
//! The translator generates Postgres statements — `CREATE TABLE …
//! INHERITS(…)`, `create TEMP table … as (select …)`, array columns with
//! `||` concatenation and `= ANY(uid_list)` cycle predicates, and
//! `sys_period @> '…'::timestamptz` temporal filters. This module makes
//! that output *executable* against the in-memory substrate, so tests can
//! round-trip: generate SQL → parse → execute → compare with the native
//! operator pipeline.
//!
//! Inheritance semantics mirror Postgres: selecting `FROM parent` scans the
//! whole subtree, projecting child rows onto the parent's column set.
//! `<table>__historical` resolves to the union of the current table and
//! its `__history` companion. `alias.sys_period @> ts` is interpreted
//! against the physical `sys_from`/`sys_to` columns.

use std::collections::HashMap;

use nepal_schema::{parse_ts, Value};

use crate::db::RelDb;
use crate::error::{RelError, Result};
use crate::table::{ColDef, ColType, Table};

// ---------------------------------------------------------------------
// AST
// ---------------------------------------------------------------------

/// A parsed SQL statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// `CREATE TABLE name(cols…) [INHERITS(parent)]`.
    CreateTable { name: String, cols: Vec<ColDef>, inherits: Option<String> },
    /// `CREATE [TEMP] TABLE name AS (select)`.
    CreateTableAs { name: String, temp: bool, query: Select },
    /// A bare `SELECT`.
    Select(Select),
    /// `INSERT INTO name VALUES (…), (…)`.
    Insert { table: String, rows: Vec<Vec<SqlExpr>> },
}

/// A SELECT query.
#[derive(Debug, Clone, PartialEq)]
pub struct Select {
    /// `(expr, output name)`; `*` expands positionally at execution.
    pub items: Vec<(SqlExpr, Option<String>)>,
    pub star: bool,
    /// `(table, alias)`.
    pub from: Vec<(String, String)>,
    pub where_: Option<SqlExpr>,
}

/// A SQL expression.
#[derive(Debug, Clone, PartialEq)]
pub enum SqlExpr {
    Lit(Value),
    /// `alias.column` (or bare `column` with an empty alias).
    Col(String, String),
    /// `ARRAY[…]`.
    Array(Vec<SqlExpr>),
    /// `a || b` (array/string concatenation).
    Concat(Box<SqlExpr>, Box<SqlExpr>),
    /// `cast(e AS type)` — type-checked loosely, passthrough at runtime.
    Cast(Box<SqlExpr>, String),
    Cmp(Box<SqlExpr>, CmpKind, Box<SqlExpr>),
    /// `e = ANY(array)`.
    AnyEq(Box<SqlExpr>, Box<SqlExpr>),
    /// `alias.sys_period @> ts` (temporal containment).
    PeriodContains(String, Box<SqlExpr>),
    And(Box<SqlExpr>, Box<SqlExpr>),
    Or(Box<SqlExpr>, Box<SqlExpr>),
    Not(Box<SqlExpr>),
}

/// Comparison kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CmpKind {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

// ---------------------------------------------------------------------
// Lexer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Num(i64),
    Str(String),
    Sym(&'static str),
}

fn lex(sql: &str) -> Result<Vec<Tok>> {
    let b = sql.as_bytes();
    let mut i = 0;
    let mut out = Vec::new();
    let err = |i: usize, m: &str| RelError::UnknownColumn {
        table: format!("<sql parse at byte {i}>"),
        column: m.to_string(),
    };
    while i < b.len() {
        let c = b[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '(' | ')' | ',' | ';' | '*' | '[' | ']' | '.' => {
                out.push(Tok::Sym(match c {
                    '(' => "(",
                    ')' => ")",
                    ',' => ",",
                    ';' => ";",
                    '*' => "*",
                    '[' => "[",
                    ']' => "]",
                    _ => ".",
                }));
                i += 1;
            }
            '|' if b.get(i + 1) == Some(&b'|') => {
                out.push(Tok::Sym("||"));
                i += 2;
            }
            ':' if b.get(i + 1) == Some(&b':') => {
                out.push(Tok::Sym("::"));
                i += 2;
            }
            '@' if b.get(i + 1) == Some(&b'>') => {
                out.push(Tok::Sym("@>"));
                i += 2;
            }
            '<' if b.get(i + 1) == Some(&b'>') => {
                out.push(Tok::Sym("<>"));
                i += 2;
            }
            '<' if b.get(i + 1) == Some(&b'=') => {
                out.push(Tok::Sym("<="));
                i += 2;
            }
            '>' if b.get(i + 1) == Some(&b'=') => {
                out.push(Tok::Sym(">="));
                i += 2;
            }
            '!' if b.get(i + 1) == Some(&b'=') => {
                out.push(Tok::Sym("<>"));
                i += 2;
            }
            '=' => {
                out.push(Tok::Sym("="));
                i += 1;
            }
            '<' => {
                out.push(Tok::Sym("<"));
                i += 1;
            }
            '>' => {
                out.push(Tok::Sym(">"));
                i += 1;
            }
            '-' if b.get(i + 1) == Some(&b'-') => {
                // comment to end of line
                while i < b.len() && b[i] != b'\n' {
                    i += 1;
                }
            }
            '\'' => {
                let start = i + 1;
                let mut j = start;
                while j < b.len() && b[j] != b'\'' {
                    j += 1;
                }
                if j >= b.len() {
                    return Err(err(i, "unterminated string"));
                }
                out.push(Tok::Str(sql[start..j].to_string()));
                i = j + 1;
            }
            c if c.is_ascii_digit() || (c == '-' && b.get(i + 1).is_some_and(|d| d.is_ascii_digit())) => {
                let start = i;
                i += 1;
                while i < b.len() && (b[i] as char).is_ascii_digit() {
                    i += 1;
                }
                let n: i64 = sql[start..i].parse().map_err(|_| err(start, "bad number"))?;
                out.push(Tok::Num(n));
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while i < b.len() && {
                    let d = b[i] as char;
                    d.is_alphanumeric() || d == '_'
                } {
                    i += 1;
                }
                out.push(Tok::Ident(sql[start..i].to_string()));
            }
            other => return Err(err(i, &format!("unexpected `{other}`"))),
        }
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------

struct P {
    toks: Vec<Tok>,
    i: usize,
}

impl P {
    fn err<T>(&self, m: &str) -> Result<T> {
        Err(RelError::UnknownColumn {
            table: format!("<sql parse at token {}>", self.i),
            column: format!("{m}; next: {:?}", self.toks.get(self.i)),
        })
    }

    fn peek(&self) -> Option<&Tok> {
        self.toks.get(self.i)
    }

    fn kw(&mut self, word: &str) -> bool {
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case(word) {
                self.i += 1;
                return true;
            }
        }
        false
    }

    fn expect_kw(&mut self, word: &str) -> Result<()> {
        if self.kw(word) {
            Ok(())
        } else {
            self.err(&format!("expected keyword {word}"))
        }
    }

    fn sym(&mut self, s: &str) -> bool {
        if self.peek() == Some(&Tok::Sym(Box::leak(s.to_string().into_boxed_str()))) {
            self.i += 1;
            return true;
        }
        // Compare by value to avoid the leak path in the common case.
        if let Some(Tok::Sym(t)) = self.peek() {
            if *t == s {
                self.i += 1;
                return true;
            }
        }
        false
    }

    fn expect_sym(&mut self, s: &str) -> Result<()> {
        if let Some(Tok::Sym(t)) = self.peek() {
            if *t == s {
                self.i += 1;
                return Ok(());
            }
        }
        self.err(&format!("expected `{s}`"))
    }

    fn ident(&mut self) -> Result<String> {
        match self.peek() {
            Some(Tok::Ident(s)) => {
                let s = s.clone();
                self.i += 1;
                Ok(s)
            }
            _ => self.err("expected identifier"),
        }
    }

    fn stmt(&mut self) -> Result<Stmt> {
        if self.kw("create") {
            let temp = self.kw("temp") || self.kw("temporary");
            self.expect_kw("table")?;
            let name = self.ident()?;
            if self.kw("as") {
                self.expect_sym("(")?;
                let q = self.select()?;
                self.expect_sym(")")?;
                return Ok(Stmt::CreateTableAs { name, temp, query: q });
            }
            self.expect_sym("(")?;
            let mut cols = Vec::new();
            loop {
                let cname = self.ident()?;
                let ty = self.col_type()?;
                cols.push(ColDef::new(cname, ty));
                if !self.sym(",") {
                    break;
                }
            }
            self.expect_sym(")")?;
            let inherits = if self.kw("inherits") {
                self.expect_sym("(")?;
                let p = self.ident()?;
                self.expect_sym(")")?;
                Some(p)
            } else {
                None
            };
            return Ok(Stmt::CreateTable { name, cols, inherits });
        }
        if self.kw("insert") {
            self.expect_kw("into")?;
            let table = self.ident()?;
            self.expect_kw("values")?;
            let mut rows = Vec::new();
            loop {
                self.expect_sym("(")?;
                let mut row = Vec::new();
                loop {
                    row.push(self.expr()?);
                    if !self.sym(",") {
                        break;
                    }
                }
                self.expect_sym(")")?;
                rows.push(row);
                if !self.sym(",") {
                    break;
                }
            }
            return Ok(Stmt::Insert { table, rows });
        }
        if let Some(Tok::Ident(s)) = self.peek() {
            if s.eq_ignore_ascii_case("select") {
                return Ok(Stmt::Select(self.select()?));
            }
        }
        self.err("expected CREATE, INSERT, or SELECT")
    }

    fn col_type(&mut self) -> Result<ColType> {
        let base = self.ident()?.to_ascii_lowercase();
        let mut ty = match base.as_str() {
            "bigint" | "int" | "integer" => ColType::BigInt,
            "text" | "varchar" => ColType::Text,
            "boolean" | "bool" => ColType::Bool,
            "double" => {
                let _ = self.kw("precision");
                ColType::Double
            }
            "timestamptz" | "timestamp" => ColType::Timestamp,
            "jsonb" => ColType::Jsonb,
            other => return self.err(&format!("unknown column type `{other}`")),
        };
        while self.sym("[") {
            self.expect_sym("]")?;
            ty = ColType::Array(Box::new(ty));
        }
        Ok(ty)
    }

    fn select(&mut self) -> Result<Select> {
        self.expect_kw("select")?;
        let mut items = Vec::new();
        let mut star = false;
        loop {
            if self.sym("*") {
                star = true;
            } else {
                let e = self.expr()?;
                let alias = if self.kw("as") { Some(self.ident()?) } else { None };
                items.push((e, alias));
            }
            if !self.sym(",") {
                break;
            }
        }
        self.expect_kw("from")?;
        let mut from = Vec::new();
        loop {
            let t = self.ident()?;
            // Optional alias (an identifier that isn't WHERE).
            let alias = match self.peek() {
                Some(Tok::Ident(s)) if !s.eq_ignore_ascii_case("where") => self.ident()?,
                _ => t.clone(),
            };
            from.push((t, alias));
            if !self.sym(",") {
                break;
            }
        }
        let where_ = if self.kw("where") { Some(self.expr()?) } else { None };
        Ok(Select { items, star, from, where_ })
    }

    fn expr(&mut self) -> Result<SqlExpr> {
        self.or_expr()
    }

    fn or_expr(&mut self) -> Result<SqlExpr> {
        let mut e = self.and_expr()?;
        while self.kw("or") {
            let r = self.and_expr()?;
            e = SqlExpr::Or(Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn and_expr(&mut self) -> Result<SqlExpr> {
        let mut e = self.not_expr()?;
        while self.kw("and") {
            let r = self.not_expr()?;
            e = SqlExpr::And(Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn not_expr(&mut self) -> Result<SqlExpr> {
        if self.kw("not") {
            return Ok(SqlExpr::Not(Box::new(self.not_expr()?)));
        }
        self.cmp_expr()
    }

    fn cmp_expr(&mut self) -> Result<SqlExpr> {
        let lhs = self.concat_expr()?;
        // `alias.sys_period @> ts`
        if let Some(Tok::Sym("@>")) = self.peek() {
            self.i += 1;
            let rhs = self.concat_expr()?;
            if let SqlExpr::Col(alias, col) = &lhs {
                if col == "sys_period" {
                    return Ok(SqlExpr::PeriodContains(alias.clone(), Box::new(rhs)));
                }
            }
            return Ok(SqlExpr::Cmp(Box::new(lhs), CmpKind::Eq, Box::new(rhs)));
        }
        let kind = match self.peek() {
            Some(Tok::Sym("=")) => Some(CmpKind::Eq),
            Some(Tok::Sym("<>")) => Some(CmpKind::Ne),
            Some(Tok::Sym("<")) => Some(CmpKind::Lt),
            Some(Tok::Sym("<=")) => Some(CmpKind::Le),
            Some(Tok::Sym(">")) => Some(CmpKind::Gt),
            Some(Tok::Sym(">=")) => Some(CmpKind::Ge),
            _ => None,
        };
        if let Some(kind) = kind {
            self.i += 1;
            // `= ANY(expr)`
            if kind == CmpKind::Eq && self.kw("any") {
                self.expect_sym("(")?;
                let arr = self.expr()?;
                self.expect_sym(")")?;
                return Ok(SqlExpr::AnyEq(Box::new(lhs), Box::new(arr)));
            }
            let rhs = self.concat_expr()?;
            return Ok(SqlExpr::Cmp(Box::new(lhs), kind, Box::new(rhs)));
        }
        Ok(lhs)
    }

    fn concat_expr(&mut self) -> Result<SqlExpr> {
        let mut e = self.atom()?;
        while let Some(Tok::Sym("||")) = self.peek() {
            self.i += 1;
            let r = self.atom()?;
            e = SqlExpr::Concat(Box::new(e), Box::new(r));
        }
        Ok(e)
    }

    fn atom(&mut self) -> Result<SqlExpr> {
        match self.peek().cloned() {
            Some(Tok::Num(n)) => {
                self.i += 1;
                Ok(SqlExpr::Lit(Value::Int(n)))
            }
            Some(Tok::Str(s)) => {
                self.i += 1;
                // Optional `::timestamptz` cast on string literals.
                if let Some(Tok::Sym("::")) = self.peek() {
                    self.i += 1;
                    let ty = self.ident()?;
                    if ty.eq_ignore_ascii_case("timestamptz") || ty.eq_ignore_ascii_case("timestamp") {
                        let ts = parse_ts(&s).ok_or_else(|| RelError::UnknownColumn {
                            table: "<sql>".into(),
                            column: format!("bad timestamp `{s}`"),
                        })?;
                        return Ok(SqlExpr::Lit(Value::Ts(ts)));
                    }
                    return Ok(SqlExpr::Cast(Box::new(SqlExpr::Lit(Value::Str(s))), ty));
                }
                Ok(SqlExpr::Lit(Value::Str(s)))
            }
            Some(Tok::Sym("(")) => {
                self.i += 1;
                let e = self.expr()?;
                self.expect_sym(")")?;
                Ok(e)
            }
            Some(Tok::Ident(id)) => {
                if id.eq_ignore_ascii_case("array") {
                    self.i += 1;
                    self.expect_sym("[")?;
                    let mut items = Vec::new();
                    if self.peek() != Some(&Tok::Sym("]")) {
                        loop {
                            items.push(self.expr()?);
                            if !self.sym(",") {
                                break;
                            }
                        }
                    }
                    self.expect_sym("]")?;
                    return Ok(SqlExpr::Array(items));
                }
                if id.eq_ignore_ascii_case("cast") {
                    self.i += 1;
                    self.expect_sym("(")?;
                    let e = self.expr()?;
                    self.expect_kw("as")?;
                    let ty = self.ident()?;
                    self.expect_sym(")")?;
                    return Ok(SqlExpr::Cast(Box::new(e), ty));
                }
                if id.eq_ignore_ascii_case("true") {
                    self.i += 1;
                    return Ok(SqlExpr::Lit(Value::Bool(true)));
                }
                if id.eq_ignore_ascii_case("false") {
                    self.i += 1;
                    return Ok(SqlExpr::Lit(Value::Bool(false)));
                }
                if id.eq_ignore_ascii_case("null") {
                    self.i += 1;
                    return Ok(SqlExpr::Lit(Value::Null));
                }
                self.i += 1;
                if self.sym(".") {
                    let col = self.ident()?;
                    Ok(SqlExpr::Col(id, col))
                } else {
                    Ok(SqlExpr::Col(String::new(), id))
                }
            }
            other => self.err(&format!("unexpected token {other:?}")),
        }
    }
}

/// Parse one or more `;`-separated statements.
pub fn parse_sql(sql: &str) -> Result<Vec<Stmt>> {
    let toks = lex(sql)?;
    let mut p = P { toks, i: 0 };
    let mut out = Vec::new();
    while p.peek().is_some() {
        if p.sym(";") {
            continue;
        }
        out.push(p.stmt()?);
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Executor
// ---------------------------------------------------------------------

/// Resolve a FROM item into rows projected onto a known column set,
/// honouring INHERITS subtree semantics and `__historical` views.
fn rows_of(db: &RelDb, table: &str) -> Result<(Vec<ColDef>, Vec<Vec<Value>>)> {
    if let Some(base) = table.strip_suffix("__historical") {
        let (cols, mut rows) = rows_of(db, base)?;
        let hist = format!("{base}__history");
        if db.has_table(&hist) {
            let (hcols, hrows) = rows_of(db, &hist)?;
            // Project history rows onto the base column set by name.
            let map: Vec<Option<usize>> = cols.iter().map(|c| hcols.iter().position(|h| h.name == c.name)).collect();
            for r in hrows {
                rows.push(map.iter().map(|m| m.map(|i| r[i].clone()).unwrap_or(Value::Null)).collect());
            }
        }
        return Ok((cols, rows));
    }
    let base = db.table(table)?;
    let cols = base.cols.clone();
    let mut rows: Vec<Vec<Value>> = Vec::new();
    for sub in db.subtree(table) {
        let t = db.table(&sub)?;
        if sub == table {
            rows.extend(t.rows.iter().cloned());
        } else {
            let map: Vec<Option<usize>> = cols.iter().map(|c| t.col_idx(&c.name).ok()).collect();
            for r in &t.rows {
                rows.push(map.iter().map(|m| m.map(|i| r[i].clone()).unwrap_or(Value::Null)).collect());
            }
        }
    }
    Ok((cols, rows))
}

/// A materialized FROM item: (alias, columns, rows).
type Source = (String, Vec<ColDef>, Vec<Vec<Value>>);

struct Scope<'a> {
    /// alias → (column defs, current row).
    bindings: HashMap<&'a str, (&'a [ColDef], &'a [Value])>,
}

fn eval_expr(e: &SqlExpr, scope: &Scope) -> Result<Value> {
    Ok(match e {
        SqlExpr::Lit(v) => v.clone(),
        SqlExpr::Col(alias, col) => {
            let lookup = |a: &str| -> Option<Value> {
                let (cols, row) = scope.bindings.get(a)?;
                let idx = cols.iter().position(|c| &c.name == col)?;
                Some(row[idx].clone())
            };
            if alias.is_empty() {
                // Search all bindings for an unambiguous column.
                let mut found = None;
                for a in scope.bindings.keys() {
                    if let Some(v) = lookup(a) {
                        if found.is_some() {
                            return Err(RelError::UnknownColumn { table: "<ambiguous>".into(), column: col.clone() });
                        }
                        found = Some(v);
                    }
                }
                found.ok_or_else(|| RelError::UnknownColumn { table: "<scope>".into(), column: col.clone() })?
            } else {
                lookup(alias).ok_or_else(|| RelError::UnknownColumn { table: alias.clone(), column: col.clone() })?
            }
        }
        SqlExpr::Array(items) => Value::List(items.iter().map(|i| eval_expr(i, scope)).collect::<Result<Vec<_>>>()?),
        SqlExpr::Concat(a, b) => {
            let (av, bv) = (eval_expr(a, scope)?, eval_expr(b, scope)?);
            match (av, bv) {
                (Value::List(mut x), Value::List(y)) => {
                    x.extend(y);
                    Value::List(x)
                }
                (Value::List(mut x), y) => {
                    x.push(y);
                    Value::List(x)
                }
                (x, Value::List(mut y)) => {
                    let mut out = vec![x];
                    out.append(&mut y);
                    Value::List(out)
                }
                (Value::Str(x), Value::Str(y)) => Value::Str(format!("{x}{y}")),
                (x, y) => Value::List(vec![x, y]),
            }
        }
        SqlExpr::Cast(inner, _ty) => eval_expr(inner, scope)?,
        SqlExpr::Cmp(a, kind, b) => {
            let (av, bv) = (eval_expr(a, scope)?, eval_expr(b, scope)?);
            let ord = av.query_cmp(&bv);
            let r = match (kind, ord) {
                (_, None) => false,
                (CmpKind::Eq, Some(o)) => o == std::cmp::Ordering::Equal,
                (CmpKind::Ne, Some(o)) => o != std::cmp::Ordering::Equal,
                (CmpKind::Lt, Some(o)) => o == std::cmp::Ordering::Less,
                (CmpKind::Le, Some(o)) => o != std::cmp::Ordering::Greater,
                (CmpKind::Gt, Some(o)) => o == std::cmp::Ordering::Greater,
                (CmpKind::Ge, Some(o)) => o != std::cmp::Ordering::Less,
            };
            Value::Bool(r)
        }
        SqlExpr::AnyEq(needle, hay) => {
            let n = eval_expr(needle, scope)?;
            match eval_expr(hay, scope)? {
                Value::List(items) => Value::Bool(items.contains(&n)),
                _ => Value::Bool(false),
            }
        }
        SqlExpr::PeriodContains(alias, at) => {
            let t = match eval_expr(at, scope)? {
                Value::Ts(t) => t,
                Value::Int(t) => t,
                _ => return Ok(Value::Bool(false)),
            };
            let get = |col: &str| -> Option<i64> {
                let (cols, row) = scope.bindings.get(alias.as_str())?;
                let idx = cols.iter().position(|c| c.name == col)?;
                match &row[idx] {
                    Value::Ts(x) => Some(*x),
                    Value::Int(x) => Some(*x),
                    _ => None,
                }
            };
            match (get("sys_from"), get("sys_to")) {
                (Some(a), Some(b)) => Value::Bool(a <= t && t < b),
                _ => Value::Bool(false),
            }
        }
        SqlExpr::And(a, b) => {
            Value::Bool(eval_expr(a, scope)? == Value::Bool(true) && eval_expr(b, scope)? == Value::Bool(true))
        }
        SqlExpr::Or(a, b) => {
            Value::Bool(eval_expr(a, scope)? == Value::Bool(true) || eval_expr(b, scope)? == Value::Bool(true))
        }
        SqlExpr::Not(a) => Value::Bool(eval_expr(a, scope)? != Value::Bool(true)),
    })
}

fn default_name(e: &SqlExpr, i: usize) -> String {
    match e {
        SqlExpr::Col(_, c) => c.clone(),
        _ => format!("col{i}"),
    }
}

/// Execute one SELECT; returns the result as an anonymous table.
pub fn execute_select(db: &RelDb, q: &Select) -> Result<Table> {
    // Materialize each FROM source.
    let sources: Vec<Source> =
        q.from.iter().map(|(t, a)| rows_of(db, t).map(|(c, r)| (a.clone(), c, r))).collect::<Result<Vec<_>>>()?;
    // Output columns.
    let mut out_cols: Vec<ColDef> = Vec::new();
    if q.star {
        for (_, cols, _) in &sources {
            out_cols.extend(cols.iter().cloned());
        }
    }
    for (i, (e, alias)) in q.items.iter().enumerate() {
        out_cols.push(ColDef::new(alias.clone().unwrap_or_else(|| default_name(e, i)), ColType::Jsonb));
    }
    let mut result = Table::new("<select>", out_cols);
    // Nested-loop cross product with filter (test-scale executor).
    fn recurse(
        q: &Select,
        sources: &[Source],
        level: usize,
        scope: &mut HashMap<String, (Vec<ColDef>, Vec<Value>)>,
        result: &mut Table,
    ) -> Result<()> {
        if level == sources.len() {
            let s = Scope {
                bindings: scope.iter().map(|(k, (c, r))| (k.as_str(), (c.as_slice(), r.as_slice()))).collect(),
            };
            if let Some(w) = &q.where_ {
                if eval_expr(w, &s)? != Value::Bool(true) {
                    return Ok(());
                }
            }
            let mut row = Vec::new();
            if q.star {
                for (alias, _, _) in sources {
                    let (_, r) = &scope[alias];
                    row.extend(r.iter().cloned());
                }
            }
            for (e, _) in &q.items {
                row.push(eval_expr(e, &s)?);
            }
            result.insert(row)?;
            return Ok(());
        }
        let (alias, cols, rows) = &sources[level];
        for r in rows {
            scope.insert(alias.clone(), (cols.clone(), r.clone()));
            recurse(q, sources, level + 1, scope, result)?;
        }
        scope.remove(alias);
        Ok(())
    }
    let mut scope = HashMap::new();
    recurse(q, &sources, 0, &mut scope, &mut result)?;
    Ok(result)
}

/// Execute one statement. SELECTs return their result table.
pub fn execute_stmt(db: &mut RelDb, stmt: &Stmt) -> Result<Option<Table>> {
    match stmt {
        Stmt::CreateTable { name, cols, inherits } => {
            db.create_table(Table::new(name.clone(), cols.clone()), inherits.as_deref())?;
            Ok(None)
        }
        Stmt::CreateTableAs { name, query, .. } => {
            let mut t = execute_select(db, query)?;
            t.name = name.clone();
            db.create_table(t, None)?;
            Ok(None)
        }
        Stmt::Select(q) => Ok(Some(execute_select(db, q)?)),
        Stmt::Insert { table, rows } => {
            let empty = Scope { bindings: HashMap::new() };
            let values: Vec<Vec<Value>> = rows
                .iter()
                .map(|r| r.iter().map(|e| eval_expr(e, &empty)).collect::<Result<Vec<_>>>())
                .collect::<Result<Vec<_>>>()?;
            let t = db.table_mut(table)?;
            for v in values {
                t.insert(v)?;
            }
            Ok(None)
        }
    }
}

/// Parse and execute a script; returns the last SELECT's result, if any.
pub fn execute_sql(db: &mut RelDb, sql: &str) -> Result<Option<Table>> {
    let stmts = parse_sql(sql)?;
    let mut last = None;
    for s in &stmts {
        if let Some(t) = execute_stmt(db, s)? {
            last = Some(t);
        }
    }
    Ok(last)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fresh_db() -> RelDb {
        let mut db = RelDb::new();
        execute_sql(
            &mut db,
            "CREATE TABLE node(id_ bigint, sys_from timestamptz, sys_to timestamptz);
             CREATE TABLE vm(id_ bigint, vm_id bigint, status text, sys_from timestamptz, sys_to timestamptz) INHERITS(node);
             CREATE TABLE vmware(id_ bigint, vm_id bigint, status text, sys_from timestamptz, sys_to timestamptz) INHERITS(vm);
             CREATE TABLE hostedon(id_ bigint, source_id_ bigint, target_id_ bigint, sys_from timestamptz, sys_to timestamptz);
             INSERT INTO vm VALUES (1, 55, 'Green', 0, 9000000000000000);
             INSERT INTO vmware VALUES (2, 66, 'Red', 0, 9000000000000000);
             INSERT INTO hostedon VALUES (10, 1, 2, 0, 9000000000000000);",
        )
        .unwrap();
        db
    }

    #[test]
    fn select_from_parent_scans_subtree() {
        let mut db = fresh_db();
        let t = execute_sql(&mut db, "SELECT id_ FROM vm").unwrap().unwrap();
        assert_eq!(t.rows.len(), 2); // vm + vmware rows
        let t = execute_sql(&mut db, "SELECT id_ FROM vmware").unwrap().unwrap();
        assert_eq!(t.rows.len(), 1);
        let t = execute_sql(&mut db, "SELECT id_ FROM node").unwrap().unwrap();
        assert_eq!(t.rows.len(), 2);
    }

    #[test]
    fn where_and_projection() {
        let mut db = fresh_db();
        let t = execute_sql(&mut db, "SELECT V.id_, V.status FROM vm V WHERE V.vm_id = 55").unwrap().unwrap();
        assert_eq!(t.rows.len(), 1);
        assert_eq!(t.rows[0], vec![Value::Int(1), Value::Str("Green".into())]);
        // Bare column names resolve when unambiguous.
        let t = execute_sql(&mut db, "SELECT status FROM vm WHERE vm_id = 66").unwrap().unwrap();
        assert_eq!(t.rows[0][0], Value::Str("Red".into()));
    }

    #[test]
    fn the_papers_extend_statement_executes() {
        // Literally the §5.2 shape, including array concat, ANY cycle
        // predicates, and the uid_list/concept_list/curr_uid columns.
        let mut db = fresh_db();
        execute_sql(
            &mut db,
            "create TEMP table tmp_select_node as (
               select ARRAY[N.id_] as uid_list,
                      ARRAY[cast('VM' as text)] as concept_list,
                      N.id_ as curr_uid
               from vm N where N.vm_id = 55
             );",
        )
        .unwrap();
        let out = execute_sql(
            &mut db,
            "create TEMP table tmp_extend_node_1 as (
               select T.uid_list || ARRAY[H.id_] as uid_list,
                      T.concept_list || ARRAY[cast('HostedOn' as text)] as concept_list,
                      H.target_id_ as curr_uid
               from hostedon H, tmp_select_node T
               where H.source_id_ = T.curr_uid AND NOT H.id_ = ANY(T.uid_list)
             );
             SELECT uid_list, curr_uid FROM tmp_extend_node_1",
        )
        .unwrap()
        .unwrap();
        assert_eq!(out.rows.len(), 1);
        assert_eq!(out.rows[0][0], Value::List(vec![Value::Int(1), Value::Int(10)]));
        assert_eq!(out.rows[0][1], Value::Int(2));
        // The cycle predicate actually prunes: a self-referencing frontier
        // row would be rejected.
        let t = execute_sql(
            &mut db,
            "SELECT H.id_ FROM hostedon H, tmp_select_node T
             WHERE H.source_id_ = T.curr_uid AND NOT H.source_id_ = ANY(T.uid_list)",
        )
        .unwrap()
        .unwrap();
        assert_eq!(t.rows.len(), 0); // source 1 IS in uid_list → pruned
    }

    #[test]
    fn temporal_predicates() {
        let mut db = fresh_db();
        execute_sql(
            &mut db,
            "CREATE TABLE vm__history(id_ bigint, vm_id bigint, status text, sys_from timestamptz, sys_to timestamptz);
             INSERT INTO vm__history VALUES (1, 55, 'Amber', '1970-01-01'::timestamptz, '2017-02-15 09:00:00'::timestamptz);",
        )
        .unwrap();
        // __historical = current ∪ history.
        let t = execute_sql(&mut db, "SELECT id_ FROM vm__historical").unwrap().unwrap();
        assert_eq!(t.rows.len(), 3);
        // sys_period @> containment resolves against sys_from/sys_to.
        let t = execute_sql(
            &mut db,
            "SELECT H.status FROM vm__historical H WHERE H.sys_period @> '2017-02-15 08:00:00'::timestamptz AND H.vm_id = 55",
        )
        .unwrap()
        .unwrap();
        assert_eq!(t.rows.len(), 2); // Amber (history) + Green (current, open)
    }

    #[test]
    fn parse_errors_are_reported() {
        let mut db = fresh_db();
        assert!(execute_sql(&mut db, "SELEC oops").is_err());
        assert!(execute_sql(&mut db, "SELECT FROM vm").is_err());
        assert!(execute_sql(&mut db, "SELECT x FROM no_such_table").is_err());
        assert!(execute_sql(&mut db, "INSERT INTO vm VALUES (1)").is_err()); // arity
    }

    #[test]
    fn comments_and_booleans() {
        let mut db = fresh_db();
        let t = execute_sql(&mut db, "-- leading comment\nSELECT vm_id FROM vm WHERE true AND NOT false -- trailing")
            .unwrap()
            .unwrap();
        assert_eq!(t.rows.len(), 2);
    }
}
