//! # nepal-relational — the relational backend substrate
//!
//! An in-memory reproduction of the paper's PostgreSQL backend (§5.2/§5.3):
//!
//! - [`table`] — typed tables with hash-join probes and array columns.
//! - [`db`] — the database: `INHERITS` hierarchies (class subtree scans),
//!   TEMP tables, `__history` companions.
//! - [`load`] — table-per-class DDL generation and graph loading.
//! - [`exec`] — set-at-a-time RPE evaluation: `Select` → chained `Extend`
//!   bulk joins with `uid_list` cycle predicates → `Union`, emitting the
//!   equivalent SQL script alongside the results.
//!
//! The substrate exists so the repository is self-contained; the emitted
//! SQL is what Nepal would send to a real Postgres.

pub mod db;
pub mod error;
pub mod exec;
pub mod load;
pub mod sql;
pub mod table;

pub use db::RelDb;
pub use error::{RelError, Result};
pub use exec::{evaluate_relational, evaluate_relational_spanned, RelResult};
pub use load::{create_schema, db_from_graph, field_offset, history_name, load_graph, table_name};
pub use sql::{execute_sql, parse_sql, Select, SqlExpr, Stmt};
pub use table::{ColDef, ColType, Table};
