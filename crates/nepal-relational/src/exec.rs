//! Relational evaluation of RPE plans.
//!
//! This is the paper's Postgres code-generation strategy (§5.2) executed
//! against the in-memory substrate: the anchor `Select` materializes a TEMP
//! table of single-element paths; each NFA transition becomes an `Extend`
//! — a bulk equi-join between a frontier TEMP table and the class tables —
//! appending to `uid_list`/`concept_list` arrays with `NOT id = ANY(…)`
//! cycle predicates; `Union` merges frontier tables per NFA state; the
//! forward and backward frontiers are finally joined on the seed.
//!
//! Every operator also emits the equivalent SQL text, so the generated
//! query sequence can be inspected exactly as the paper presents it.

use std::collections::{HashMap, HashSet};

use nepal_graph::{Interval, IntervalSet, TimeFilter, Uid, FOREVER};
use nepal_obs::SpanHandle;
use nepal_rpe::{CancelCause, CancelToken, EvalOptions, Label, Pathway, RpePlan, Seeds};
use nepal_schema::{format_ts, Schema, Ts, Value};

use crate::db::RelDb;
use crate::error::Result;
use crate::load::{field_offset, history_name, table_name};

/// Result of a relational evaluation: the pathways plus the SQL script the
/// translator generated for the target DBMS.
#[derive(Debug)]
pub struct RelResult {
    pub pathways: Vec<Pathway>,
    pub sql: Vec<String>,
    /// Version rows examined by `Select` scans over class tables.
    pub rows_scanned: u64,
    /// Candidate rows probed by `Extend` equi-joins (before predicates).
    pub rows_joined: u64,
}

/// A frontier row (one partial path).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
struct Row {
    seed_uid: i64,
    seed_tr: u32,
    uid_list: Vec<i64>,
    concepts: Vec<String>,
    curr: i64,
    /// The forced next element (edge endpoint) when the last consumed
    /// element was an edge; `None` when it was a node.
    pending: Option<i64>,
    /// Accumulated assertion-interval intersection (range mode only).
    t_from: Option<Ts>,
    t_to: Option<Ts>,
}

impl Row {
    fn intersect_span(&self, from: Ts, to: Ts) -> Option<(Option<Ts>, Option<Ts>)> {
        let nf = self.t_from.map_or(from, |f| f.max(from));
        let nt = self.t_to.map_or(to, |t| t.min(to));
        (nf < nt).then_some((Some(nf), Some(nt)))
    }
}

struct Evaluator<'a> {
    db: &'a mut RelDb,
    schema: &'a Schema,
    plan: &'a RpePlan,
    filter: TimeFilter,
    sql: Vec<String>,
    temp_counter: u32,
    rows_scanned: u64,
    rows_joined: u64,
    /// Live span the scans and join passes attach child spans to; inert
    /// outside a traced execution.
    span: &'a SpanHandle,
    /// Cooperative cancellation: token, rate-limiting counter, and the
    /// sticky trip cause once observed.
    cancel: Option<CancelToken>,
    cancel_ctr: u64,
    tripped: Option<CancelCause>,
}

/// Poll the cancel token once per this many scanned/probed rows.
const REL_CANCEL_MASK: u64 = 0x3FF; // every 1024 rows

/// One scan/probe checkpoint: `true` → abandon work, the caller surfaces
/// [`crate::error::RelError::DeadlineExceeded`] /
/// [`crate::error::RelError::Cancelled`]. Free-standing over the cancel
/// fields so scan loops can poll while a table borrow is live.
#[inline]
fn rel_checkpoint(cancel: &Option<CancelToken>, ctr: &mut u64, tripped: &mut Option<CancelCause>) -> bool {
    if tripped.is_some() {
        return true;
    }
    let Some(tok) = cancel else { return false };
    *ctr = ctr.wrapping_add(1);
    if *ctr & REL_CANCEL_MASK != 0 {
        return false;
    }
    match tok.poll() {
        Some(cause) => {
            *tripped = Some(cause);
            true
        }
        None => false,
    }
}

impl<'a> Evaluator<'a> {
    /// Class tables (and history companions, depending on the time filter)
    /// that can hold elements satisfying `label`.
    fn tables_for_label(&self, label: Label) -> Vec<(String, bool)> {
        let root = match label {
            Label::AnyNode => "node".to_string(),
            Label::AnyEdge => "edge".to_string(),
            Label::Atom(a) => table_name(self.schema, self.plan.atoms[a as usize].class),
        };
        let mut out = Vec::new();
        for t in self.db.subtree(&root) {
            match self.filter {
                TimeFilter::Current => out.push((t, true)),
                _ => {
                    out.push((history_name(&t), false));
                    out.push((t, true));
                }
            }
        }
        out
    }

    fn label_is_node(&self, label: Label) -> bool {
        match label {
            Label::AnyNode => true,
            Label::AnyEdge => false,
            Label::Atom(a) => self.plan.atoms[a as usize].is_node,
        }
    }

    fn temporal_sql(&self) -> String {
        match self.filter {
            TimeFilter::Current => String::new(),
            TimeFilter::AsOf(t) => {
                format!(" AND H.sys_period @> '{}'::timestamptz", format_ts(t))
            }
            TimeFilter::Range(_, _) => String::new(),
        }
    }

    /// `Select`: scan class tables for elements satisfying an atom, one row
    /// per matching version. For edge atoms the returned pair carries the
    /// source endpoint so the backward pass can seed with `pending=source`
    /// while the forward pass uses `pending=target`.
    fn select_atom(&mut self, atom_idx: u32, seed_tr: u32) -> Vec<SeedPair> {
        let atom = self.plan.atoms[atom_idx as usize].clone();
        let label = Label::Atom(atom_idx);
        let is_node = atom.is_node;
        let scan_span = self.span.child("Scan");
        scan_span.attr("atom", &atom.display);
        let scanned_before = self.rows_scanned;
        let mut rows = Vec::new();
        let tables = self.tables_for_label(label);
        for (tname, _) in &tables {
            if !self.db.has_table(tname) {
                continue;
            }
            let t = self.db.table(tname).unwrap();
            let n = t.cols.len();
            let concept = tname.trim_end_matches("__history").to_string();
            self.rows_scanned += t.rows.len() as u64;
            for r in &t.rows {
                if rel_checkpoint(&self.cancel, &mut self.cancel_ctr, &mut self.tripped) {
                    break;
                }
                let (from, to) = (as_ts(&r[n - 2]), as_ts(&r[n - 1]));
                if !version_ok(self.filter, from, to) || !preds_ok(self.plan, label, r, is_node) {
                    continue;
                }
                let uid = as_i64(&r[0]);
                let (pending, source) = if is_node { (None, None) } else { (Some(as_i64(&r[2])), Some(as_i64(&r[1]))) };
                let (t_from, t_to) = if self.filter.is_range() { (Some(from), Some(to)) } else { (None, None) };
                rows.push((
                    Row {
                        seed_uid: uid,
                        seed_tr,
                        uid_list: vec![uid],
                        concepts: vec![concept.clone()],
                        curr: uid,
                        pending,
                        t_from,
                        t_to,
                    },
                    source,
                ));
            }
        }
        self.temp_counter += 1;
        self.sql.push(format!(
            "create TEMP table tmp_select_{}_{} as (\n  select ARRAY[N.id_] as uid_list, ARRAY[cast('{}' as text)] as concept_list, N.id_ as curr_uid\n  from {} N\n  where {}{}\n);",
            if is_node { "node" } else { "edge" },
            self.temp_counter,
            atom.class_name,
            table_name(self.schema, atom.class),
            preds_sql(&atom),
            self.temporal_sql(),
        ));
        scan_span.attr("rows_scanned", self.rows_scanned - scanned_before);
        scan_span.attr("rows_out", rows.len());
        rows
    }

    /// Extend a node-position frontier by one edge (forwards: join on
    /// `source_id_`; backwards: on `target_id_`).
    fn extend_edge(&mut self, rows: &[Row], label: Label, forwards: bool) -> Vec<Row> {
        if self.label_is_node(label) {
            return Vec::new();
        }
        let mut out = Vec::new();
        let tables = self.tables_for_label(label);
        for (tname, _) in &tables {
            if !self.db.has_table(tname) {
                continue;
            }
            let concept = tname.trim_end_matches("__history").to_string();
            // Probe column: source for forward extension, target backward.
            let t = self.db.table_mut(tname).unwrap();
            let n = t.cols.len();
            let probe_col = if forwards { 1 } else { 2 };
            let other_col = if forwards { 2 } else { 1 };
            for row in rows {
                if rel_checkpoint(&self.cancel, &mut self.cancel_ctr, &mut self.tripped) {
                    return out;
                }
                if row.pending.is_some() {
                    continue; // must consume the pending node first
                }
                let rids = t.probe(probe_col, &Value::Int(row.curr));
                self.rows_joined += rids.len() as u64;
                for rid in rids {
                    let r = &t.rows[rid as usize];
                    let (from, to) = (as_ts(&r[n - 2]), as_ts(&r[n - 1]));
                    if !version_ok(self.filter, from, to) {
                        continue;
                    }
                    let eid = as_i64(&r[0]);
                    let other = as_i64(&r[other_col]);
                    // Cycle predicates: NOT H.id_ = ANY(T.uid_list) AND NOT
                    // H.target_id_ = ANY(T.uid_list).
                    if row.uid_list.contains(&eid) || row.uid_list.contains(&other) {
                        continue;
                    }
                    if !preds_ok(self.plan, label, r, false) {
                        continue;
                    }
                    let times = if self.filter.is_range() {
                        match row.intersect_span(from, to) {
                            Some(t) => t,
                            None => continue,
                        }
                    } else {
                        (None, None)
                    };
                    let mut new = row.clone();
                    new.uid_list.push(eid);
                    new.concepts.push(concept.clone());
                    new.curr = eid;
                    new.pending = Some(other);
                    new.t_from = times.0;
                    new.t_to = times.1;
                    out.push(new);
                }
            }
        }
        out
    }

    /// Extend an edge-position frontier by its pending endpoint node.
    fn extend_node(&mut self, rows: &[Row], label: Label) -> Vec<Row> {
        if !self.label_is_node(label) {
            return Vec::new();
        }
        let mut out = Vec::new();
        let tables = self.tables_for_label(label);
        for (tname, _) in &tables {
            if !self.db.has_table(tname) {
                continue;
            }
            let concept = tname.trim_end_matches("__history").to_string();
            let t = self.db.table_mut(tname).unwrap();
            let n = t.cols.len();
            for row in rows {
                if rel_checkpoint(&self.cancel, &mut self.cancel_ctr, &mut self.tripped) {
                    return out;
                }
                let p = match row.pending {
                    Some(p) => p,
                    None => continue,
                };
                let rids = t.probe(0, &Value::Int(p));
                self.rows_joined += rids.len() as u64;
                for rid in rids {
                    let r = &t.rows[rid as usize];
                    let (from, to) = (as_ts(&r[n - 2]), as_ts(&r[n - 1]));
                    if !version_ok(self.filter, from, to) || !preds_ok(self.plan, label, r, true) {
                        continue;
                    }
                    let times = if self.filter.is_range() {
                        match row.intersect_span(from, to) {
                            Some(t) => t,
                            None => continue,
                        }
                    } else {
                        (None, None)
                    };
                    let mut new = row.clone();
                    new.uid_list.push(p);
                    new.concepts.push(concept.clone());
                    new.curr = p;
                    new.pending = None;
                    new.t_from = times.0;
                    new.t_to = times.1;
                    out.push(new);
                }
            }
        }
        out
    }

    fn log_extend(&mut self, label: Label, forwards: bool, from_table: u32) {
        self.temp_counter += 1;
        let (join_col, kind) = if self.label_is_node(label) {
            ("H.id_ = T.pending_uid", "node")
        } else if forwards {
            ("H.source_id_ = T.curr_uid", "edge")
        } else {
            ("H.target_id_ = T.curr_uid", "edge")
        };
        let table = match label {
            Label::AnyNode => "node".into(),
            Label::AnyEdge => "edge".into(),
            Label::Atom(a) => table_name(self.schema, self.plan.atoms[a as usize].class),
        };
        let hist = if matches!(self.filter, TimeFilter::Current) { "" } else { "__historical" };
        self.sql.push(format!(
            "create TEMP table tmp_extend_{kind}_{} as (\n  select T.uid_list || ARRAY[H.id_] as uid_list,\n         T.concept_list || ARRAY[cast('{table}' as text)] as concept_list,\n         H.id_ as curr_uid\n  from {table}{hist} H, tmp_{} T\n  where {join_col} AND NOT H.id_ = ANY(T.uid_list){}\n);",
            self.temp_counter, from_table, self.temporal_sql(),
        ));
    }

    /// One directional pass: returns accepting rows keyed by (seed, tr).
    fn pass(&mut self, seeds_by_state: HashMap<u32, Vec<Row>>, forwards: bool) -> Vec<Row> {
        let join_span = self.span.child(if forwards { "Join(fwd)" } else { "Join(bwd)" });
        let joined_before = self.rows_joined;
        // Topological order of the NFA DAG.
        let order = topo_order(self.plan, forwards);
        let mut tables: HashMap<u32, Vec<Row>> = seeds_by_state;
        let mut seen: HashMap<u32, HashSet<Row>> = HashMap::new();
        for (s, rows) in &tables {
            seen.entry(*s).or_default().extend(rows.iter().cloned());
        }
        let mut accepted: Vec<Row> = Vec::new();
        let mut table_no = 0u32;
        for &state in &order {
            if self.tripped.is_some() {
                break; // cancelled: stop joining, the caller surfaces it
            }
            let rows = match tables.get(&state) {
                Some(r) if !r.is_empty() => r.clone(),
                _ => continue,
            };
            table_no += 1;
            // Collect acceptance at this state.
            if forwards {
                if self.plan.nfa.accepts[state as usize] {
                    accepted.extend(rows.iter().filter(|r| r.pending.is_none()).cloned());
                }
            } else if state == self.plan.nfa.start {
                accepted.extend(rows.iter().filter(|r| r.pending.is_none()).cloned());
            }
            // Extend along transitions out of (fwd) / into (bwd) the state.
            let transitions: Vec<(Label, u32)> = if forwards {
                self.plan.nfa.trans[state as usize].clone()
            } else {
                self.plan.nfa.rev[state as usize].clone()
            };
            for (label, next) in transitions {
                let new_rows = {
                    let edge_rows = self.extend_edge(&rows, label, forwards);
                    let node_rows = self.extend_node(&rows, label);
                    if !edge_rows.is_empty() || !node_rows.is_empty() {
                        self.log_extend(label, forwards, table_no);
                    }
                    let mut all = edge_rows;
                    all.extend(node_rows);
                    all
                };
                if new_rows.is_empty() {
                    continue;
                }
                let dedup = seen.entry(next).or_default();
                let bucket = tables.entry(next).or_default();
                for r in new_rows {
                    if dedup.insert(r.clone()) {
                        bucket.push(r);
                    }
                }
            }
        }
        join_span.attr("rows_joined", self.rows_joined - joined_before);
        join_span.attr("accepted", accepted.len());
        accepted
    }
}

/// Temporal predicate on a version row.
fn version_ok(filter: TimeFilter, from: Ts, to: Ts) -> bool {
    match filter {
        TimeFilter::Current => to == FOREVER,
        TimeFilter::AsOf(t) => from <= t && t < to,
        TimeFilter::Range(_, _) => true, // filtered at finalize
    }
}

/// Field predicate of a label on a version row.
fn preds_ok(plan: &RpePlan, label: Label, row: &[Value], is_node: bool) -> bool {
    match label {
        Label::AnyNode | Label::AnyEdge => true,
        Label::Atom(a) => {
            let atom = &plan.atoms[a as usize];
            let off = field_offset(is_node);
            let fields = &row[off..row.len() - 2];
            atom.matches_fields(fields)
        }
    }
}

fn as_i64(v: &Value) -> i64 {
    match v {
        Value::Int(i) => *i,
        _ => panic!("expected bigint, got {v:?}"),
    }
}

fn as_ts(v: &Value) -> Ts {
    match v {
        Value::Ts(t) => *t,
        Value::Int(t) => *t,
        _ => panic!("expected timestamp, got {v:?}"),
    }
}

fn preds_sql(atom: &nepal_rpe::BoundAtom) -> String {
    if atom.preds.is_empty() {
        return "true".to_string();
    }
    atom.preds
        .iter()
        .map(|p| format!("N.{} {} {}", p.field_name, op_sql(p.op), p.value))
        .collect::<Vec<_>>()
        .join(" AND ")
}

fn op_sql(op: nepal_rpe::CmpOp) -> &'static str {
    use nepal_rpe::CmpOp::*;
    match op {
        Eq => "=",
        Ne => "<>",
        Lt => "<",
        Le => "<=",
        Gt => ">",
        Ge => ">=",
        Contains => "@>",
    }
}

/// Topological order of the NFA states (the NFA is a DAG; see
/// `nepal_rpe::nfa`). For the backward pass the order is reversed.
fn topo_order(plan: &RpePlan, forwards: bool) -> Vec<u32> {
    let n = plan.nfa.n_states;
    let mut indeg = vec![0usize; n];
    for list in &plan.nfa.trans {
        for &(_, t) in list {
            indeg[t as usize] += 1;
        }
    }
    let mut stack: Vec<u32> = (0..n as u32).filter(|&s| indeg[s as usize] == 0).collect();
    let mut order = Vec::with_capacity(n);
    while let Some(s) = stack.pop() {
        order.push(s);
        for &(_, t) in &plan.nfa.trans[s as usize] {
            indeg[t as usize] -= 1;
            if indeg[t as usize] == 0 {
                stack.push(t);
            }
        }
    }
    if !forwards {
        order.reverse();
    }
    order
}

fn finalize_times(filter: TimeFilter, combos: Vec<(Option<Ts>, Option<Ts>)>) -> Option<Option<IntervalSet>> {
    match filter {
        TimeFilter::Range(a, b) => {
            let probe = Interval::new(a, b.saturating_add(1));
            let ivs: Vec<Interval> = combos
                .into_iter()
                .filter_map(|(f, t)| match (f, t) {
                    (Some(f), Some(t)) if f < t => Some(Interval::new(f, t)),
                    _ => None,
                })
                .collect();
            let set = IntervalSet::from_intervals(ivs);
            let comps = set.components_overlapping(&probe);
            if comps.is_empty() {
                None
            } else {
                Some(Some(IntervalSet::from_intervals(comps)))
            }
        }
        _ => Some(None),
    }
}

/// A frontier pair: the row plus the source endpoint for edge seeds.
type SeedPair = (Row, Option<i64>);

/// Evaluate a planned RPE against the relational store.
pub fn evaluate_relational(
    db: &mut RelDb,
    schema: &Schema,
    plan: &RpePlan,
    filter: TimeFilter,
    seeds: Seeds,
    opts: &EvalOptions,
) -> Result<RelResult> {
    evaluate_relational_spanned(db, schema, plan, filter, seeds, opts, &SpanHandle::none())
}

/// [`evaluate_relational`] under a live span: table scans become `Scan`
/// child spans and each directional frontier pass a `Join(fwd)`/`Join(bwd)`
/// span, carrying rows-scanned/rows-joined attributes.
pub fn evaluate_relational_spanned(
    db: &mut RelDb,
    schema: &Schema,
    plan: &RpePlan,
    filter: TimeFilter,
    seeds: Seeds,
    opts: &EvalOptions,
    span: &SpanHandle,
) -> Result<RelResult> {
    let mut ev = Evaluator {
        db,
        schema,
        plan,
        filter,
        sql: Vec::new(),
        temp_counter: 0,
        rows_scanned: 0,
        rows_joined: 0,
        span,
        cancel: opts.cancel.clone(),
        cancel_ctr: 0,
        tripped: None,
    };
    let range = filter.is_range();
    let init_times = |rows: &mut Vec<Row>| {
        if !range {
            for r in rows.iter_mut() {
                r.t_from = None;
                r.t_to = None;
            }
        }
    };

    type TimeCombo = (Option<Ts>, Option<Ts>);
    let mut merged: HashMap<Vec<i64>, Vec<TimeCombo>> = HashMap::new();
    match seeds {
        Seeds::Anchor => {
            'anchors: for &occ in &plan.anchor.atoms {
                let seed_trans = plan.nfa.seeds_for(occ);
                for (tr_idx, tr) in seed_trans.iter().enumerate() {
                    if ev.tripped.is_some() {
                        break 'anchors;
                    }
                    let seed_pairs = ev.select_atom(occ, tr_idx as u32);
                    if seed_pairs.is_empty() {
                        continue;
                    }
                    let mut fwd_rows: Vec<Row> = seed_pairs.iter().map(|(r, _)| r.clone()).collect();
                    // Backward seeds consume toward the edge's SOURCE.
                    let mut bwd_rows: Vec<Row> = seed_pairs
                        .iter()
                        .map(|(r, src)| {
                            let mut b = r.clone();
                            if b.pending.is_some() {
                                b.pending = *src;
                            }
                            b
                        })
                        .collect();
                    init_times(&mut fwd_rows);
                    init_times(&mut bwd_rows);
                    // Forward from tr.to (seed element already consumed).
                    let mut fwd_seeds: HashMap<u32, Vec<Row>> = HashMap::new();
                    fwd_seeds.insert(tr.to, fwd_rows);
                    let fwd = ev.pass(fwd_seeds, true);
                    if fwd.is_empty() {
                        continue;
                    }
                    // Backward from tr.from.
                    let mut bwd_seeds: HashMap<u32, Vec<Row>> = HashMap::new();
                    bwd_seeds.insert(tr.from, bwd_rows);
                    let bwd = ev.pass(bwd_seeds, false);
                    // Join forward and backward halves on the seed.
                    let mut bwd_by_seed: HashMap<i64, Vec<&Row>> = HashMap::new();
                    for b in &bwd {
                        bwd_by_seed.entry(b.seed_uid).or_default().push(b);
                    }
                    ev.sql.push(format!("-- Union: join forward/backward frontiers on seed (transition {})", tr_idx));
                    'fwd: for f in &fwd {
                        let Some(bs) = bwd_by_seed.get(&f.seed_uid) else { continue };
                        for b in bs {
                            // Cycle check across halves (element 0 shared).
                            let tail = &b.uid_list[1..];
                            if tail.iter().any(|u| f.uid_list.contains(u)) {
                                continue;
                            }
                            let (tf, tt) = if range {
                                let nf = match (b.t_from, f.t_from) {
                                    (Some(x), Some(y)) => Some(x.max(y)),
                                    (x, y) => x.or(y),
                                };
                                let nt = match (b.t_to, f.t_to) {
                                    (Some(x), Some(y)) => Some(x.min(y)),
                                    (x, y) => x.or(y),
                                };
                                match (nf, nt) {
                                    (Some(a2), Some(b2)) if a2 >= b2 => continue,
                                    other => other,
                                }
                            } else {
                                (None, None)
                            };
                            let mut elems: Vec<i64> = tail.to_vec();
                            elems.reverse();
                            elems.extend_from_slice(&f.uid_list);
                            merged.entry(elems).or_default().push((tf, tt));
                            if let Some(limit) = opts.limit {
                                if merged.len() >= limit.saturating_mul(4) {
                                    break 'fwd;
                                }
                            }
                        }
                    }
                }
            }
        }
        Seeds::Sources(srcs) => {
            let mut seed_rows: HashMap<u32, Vec<Row>> = HashMap::new();
            for &src in srcs {
                for &(label, to) in &plan.nfa.trans[plan.nfa.start as usize] {
                    if !ev.label_is_node(label) {
                        continue;
                    }
                    // Verify the node exists/matches under the label.
                    let probe = Row {
                        seed_uid: src.0 as i64,
                        seed_tr: 0,
                        uid_list: Vec::new(),
                        concepts: Vec::new(),
                        curr: 0,
                        pending: Some(src.0 as i64),
                        t_from: None,
                        t_to: None,
                    };
                    let rows = ev.extend_node(&[probe], label);
                    for mut r in rows {
                        r.uid_list = vec![src.0 as i64];
                        r.concepts = r.concepts.split_off(r.concepts.len() - 1);
                        r.curr = src.0 as i64;
                        r.pending = None;
                        seed_rows.entry(to).or_default().push(r);
                    }
                }
            }
            for f in ev.pass(seed_rows, true) {
                merged.entry(f.uid_list.clone()).or_default().push((f.t_from, f.t_to));
            }
        }
        Seeds::Targets(tgts) => {
            let mut seed_rows: HashMap<u32, Vec<Row>> = HashMap::new();
            for &tgt in tgts {
                for tr in &plan.nfa.transitions {
                    if !plan.nfa.accepts[tr.to as usize] || !ev.label_is_node(tr.label) {
                        continue;
                    }
                    let probe = Row {
                        seed_uid: tgt.0 as i64,
                        seed_tr: 0,
                        uid_list: Vec::new(),
                        concepts: Vec::new(),
                        curr: 0,
                        pending: Some(tgt.0 as i64),
                        t_from: None,
                        t_to: None,
                    };
                    let rows = ev.extend_node(&[probe], tr.label);
                    for mut r in rows {
                        r.uid_list = vec![tgt.0 as i64];
                        r.concepts = r.concepts.split_off(r.concepts.len() - 1);
                        r.curr = tgt.0 as i64;
                        r.pending = None;
                        seed_rows.entry(tr.from).or_default().push(r);
                    }
                }
            }
            for b in ev.pass(seed_rows, false) {
                let mut elems = b.uid_list.clone();
                elems.reverse();
                merged.entry(elems).or_default().push((b.t_from, b.t_to));
            }
        }
    }

    // A tripped checkpoint anywhere above means the frontier (and thus
    // `merged`) is partial: drop temps and surface the typed error.
    if let Some(cause) = ev.tripped {
        ev.db.drop_temps();
        return Err(cause.into());
    }

    let mut pathways = Vec::new();
    for (elems, combos) in merged {
        if let Some(times) = finalize_times(filter, combos) {
            pathways.push(Pathway { elems: elems.into_iter().map(|u| Uid(u as u64)).collect(), times });
        }
    }
    pathways.sort_by(|a, b| a.elems.cmp(&b.elems));
    if let Some(limit) = opts.limit {
        pathways.truncate(limit);
    }
    let sql = std::mem::take(&mut ev.sql);
    let (rows_scanned, rows_joined) = (ev.rows_scanned, ev.rows_joined);
    ev.db.drop_temps();
    Ok(RelResult { pathways, sql, rows_scanned, rows_joined })
}
