//! The relational database: named tables, `INHERITS` hierarchy, TEMP
//! tables, and historical views.
//!
//! Mirrors the paper's Postgres layout (§5.2/§5.3): one table per node and
//! edge class created with `INHERITS`, so that selecting from `VM` sees all
//! `VMWare`/`OnMetal` rows; plus, per class, a `__history` companion (the
//! `temporal_tables` pattern) whose union with the current table is the
//! `__historical` view.

use std::collections::HashMap;

use crate::error::{RelError, Result};
use crate::table::{ColDef, Table};

/// The relational store.
#[derive(Debug, Default)]
pub struct RelDb {
    tables: HashMap<String, Table>,
    /// child table → parent table (INHERITS).
    inherits: HashMap<String, String>,
    /// parent table → children (derived from `inherits`).
    children: HashMap<String, Vec<String>>,
    /// Counter for generated TEMP table names.
    temp_counter: u32,
    /// Names of TEMP tables (dropped by [`RelDb::drop_temps`]).
    temps: Vec<String>,
}

impl RelDb {
    pub fn new() -> RelDb {
        RelDb::default()
    }

    /// Create a permanent table, optionally inheriting from a parent.
    pub fn create_table(&mut self, table: Table, inherits: Option<&str>) -> Result<()> {
        if self.tables.contains_key(&table.name) {
            return Err(RelError::DuplicateTable(table.name.clone()));
        }
        if let Some(p) = inherits {
            if !self.tables.contains_key(p) {
                return Err(RelError::UnknownTable(p.to_string()));
            }
            self.inherits.insert(table.name.clone(), p.to_string());
            self.children.entry(p.to_string()).or_default().push(table.name.clone());
        }
        self.tables.insert(table.name.clone(), table);
        Ok(())
    }

    /// Create an anonymous TEMP table and return its generated name
    /// (`tmp_extend_node_1`, … in the paper's examples — the caller provides
    /// the stem).
    pub fn create_temp(&mut self, stem: &str, cols: Vec<ColDef>) -> String {
        self.temp_counter += 1;
        let name = format!("{stem}_{}", self.temp_counter);
        self.tables.insert(name.clone(), Table::new(name.clone(), cols));
        self.temps.push(name.clone());
        name
    }

    /// Drop all TEMP tables (end of query).
    pub fn drop_temps(&mut self) {
        for t in self.temps.drain(..) {
            self.tables.remove(&t);
        }
        self.temp_counter = 0;
    }

    pub fn table(&self, name: &str) -> Result<&Table> {
        self.tables.get(name).ok_or_else(|| RelError::UnknownTable(name.to_string()))
    }

    pub fn table_mut(&mut self, name: &str) -> Result<&mut Table> {
        self.tables.get_mut(name).ok_or_else(|| RelError::UnknownTable(name.to_string()))
    }

    pub fn has_table(&self, name: &str) -> bool {
        self.tables.contains_key(name)
    }

    pub fn table_names(&self) -> Vec<&str> {
        self.tables.keys().map(|s| s.as_str()).collect()
    }

    /// The inheritance subtree of a table: itself plus all transitive
    /// children — what a Postgres `SELECT FROM parent` actually reads.
    pub fn subtree(&self, name: &str) -> Vec<String> {
        let mut out = Vec::new();
        let mut stack = vec![name.to_string()];
        while let Some(t) = stack.pop() {
            if let Some(ch) = self.children.get(&t) {
                stack.extend(ch.iter().cloned());
            }
            out.push(t);
        }
        out
    }

    /// Parent of a table in the INHERITS hierarchy.
    pub fn parent(&self, name: &str) -> Option<&str> {
        self.inherits.get(name).map(|s| s.as_str())
    }

    /// Total row count over a subtree (statistics for anchor costing).
    pub fn subtree_rows(&self, name: &str) -> usize {
        self.subtree(name).iter().filter_map(|t| self.tables.get(t)).map(|t| t.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::table::ColType;
    use nepal_schema::Value;

    fn cols() -> Vec<ColDef> {
        vec![ColDef::new("id_", ColType::BigInt)]
    }

    #[test]
    fn inherits_subtree_resolution() {
        let mut db = RelDb::new();
        db.create_table(Table::new("node", cols()), None).unwrap();
        db.create_table(Table::new("vm", cols()), Some("node")).unwrap();
        db.create_table(Table::new("vmware", cols()), Some("vm")).unwrap();
        db.create_table(Table::new("host", cols()), Some("node")).unwrap();
        let mut sub = db.subtree("vm");
        sub.sort();
        assert_eq!(sub, vec!["vm", "vmware"]);
        assert_eq!(db.subtree("node").len(), 4);
        assert_eq!(db.parent("vmware"), Some("vm"));
    }

    #[test]
    fn subtree_rows_counts_children() {
        let mut db = RelDb::new();
        db.create_table(Table::new("vm", cols()), None).unwrap();
        db.create_table(Table::new("vmware", cols()), Some("vm")).unwrap();
        db.table_mut("vmware").unwrap().insert(vec![Value::Int(1)]).unwrap();
        db.table_mut("vm").unwrap().insert(vec![Value::Int(2)]).unwrap();
        assert_eq!(db.subtree_rows("vm"), 2);
    }

    #[test]
    fn temp_tables_are_dropped() {
        let mut db = RelDb::new();
        let t1 = db.create_temp("tmp_extend_node", cols());
        let t2 = db.create_temp("tmp_extend_node", cols());
        assert_eq!(t1, "tmp_extend_node_1");
        assert_eq!(t2, "tmp_extend_node_2");
        assert!(db.has_table(&t1));
        db.drop_temps();
        assert!(!db.has_table(&t1));
        assert!(!db.has_table(&t2));
    }

    #[test]
    fn duplicate_and_missing_tables_error() {
        let mut db = RelDb::new();
        db.create_table(Table::new("x", cols()), None).unwrap();
        assert!(matches!(db.create_table(Table::new("x", cols()), None), Err(RelError::DuplicateTable(_))));
        assert!(matches!(db.create_table(Table::new("y", cols()), Some("nope")), Err(RelError::UnknownTable(_))));
        assert!(matches!(db.table("zzz"), Err(RelError::UnknownTable(_))));
    }
}
