//! Loading a temporal graph into the relational layout.
//!
//! One table per node/edge class (including the `node` and `edge` roots),
//! created with `INHERITS` so that scanning a concept scans its whole
//! subtree; per class a `__history` companion holding closed versions (the
//! `temporal_tables` pattern of §5.3); and a `uids` table asserting global
//! uid uniqueness ("as well as a table to ensure that unique identifiers
//! are indeed unique", §5.2).

use nepal_graph::{TemporalGraph, FOREVER};
use nepal_schema::{ClassId, ClassKind, Schema, Value, EDGE, NODE};

use crate::db::RelDb;
use crate::error::Result;
use crate::table::{ColDef, ColType, Table};

/// Relational name of a class table.
pub fn table_name(schema: &Schema, class: ClassId) -> String {
    schema.class(class).name.to_lowercase()
}

/// History companion of a class table.
pub fn history_name(table: &str) -> String {
    format!("{table}__history")
}

fn col_type(ft: &nepal_schema::FieldType) -> ColType {
    use nepal_schema::FieldType as F;
    match ft {
        F::Bool => ColType::Bool,
        F::Int => ColType::BigInt,
        F::Float => ColType::Double,
        F::Str => ColType::Text,
        F::Ts => ColType::Timestamp,
        F::Ip => ColType::Text,
        _ => ColType::Jsonb,
    }
}

fn class_cols(schema: &Schema, class: ClassId) -> Vec<ColDef> {
    let mut cols = vec![ColDef::new("id_", ColType::BigInt)];
    if schema.kind(class) == ClassKind::Edge {
        cols.push(ColDef::new("source_id_", ColType::BigInt));
        cols.push(ColDef::new("target_id_", ColType::BigInt));
    }
    for f in schema.all_fields(class) {
        cols.push(ColDef::new(f.name.clone(), col_type(&f.ty)));
    }
    cols.push(ColDef::new("sys_from", ColType::Timestamp));
    cols.push(ColDef::new("sys_to", ColType::Timestamp));
    cols
}

/// Number of leading non-field columns in a class table.
pub fn field_offset(is_node: bool) -> usize {
    if is_node {
        1
    } else {
        3
    }
}

/// Create the full relational schema (DDL phase) for a Nepal schema.
/// Returns the DDL statements that an actual Postgres deployment would run.
pub fn create_schema(db: &mut RelDb, schema: &Schema) -> Result<Vec<String>> {
    let mut ddl = Vec::new();
    let mut uids = Table::new("uids", vec![ColDef::new("id_", ColType::BigInt)]);
    uids.cols.reserve(0);
    ddl.push(uids.ddl(None));
    db.create_table(uids, None)?;
    // Classes are registered parents-first in the schema, so iterating in
    // id order creates parents before children.
    for kind_root in [NODE, EDGE] {
        for class in schema.descendants(kind_root) {
            let name = table_name(schema, class);
            let parent =
                schema.class(class).parent.filter(|p| *p != nepal_schema::ENTITY).map(|p| table_name(schema, p));
            let t = Table::new(name.clone(), class_cols(schema, class));
            ddl.push(t.ddl(parent.as_deref()));
            db.create_table(t, parent.as_deref())?;
            let h = Table::new(history_name(&name), class_cols(schema, class));
            ddl.push(h.ddl(None));
            db.create_table(h, None)?;
        }
    }
    Ok(ddl)
}

/// Load every version of every entity from the graph: open versions into
/// the class table, closed versions into its `__history` companion.
pub fn load_graph(db: &mut RelDb, g: &TemporalGraph) -> Result<()> {
    let schema = g.schema().clone();
    for kind_root in [NODE, EDGE] {
        let is_node = kind_root == NODE;
        for class in schema.descendants(kind_root) {
            let name = table_name(&schema, class);
            let hist = history_name(&name);
            for &uid in g.extent_exact(class) {
                db.table_mut("uids")?.insert(vec![Value::Int(uid.0 as i64)])?;
                let endpoints = if is_node {
                    None
                } else {
                    let e = g.edge(uid).expect("edge extent");
                    Some((e.src, e.dst))
                };
                for (i, v) in g.versions(uid).iter().enumerate() {
                    let mut row = vec![Value::Int(uid.0 as i64)];
                    if let Some((s, d)) = endpoints {
                        row.push(Value::Int(s.0 as i64));
                        row.push(Value::Int(d.0 as i64));
                    }
                    row.extend(g.fields_of(uid, i).iter().cloned());
                    row.push(Value::Ts(v.span.from));
                    row.push(Value::Ts(v.span.to));
                    let target = if v.span.to == FOREVER { &name } else { &hist };
                    db.table_mut(target)?.insert(row)?;
                }
            }
        }
    }
    Ok(())
}

/// Convenience: create the schema and load the graph into a fresh [`RelDb`].
pub fn db_from_graph(g: &TemporalGraph) -> Result<RelDb> {
    let mut db = RelDb::new();
    create_schema(&mut db, g.schema())?;
    load_graph(&mut db, g)?;
    Ok(db)
}

#[cfg(test)]
mod tests {
    use super::*;
    use nepal_schema::dsl::parse_schema;
    use std::sync::Arc;

    fn graph() -> TemporalGraph {
        let s = Arc::new(
            parse_schema(
                r#"
                node VM { vm_id: int unique, status: str }
                node VMWare : VM { }
                node Host { host_id: int unique }
                edge HostedOn { }
                allow HostedOn (VM -> Host)
                "#,
            )
            .unwrap(),
        );
        let mut g = TemporalGraph::new(s.clone());
        let c = |n: &str| s.class_by_name(n).unwrap();
        let vm = g.insert_node(c("VMWare"), vec![Value::Int(1), Value::Str("Green".into())], 100).unwrap();
        let h = g.insert_node(c("Host"), vec![Value::Int(7)], 100).unwrap();
        g.insert_edge(c("HostedOn"), vm, h, vec![], 100).unwrap();
        g.update(vm, &[(1, Value::Str("Red".into()))], 200).unwrap();
        g
    }

    #[test]
    fn ddl_uses_inherits_like_the_paper() {
        let g = graph();
        let mut db = RelDb::new();
        let ddl = create_schema(&mut db, g.schema()).unwrap();
        let vmware = ddl.iter().find(|d| d.starts_with("CREATE TABLE vmware")).unwrap();
        assert!(vmware.contains("INHERITS(vm)"), "{vmware}");
        let vm = ddl.iter().find(|d| d.starts_with("CREATE TABLE vm(")).unwrap();
        assert!(vm.contains("INHERITS(node)"), "{vm}");
    }

    #[test]
    fn subtree_select_sees_subclass_rows() {
        let g = graph();
        let db = db_from_graph(&g).unwrap();
        // Paper: "Every VMWare node is also a VM node, and also a Node node."
        assert_eq!(db.subtree_rows("vmware"), 1);
        assert_eq!(db.subtree_rows("vm"), 1);
        assert!(db.subtree_rows("node") >= 2);
        // The closed Green version went to history.
        assert_eq!(db.table("vmware__history").unwrap().len(), 1);
        assert_eq!(db.table("vmware").unwrap().len(), 1);
    }

    #[test]
    fn edge_rows_carry_endpoints() {
        let g = graph();
        let db = db_from_graph(&g).unwrap();
        let t = db.table("hostedon").unwrap();
        assert_eq!(t.len(), 1);
        let row = &t.rows[0];
        let src = t.col_idx("source_id_").unwrap();
        let tgt = t.col_idx("target_id_").unwrap();
        assert_eq!(row[src], Value::Int(0));
        assert_eq!(row[tgt], Value::Int(1));
    }

    #[test]
    fn uids_table_has_every_entity() {
        let g = graph();
        let db = db_from_graph(&g).unwrap();
        assert_eq!(db.table("uids").unwrap().len(), g.num_entities());
    }
}
