//! In-memory relational tables.
//!
//! A deliberately small but real relational substrate: typed columns, row
//! storage, predicate scans, and hash indexes for the bulk equi-joins that
//! implement the paper's `Extend` operators (§5.2, "implemented using bulk
//! join operators, using techniques similar to … Fan, Raj, and Patel").

use std::collections::HashMap;

use nepal_schema::Value;

use crate::error::{RelError, Result};

/// Declared column type (used for display/DDL generation; the engine is
/// dynamically typed at the cell level like the rest of Nepal).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColType {
    BigInt,
    Text,
    Bool,
    Double,
    Timestamp,
    /// Postgres-style array column (e.g. `uid_list bigint[]`).
    Array(Box<ColType>),
    /// Opaque composite payload (structured data fields).
    Jsonb,
}

impl std::fmt::Display for ColType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ColType::BigInt => write!(f, "bigint"),
            ColType::Text => write!(f, "text"),
            ColType::Bool => write!(f, "boolean"),
            ColType::Double => write!(f, "double precision"),
            ColType::Timestamp => write!(f, "timestamptz"),
            ColType::Array(t) => write!(f, "{t}[]"),
            ColType::Jsonb => write!(f, "jsonb"),
        }
    }
}

/// A column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColDef {
    pub name: String,
    pub ty: ColType,
}

impl ColDef {
    pub fn new(name: impl Into<String>, ty: ColType) -> ColDef {
        ColDef { name: name.into(), ty }
    }
}

/// An in-memory table.
#[derive(Debug, Clone)]
pub struct Table {
    pub name: String,
    pub cols: Vec<ColDef>,
    pub rows: Vec<Vec<Value>>,
    /// Lazily built hash indexes: column index → value → row ids.
    indexes: HashMap<usize, HashMap<Value, Vec<u32>>>,
}

impl Table {
    pub fn new(name: impl Into<String>, cols: Vec<ColDef>) -> Table {
        Table { name: name.into(), cols, rows: Vec::new(), indexes: HashMap::new() }
    }

    pub fn col_idx(&self, name: &str) -> Result<usize> {
        self.cols
            .iter()
            .position(|c| c.name == name)
            .ok_or_else(|| RelError::UnknownColumn { table: self.name.clone(), column: name.to_string() })
    }

    pub fn insert(&mut self, row: Vec<Value>) -> Result<()> {
        if row.len() != self.cols.len() {
            return Err(RelError::Arity { table: self.name.clone(), expected: self.cols.len(), got: row.len() });
        }
        // Keep any existing index in sync.
        let rid = self.rows.len() as u32;
        for (col, idx) in self.indexes.iter_mut() {
            idx.entry(row[*col].clone()).or_default().push(rid);
        }
        self.rows.push(row);
        Ok(())
    }

    pub fn len(&self) -> usize {
        self.rows.len()
    }

    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Build (or reuse) a hash index on a column and return matching rows.
    pub fn probe(&mut self, col: usize, key: &Value) -> Vec<u32> {
        if !self.indexes.contains_key(&col) {
            let mut idx: HashMap<Value, Vec<u32>> = HashMap::new();
            for (rid, row) in self.rows.iter().enumerate() {
                idx.entry(row[col].clone()).or_default().push(rid as u32);
            }
            self.indexes.insert(col, idx);
        }
        self.indexes[&col].get(key).cloned().unwrap_or_default()
    }

    /// Sequential scan with a row predicate.
    pub fn scan<'a>(&'a self, pred: impl Fn(&[Value]) -> bool + 'a) -> impl Iterator<Item = &'a Vec<Value>> + 'a {
        self.rows.iter().filter(move |r| pred(r))
    }

    /// `CREATE TABLE` DDL for this table (Postgres dialect).
    pub fn ddl(&self, inherits: Option<&str>) -> String {
        let cols: Vec<String> = self.cols.iter().map(|c| format!("{} {}", c.name, c.ty)).collect();
        match inherits {
            Some(p) => format!("CREATE TABLE {}({}) INHERITS({});", self.name, cols.join(", "), p),
            None => format!("CREATE TABLE {}({});", self.name, cols.join(", ")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t() -> Table {
        let mut t = Table::new("vm", vec![ColDef::new("id_", ColType::BigInt), ColDef::new("status", ColType::Text)]);
        t.insert(vec![Value::Int(1), Value::Str("Green".into())]).unwrap();
        t.insert(vec![Value::Int(2), Value::Str("Red".into())]).unwrap();
        t.insert(vec![Value::Int(3), Value::Str("Green".into())]).unwrap();
        t
    }

    #[test]
    fn probe_uses_hash_index() {
        let mut t = t();
        assert_eq!(t.probe(1, &Value::Str("Green".into())).len(), 2);
        assert_eq!(t.probe(0, &Value::Int(2)), vec![1]);
        assert!(t.probe(0, &Value::Int(99)).is_empty());
    }

    #[test]
    fn index_stays_in_sync_with_inserts() {
        let mut t = t();
        let _ = t.probe(1, &Value::Str("Green".into()));
        t.insert(vec![Value::Int(4), Value::Str("Green".into())]).unwrap();
        assert_eq!(t.probe(1, &Value::Str("Green".into())).len(), 3);
    }

    #[test]
    fn arity_checked() {
        let mut t = t();
        assert!(matches!(t.insert(vec![Value::Int(9)]), Err(RelError::Arity { .. })));
    }

    #[test]
    fn ddl_renders_inherits() {
        let t = Table::new("vmware", vec![ColDef::new("id_", ColType::BigInt)]);
        assert_eq!(t.ddl(Some("vm")), "CREATE TABLE vmware(id_ bigint) INHERITS(vm);");
        let arr = Table::new("tmp", vec![ColDef::new("uid_list", ColType::Array(Box::new(ColType::BigInt)))]);
        assert!(arr.ddl(None).contains("uid_list bigint[]"));
    }
}
