//! Errors for the relational substrate.

use std::fmt;

/// Errors raised by the relational engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelError {
    /// Table does not exist.
    UnknownTable(String),
    /// Column does not exist on the table.
    UnknownColumn { table: String, column: String },
    /// Row arity does not match the table's column count.
    Arity { table: String, expected: usize, got: usize },
    /// A table with this name already exists.
    DuplicateTable(String),
    /// Evaluation abandoned at a cancellation checkpoint: deadline passed.
    DeadlineExceeded,
    /// Evaluation abandoned at a cancellation checkpoint: explicit cancel.
    Cancelled,
}

impl From<nepal_rpe::CancelCause> for RelError {
    fn from(c: nepal_rpe::CancelCause) -> RelError {
        match c {
            nepal_rpe::CancelCause::Deadline => RelError::DeadlineExceeded,
            nepal_rpe::CancelCause::Explicit => RelError::Cancelled,
        }
    }
}

impl fmt::Display for RelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RelError::UnknownTable(t) => write!(f, "unknown table `{t}`"),
            RelError::UnknownColumn { table, column } => {
                write!(f, "table `{table}` has no column `{column}`")
            }
            RelError::Arity { table, expected, got } => {
                write!(f, "row arity mismatch on `{table}`: expected {expected}, got {got}")
            }
            RelError::DuplicateTable(t) => write!(f, "table `{t}` already exists"),
            RelError::DeadlineExceeded => write!(f, "query deadline exceeded during relational evaluation"),
            RelError::Cancelled => write!(f, "query cancelled during relational evaluation"),
        }
    }
}

impl std::error::Error for RelError {}

/// Result alias for relational operations.
pub type Result<T> = std::result::Result<T, RelError>;
