//! Generator for the legacy network topology (§6, second data set):
//! "a legacy network topology used for service path applications with
//! about 1.6 million nodes and 7.1 million edges", supplied "as a
//! collection of nodes and edges with type_indicators".
//!
//! Structure (reverse-engineered from the queries the paper runs on it):
//!
//! - Four vertical levels. Top-down / bottom-up queries traverse three
//!   vertical hops (length-3 queries).
//! - Horizontal *service-path* edges at level 1, forming converging chains
//!   (length-4 service-path queries; the reverse direction fans out
//!   massively — the paper reports 391,000 paths).
//! - A small set of level-3 **hub** nodes with very large numbers of
//!   incoming noise edges "almost all of which are irrelevant to the
//!   query" — the cause of the slow bottom-up samples, and the payload of
//!   the Table-3 class-partitioning experiment.
//!
//! `edge_subclasses = 1` loads everything as a single `LegacyEdge` class
//! (the "as provided" load); `edge_subclasses = 66` creates one subclass
//! per `type_indicator` value, as the paper's §6 re-load does.

use std::sync::Arc;

use nepal_graph::{TemporalGraph, Uid};
use nepal_schema::{FieldDef, FieldType};
use nepal_schema::{Schema, SchemaBuilder, Ts, Value, EDGE, NODE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Number of distinct `type_indicator` values (one per §6 edge subclass).
pub const TYPE_INDICATORS: usize = 66;

/// Type indicators 0..=2 are the vertical hop types, 3 is the service-path
/// type; the rest are noise families.
pub const TI_VERT: [usize; 3] = [0, 1, 2];
pub const TI_SVC: usize = 3;

/// Generator parameters. The default is a 1/10-scale graph; `full_scale`
/// reproduces the paper's 1.6M / 7.1M.
#[derive(Debug, Clone)]
pub struct LegacyParams {
    pub nodes: usize,
    pub edges: usize,
    /// 1 = single `LegacyEdge` class; 66 = one subclass per type indicator.
    pub edge_subclasses: usize,
    /// Fraction of level-3 nodes that become noise hubs.
    pub hub_fraction: f64,
    pub seed: u64,
    pub start_ts: Ts,
}

impl Default for LegacyParams {
    fn default() -> Self {
        LegacyParams {
            nodes: 160_000,
            edges: 710_000,
            edge_subclasses: 1,
            hub_fraction: 0.002,
            seed: 7,
            start_ts: 1_486_800_000_000_000,
        }
    }
}

impl LegacyParams {
    /// The paper's full scale (1.6M nodes / 7.1M edges). Needs a few GB of
    /// memory; the benchmark harness gates it behind `--full`.
    pub fn full_scale() -> Self {
        LegacyParams { nodes: 1_600_000, edges: 7_100_000, ..Default::default() }
    }
}

/// The generated legacy topology.
pub struct LegacyTopology {
    pub graph: TemporalGraph,
    /// Nodes per vertical level (0 = top).
    pub levels: [Vec<Uid>; 4],
    /// Level-3 hub nodes with massive irrelevant in-degree.
    pub hubs: Vec<Uid>,
    /// Level-1 nodes that start service-path chains.
    pub svc_sources: Vec<Uid>,
    /// High in-degree service aggregation nodes (reverse-path explosion).
    pub svc_sinks: Vec<Uid>,
    pub params: LegacyParams,
}

/// Build the legacy schema with the requested number of edge subclasses.
pub fn legacy_schema(edge_subclasses: usize) -> Schema {
    let mut b = SchemaBuilder::new();
    b.node_class(
        "LegacyNode",
        NODE,
        vec![FieldDef::new("node_id", FieldType::Int).unique(), FieldDef::new("type_indicator", FieldType::Str)],
    )
    .unwrap();
    let base = b.edge_class("LegacyEdge", EDGE, vec![FieldDef::new("type_indicator", FieldType::Str)]).unwrap();
    if edge_subclasses > 1 {
        for k in 0..edge_subclasses {
            b.edge_class(format!("T{k}"), base, vec![]).unwrap();
        }
    }
    b.finish()
}

/// Name of the edge class for a type indicator under the given mode.
pub fn edge_class_for(edge_subclasses: usize, ti: usize) -> String {
    if edge_subclasses > 1 {
        format!("T{ti}")
    } else {
        "LegacyEdge".to_string()
    }
}

/// Generate the legacy topology.
pub fn generate_legacy(params: LegacyParams) -> LegacyTopology {
    let schema: Arc<Schema> = Arc::new(legacy_schema(params.edge_subclasses));
    let mut g = TemporalGraph::new(schema.clone());
    let mut rng = StdRng::seed_from_u64(params.seed);
    let ts = params.start_ts;
    let node_cls = schema.class_by_name("LegacyNode").unwrap();
    let edge_cls: Vec<_> = (0..TYPE_INDICATORS)
        .map(|ti| schema.class_by_name(&edge_class_for(params.edge_subclasses, ti)).unwrap())
        .collect();

    // Level sizes shrink downward (many service endpoints converge onto
    // shared equipment): 55% / 25% / 13% / 7%. With 3–4 parents per child
    // this yields the paper's asymmetry — a handful of paths top-down but
    // ~70 bottom-up (Table 2: 4.4 vs 73.18).
    let n = params.nodes;
    let sizes = [n * 55 / 100, n * 25 / 100, n * 13 / 100, n - n * 55 / 100 - n * 25 / 100 - n * 13 / 100];
    let mut levels: [Vec<Uid>; 4] = [Vec::new(), Vec::new(), Vec::new(), Vec::new()];
    let mut next_id = 0i64;
    for (li, size) in sizes.iter().enumerate() {
        levels[li] = (0..*size)
            .map(|_| {
                next_id += 1;
                g.insert_node(node_cls, vec![Value::Int(next_id), Value::Str(format!("level{li}"))], ts)
                    .expect("legacy node")
            })
            .collect();
    }

    let mut edges_left = params.edges as i64;
    let add_edge = |g: &mut TemporalGraph, ti: usize, a: Uid, b: Uid, left: &mut i64| {
        if *left <= 0 || a == b {
            return;
        }
        let fields = vec![Value::Str(format!("ti{ti}"))];
        if g.insert_edge(edge_cls[ti], a, b, fields, ts).is_ok() {
            *left -= 1;
        }
    };

    // --- vertical structure: each node at level k+1 gets 1–2 parents ---
    for k in 0..3 {
        let ti = TI_VERT[k];
        let (upper, lower) = (levels[k].clone(), levels[k + 1].clone());
        for &child in &lower {
            let n_parents = 3 + (rng.gen_range(0..2) == 0) as usize;
            for _ in 0..n_parents {
                let parent = upper[rng.gen_range(0..upper.len())];
                add_edge(&mut g, ti, parent, child, &mut edges_left);
            }
        }
    }

    // --- horizontal service paths at level 1: converging chains ---
    // Targets drawn with strong preference for low indexes → a small set
    // of aggregation sinks with huge in-degree (reverse-path explosion).
    let l1 = levels[1].clone();
    let svc_budget = (params.edges as i64 / 4).min(edges_left);
    let mut svc_spent = 0i64;
    let n_sinks = (l1.len() / 100).max(4);
    for (i, &src) in l1.iter().enumerate() {
        if svc_spent >= svc_budget {
            break;
        }
        let fanout = 1 + (i % 2);
        for _ in 0..fanout {
            // Zipf-ish: with p=0.5 aim at a sink, else a random node ahead.
            let dst = if rng.gen_bool(0.5) { l1[rng.gen_range(0..n_sinks)] } else { l1[rng.gen_range(0..l1.len())] };
            let before = edges_left;
            add_edge(&mut g, TI_SVC, src, dst, &mut edges_left);
            svc_spent += before - edges_left;
        }
    }

    // --- hub noise: the remaining edge budget piles onto a few hubs ---
    let l3 = &levels[3];
    let n_hubs = ((l3.len() as f64 * params.hub_fraction) as usize).max(1);
    let hubs: Vec<Uid> = l3[..n_hubs].to_vec();
    let all_nodes: Vec<Uid> = levels.iter().flatten().copied().collect();
    while edges_left > 0 {
        let hub = hubs[rng.gen_range(0..hubs.len())];
        let src = all_nodes[rng.gen_range(0..all_nodes.len())];
        let ti = 4 + rng.gen_range(0..(TYPE_INDICATORS - 4));
        add_edge(&mut g, ti, src, hub, &mut edges_left);
    }

    let svc_sinks = l1[..n_sinks].to_vec();
    LegacyTopology { graph: g, svc_sources: l1, svc_sinks, hubs, levels, params }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> LegacyParams {
        LegacyParams { nodes: 4000, edges: 18000, ..Default::default() }
    }

    #[test]
    fn respects_node_and_edge_budgets() {
        let topo = generate_legacy(small());
        let g = &topo.graph;
        assert_eq!(g.alive_count(NODE) as usize, 4000);
        let edges = g.alive_count(EDGE) as usize;
        assert!((17000..=18000).contains(&edges), "edges = {edges}");
    }

    #[test]
    fn sixty_six_subclass_mode_partitions_edges() {
        let topo = generate_legacy(LegacyParams { edge_subclasses: 66, ..small() });
        let s = topo.graph.schema();
        assert!(s.class_by_name("T65").is_some());
        let base = s.class_by_name("LegacyEdge").unwrap();
        // All typed edges still count under the base concept.
        assert_eq!(topo.graph.alive_count(base), topo.graph.alive_count(EDGE));
        // Vertical edges are a small, separately scannable extent.
        let t0 = s.class_by_name("T0").unwrap();
        assert!(topo.graph.alive_count(t0) > 0);
        assert!(topo.graph.alive_count(t0) < topo.graph.alive_count(base) / 3);
    }

    #[test]
    fn hubs_have_pathological_in_degree() {
        let topo = generate_legacy(small());
        let g = &topo.graph;
        let hub_deg: usize = topo.hubs.iter().map(|h| g.in_adj(*h).len()).sum::<usize>() / topo.hubs.len();
        let normal = topo.levels[3][topo.hubs.len() + 1];
        let normal_deg = g.in_adj(normal).len();
        assert!(hub_deg > normal_deg * 20, "hub avg in-degree {hub_deg} vs normal {normal_deg}");
    }

    #[test]
    fn vertical_paths_are_three_hops() {
        use nepal_graph::{GraphView, TimeFilter};
        use nepal_rpe::{evaluate, parse_rpe, plan_rpe, EvalOptions, GraphEstimator, Seeds};
        let topo = generate_legacy(small());
        let g = &topo.graph;
        // Top-down: anchored at a specific top node, three typed hops.
        let top = topo.levels[0][0];
        let top_id = match &g.current_version(top).unwrap().fields()[0] {
            Value::Int(i) => *i,
            _ => unreachable!(),
        };
        let rpe = format!(
            "LegacyNode(node_id={top_id})->LegacyEdge(type_indicator='ti0')->LegacyEdge(type_indicator='ti1')->LegacyEdge(type_indicator='ti2')"
        );
        let plan = plan_rpe(g.schema(), &parse_rpe(&rpe).unwrap(), &GraphEstimator { graph: g }).unwrap();
        let view = GraphView::new(g, TimeFilter::Current);
        let paths = evaluate(&view, &plan, Seeds::Anchor, &EvalOptions::default());
        for p in &paths {
            assert_eq!(p.len_edges(), 3);
            assert!(topo.levels[3].contains(&p.target()));
        }
    }
}
