//! # nepal-workload — topology and history generators for the evaluation
//!
//! Deterministic substitutes for the paper's proprietary AT&T data sets
//! (§6), shaped to the statistics the paper reports:
//!
//! - [`onap::onap_schema`] — the 54-node-class / 12-edge-class ONAP-style
//!   schema following Fig. 2's layered model.
//! - [`virtualized::generate_virtualized`] — the virtualized network
//!   service graph (~2,000 nodes / ~11,000 edges, 33 distinct VNFs).
//! - [`legacy::generate_legacy`] — the legacy service-path topology
//!   (1.6M / 7.1M at full scale) with `type_indicator`s, optional 66-way
//!   edge-class partitioning, high-fanout service sinks, and noise hubs.
//! - [`churn::apply_churn`] — multi-day maintenance churn calibrated to
//!   the paper's 6% / 16% history-growth figures.

pub mod churn;
pub mod feed;
pub mod legacy;
pub mod onap;
pub mod scale;
pub mod virtualized;

pub use churn::{alive_edges, apply_churn, updatable_entities, ChurnParams, ChurnStats};
pub use feed::InventoryFeed;
pub use legacy::{
    edge_class_for, generate_legacy, legacy_schema, LegacyParams, LegacyTopology, TI_SVC, TI_VERT, TYPE_INDICATORS,
};
pub use onap::{onap_schema, ONAP_SCHEMA};
pub use scale::{churn_tier, generate_tier, generate_tier_churned, SizeTier, TierChurnStats};
pub use virtualized::{generate_virtualized, VirtParams, VirtTopology};
