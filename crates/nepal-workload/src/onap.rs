//! The ONAP-style schema used by the evaluation (§6): "The schema has 12
//! edge classes and 54 node classes."
//!
//! The hierarchy follows the layered network model of Fig. 2 — Service and
//! Logical design layers on top, Virtualization and Physical layers below —
//! with the subclass variety the paper describes (many kinds of VNFs,
//! VFCs, containers, hosts, and switches).

use nepal_schema::dsl::parse_schema;
use nepal_schema::Schema;

/// Schema text for the virtualized-service model. Kept as a constant so
/// examples and docs can show it verbatim.
pub const ONAP_SCHEMA: &str = r#"
# ---- composite data types -------------------------------------------
data routingTableEntry { address: ip, mask: int, interface: str }
data portSpec { port_name: str, speed_gbps: int }

# ---- Service layer ---------------------------------------------------
node Service            { service_id: int unique, customer: str }
node VpnService : Service { }
node MobilityService : Service { }
node DnsService : Service { }

# ---- Logical layer: VNFs and their components ------------------------
node VNF                { vnf_id: int unique, vnf_name: str optional, status: str optional }
node DnsVNF : VNF       { zone: str optional }
node FirewallVNF : VNF  { ruleset: str optional }
node RouterVNF : VNF    { }
node LoadBalancerVNF : VNF { }
node EpcVNF : VNF       { }
node GatewayVNF : VNF   { }
node NatVNF : VNF       { }
node IdsVNF : VNF       { }
node ProxyVNF : VNF     { }
node CdnVNF : VNF       { }

node VFC                { vfc_id: int unique, role: str optional }
node ProxyVFC : VFC     { }
node WebServerVFC : VFC { }
node DbVFC : VFC        { }
node CacheVFC : VFC     { }
node WorkerVFC : VFC    { }
node ControlVFC : VFC   { }
node LoggerVFC : VFC    { }
node VduVFC : VFC       { }

# ---- Virtualization layer --------------------------------------------
node Container          { status: str optional, image: str optional }
node VM : Container     { vm_id: int unique }
node VMWare : VM        { }
node OnMetal : VM       { }
node KvmVM : VM         { }
node Docker : Container { docker_id: int unique }

node VirtualNetwork     { vnet_id: int unique, cidr: str optional }
node TenantNetwork : VirtualNetwork { }
node ProviderNetwork : VirtualNetwork { }
node VirtualRouter      { vrouter_id: int unique }
node VirtualPort        { vport_id: int unique, spec: portSpec optional }

# ---- Physical layer ---------------------------------------------------
node Host               { host_id: int unique, rack: str optional, routing: list<routingTableEntry> optional }
node ComputeHost : Host { }
node StorageHost : Host { }
node ControlHost : Host { }
node Switch             { switch_id: int unique }
node TorSwitch : Switch { }
node SpineSwitch : Switch { }
node LeafSwitch : Switch { }
node AccessSwitch : Switch { }
node Router             { router_id: int unique }
node CoreRouter : Router { }
node EdgeRouter : Router { }
node PhysicalPort       { pport_id: int unique }
node Chassis            { chassis_id: int unique }
node LineCard           { card_id: int unique }
node PowerUnit          { power_id: int unique }
node Datacenter         { dc_id: int unique, region: str optional }
node Rack               { rack_id: int unique }
node Pod                { pod_id: int unique }

# ---- Edge classes (12 including the Node/Edge roots' children) --------
edge Vertical           { }
edge ComposedOf : Vertical { }
edge HostedOn : Vertical   { }
edge OnVM : HostedOn       { }
edge OnServer : HostedOn   { }
edge PartOf : Vertical     { }
edge ConnectedTo        { if_a: str optional, if_b: str optional }
edge Connects : ConnectedTo      { }
edge VmNetwork : ConnectedTo     { ip_address: ip optional }
edge NetworkVRouter : ConnectedTo { }
edge ServerSwitch : ConnectedTo  { server_interface: str optional, switch_interface: str optional }
edge SwitchSwitch : ConnectedTo  { }

# ---- allowed topology (Fig. 3 style capability rules) ------------------
allow ComposedOf (Service -> VNF)
allow ComposedOf (VNF -> VFC)
allow OnVM (VFC -> Container)
allow OnServer (Container -> Host)
allow PartOf (Host -> Rack)
allow PartOf (Rack -> Datacenter)
allow VmNetwork (Container -> VirtualNetwork)
allow VmNetwork (VirtualNetwork -> Container)
allow NetworkVRouter (VirtualNetwork -> VirtualRouter)
allow NetworkVRouter (VirtualRouter -> VirtualNetwork)
allow ServerSwitch (Host -> Switch)
allow ServerSwitch (Switch -> Host)
allow SwitchSwitch (Switch -> Switch)
allow Connects (Switch -> Router)
allow Connects (Router -> Switch)
allow Connects (Router -> Router)
"#;

/// Parse the built-in ONAP-style schema.
pub fn onap_schema() -> Schema {
    parse_schema(ONAP_SCHEMA).expect("built-in schema must parse")
}

#[cfg(test)]
mod tests {
    use super::*;
    use nepal_schema::{ClassKind, EDGE, NODE};

    #[test]
    fn has_papers_class_counts() {
        let s = onap_schema();
        // §6: "The schema has 12 edge classes and 54 node classes."
        let nodes = s.descendants(NODE).len() - 1; // exclude the Node root
        let edges = s.descendants(EDGE).len() - 1;
        assert_eq!(nodes, 54, "node classes");
        assert_eq!(edges, 12, "edge classes");
    }

    #[test]
    fn hierarchy_shape() {
        let s = onap_schema();
        let onvm = s.class_by_name("OnVM").unwrap();
        let vertical = s.class_by_name("Vertical").unwrap();
        assert!(s.is_subclass(onvm, vertical));
        assert_eq!(s.kind(onvm), ClassKind::Edge);
        let vmware = s.class_by_name("VMWare").unwrap();
        assert_eq!(s.path_name(vmware), "Node:Container:VM:VMWare");
    }

    #[test]
    fn topology_rules_enforced() {
        let s = onap_schema();
        let onserver = s.class_by_name("OnServer").unwrap();
        let vm = s.class_by_name("VM").unwrap();
        let host = s.class_by_name("ComputeHost").unwrap();
        let vnf = s.class_by_name("DnsVNF").unwrap();
        assert!(s.edge_allowed(onserver, vm, host));
        // "one cannot directly link a VNF to a physical_server".
        assert!(!s.edge_allowed(onserver, vnf, host));
    }
}
