//! Churn generator: simulates inventory maintenance over a multi-day
//! window to build transaction-time history.
//!
//! §6 loads both data sets "into a historical database, with a two-month
//! history"; §6.1 reports the resulting storage overhead: "+6%" for the
//! virtualized service graph and "+16%" for the legacy graph — versus
//! "5,900% for the conventional approach of storing 60 separate graphs".
//! The churn rate here is calibrated so the same ratios emerge.

use nepal_graph::{TemporalGraph, Uid, FOREVER};
use nepal_schema::{Ts, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Churn parameters.
#[derive(Debug, Clone)]
pub struct ChurnParams {
    /// Days of simulated history (the paper: 60).
    pub days: u32,
    /// Fraction of entities touched per day (field updates).
    pub daily_update_fraction: f64,
    /// Fraction of *edges* deleted and replaced per day.
    pub daily_rewire_fraction: f64,
    pub seed: u64,
}

impl ChurnParams {
    /// Calibrated to ≈6% history growth over 60 days (virtualized graph).
    pub fn virtualized_default() -> Self {
        ChurnParams { days: 60, daily_update_fraction: 0.0016, daily_rewire_fraction: 0.0, seed: 11 }
    }

    /// Calibrated to ≈16% history growth over 60 days (legacy graph).
    pub fn legacy_default() -> Self {
        ChurnParams { days: 60, daily_update_fraction: 0.0042, daily_rewire_fraction: 0.0, seed: 13 }
    }
}

/// Outcome of a churn run.
#[derive(Debug, Clone, Copy, Default)]
pub struct ChurnStats {
    pub updates: usize,
    pub rewires: usize,
    /// versions after / versions before − 1 (the §6 "full history is N%
    /// larger" metric).
    pub history_growth: f64,
}

const DAY: Ts = 86_400_000_000;

/// Apply `params.days` days of churn starting the day after `start_ts`.
///
/// Updates rewrite one string field of a random entity ("the changes the
/// network elements' state"); rewires delete an edge and recreate an
/// equivalent one ("the topology of the network").
pub fn apply_churn(
    g: &mut TemporalGraph,
    updatable: &[(Uid, usize)], // (entity, string-field layout index)
    rewirable: &[Uid],          // edges eligible for delete+recreate
    start_ts: Ts,
    params: &ChurnParams,
) -> ChurnStats {
    let mut rng = StdRng::seed_from_u64(params.seed);
    let mut stats = ChurnStats::default();
    let before = g.num_versions() as f64;
    let mut alive_edges: Vec<Uid> = rewirable.to_vec();
    for day in 1..=params.days {
        let ts0 = start_ts + day as Ts * DAY;
        let n_updates = (updatable.len() as f64 * params.daily_update_fraction).round() as usize;
        for k in 0..n_updates {
            let (uid, field) = updatable[rng.gen_range(0..updatable.len())];
            if g.current_version(uid).is_none() {
                continue;
            }
            let ts = ts0 + k as Ts; // strictly increasing within the day
            let new_val = Value::Str(format!("state-d{day}-{k}"));
            if g.update(uid, &[(field, new_val)], ts).is_ok() {
                stats.updates += 1;
            }
        }
        let n_rewires = (alive_edges.len() as f64 * params.daily_rewire_fraction).round() as usize;
        for k in 0..n_rewires {
            let idx = rng.gen_range(0..alive_edges.len());
            let e = alive_edges[idx];
            let Ok(entry) = g.edge(e) else { continue };
            let (class, src, dst) = (entry.class, entry.src, entry.dst);
            let fields = match g.current_version(e) {
                Some(v) => v.fields().to_vec(),
                None => continue,
            };
            let ts = ts0 + 500_000 + k as Ts;
            if g.delete(e, ts).is_ok() {
                if let Ok(new_e) = g.insert_edge(class, src, dst, fields, ts + 1) {
                    alive_edges[idx] = new_e;
                    stats.rewires += 1;
                }
            }
        }
    }
    stats.history_growth = g.num_versions() as f64 / before - 1.0;
    stats
}

/// Collect `(uid, field_idx)` pairs for every currently-asserted entity
/// that has a string field, preferring the given field name.
pub fn updatable_entities(g: &TemporalGraph, field_name: &str) -> Vec<(Uid, usize)> {
    let schema = g.schema().clone();
    let mut out = Vec::new();
    for root in [nepal_schema::NODE, nepal_schema::EDGE] {
        for class in schema.descendants(root) {
            let fields = schema.all_fields(class);
            let idx = fields
                .iter()
                .position(|f| f.name == field_name && f.ty == nepal_schema::FieldType::Str)
                .or_else(|| fields.iter().position(|f| f.ty == nepal_schema::FieldType::Str));
            let Some(idx) = idx else { continue };
            for &uid in g.extent_exact(class) {
                if let Some(v) = g.current_version(uid) {
                    if v.span.to == FOREVER {
                        out.push((uid, idx));
                    }
                }
            }
        }
    }
    out
}

/// All currently-asserted edges.
pub fn alive_edges(g: &TemporalGraph) -> Vec<Uid> {
    let schema = g.schema().clone();
    let mut out = Vec::new();
    for class in schema.descendants(nepal_schema::EDGE) {
        for &uid in g.extent_exact(class) {
            if g.current_version(uid).is_some() {
                out.push(uid);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::virtualized::{generate_virtualized, VirtParams};

    #[test]
    fn virtualized_history_growth_near_six_percent() {
        let mut topo = generate_virtualized(VirtParams::default());
        let updatable = updatable_entities(&topo.graph, "status");
        let stats =
            apply_churn(&mut topo.graph, &updatable, &[], topo.params.start_ts, &ChurnParams::virtualized_default());
        // §6: "The full history is 6% larger than the current snapshot."
        assert!((0.03..=0.10).contains(&stats.history_growth), "growth = {:.3}", stats.history_growth);
        assert!(stats.updates > 0);
    }

    #[test]
    fn rewires_preserve_current_topology_shape() {
        let mut topo = generate_virtualized(VirtParams::default());
        let edges_before = topo.graph.alive_count(nepal_schema::EDGE);
        let rewirable = alive_edges(&topo.graph);
        let stats = apply_churn(
            &mut topo.graph,
            &[],
            &rewirable,
            topo.params.start_ts,
            &ChurnParams { days: 10, daily_update_fraction: 0.0, daily_rewire_fraction: 0.002, seed: 3 },
        );
        assert!(stats.rewires > 0);
        let edges_after = topo.graph.alive_count(nepal_schema::EDGE);
        assert_eq!(edges_before, edges_after, "rewires keep the snapshot edge count");
    }

    #[test]
    fn time_travel_sees_pre_churn_values() {
        let mut topo = generate_virtualized(VirtParams::default());
        let updatable = updatable_entities(&topo.graph, "status");
        let (uid, field) = updatable[0];
        let before_value = topo.graph.current_version(uid).unwrap().fields()[field].clone();
        apply_churn(
            &mut topo.graph,
            &[(uid, field)],
            &[],
            topo.params.start_ts,
            &ChurnParams { days: 5, daily_update_fraction: 1.0, daily_rewire_fraction: 0.0, seed: 1 },
        );
        // The day-0 snapshot still shows the original value.
        let f = topo.graph.fields_at(uid, topo.params.start_ts).unwrap();
        assert_eq!(f[field], before_value);
        // The current value changed.
        assert_ne!(topo.graph.current_version(uid).unwrap().fields()[field], before_value);
    }
}
