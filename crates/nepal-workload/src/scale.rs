//! Size tiers for the virtualized-service generator: the same ONAP-style
//! layered shape as [`generate_virtualized`](crate::generate_virtualized),
//! parameterized from the paper's ~13k-entity evaluation graph up to
//! million-entity scale for the scaling sweep.
//!
//! Each tier also defines a deterministic churn schedule with two phases:
//! a *broad* phase touching a small daily fraction of the whole inventory
//! (the §6 maintenance model), then a *hot* phase hammering a small fixed
//! subset daily so their version chains grow well past the store's
//! keyframe interval — the shape that exercises delta encoding and
//! keyframed materialization.

use nepal_graph::TemporalGraph;
use nepal_schema::Ts;

use crate::churn::{alive_edges, apply_churn, updatable_entities, ChurnParams, ChurnStats};
use crate::virtualized::{generate_virtualized, VirtParams, VirtTopology};

const DAY: Ts = 86_400_000_000;

/// Generator size tier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SizeTier {
    /// A few hundred entities — unit-test scale.
    Toy,
    /// The paper's evaluation scale (~2k nodes / ~11k edges).
    Small,
    /// ~100k entities.
    Medium,
    /// ~1.1M entities — the scaling-sweep headline tier.
    Large,
}

impl SizeTier {
    pub const ALL: [SizeTier; 4] = [SizeTier::Toy, SizeTier::Small, SizeTier::Medium, SizeTier::Large];

    pub fn name(self) -> &'static str {
        match self {
            SizeTier::Toy => "toy",
            SizeTier::Small => "small",
            SizeTier::Medium => "medium",
            SizeTier::Large => "large",
        }
    }

    pub fn from_name(s: &str) -> Option<SizeTier> {
        match s.to_ascii_lowercase().as_str() {
            "toy" => Some(SizeTier::Toy),
            "small" => Some(SizeTier::Small),
            "medium" => Some(SizeTier::Medium),
            "large" => Some(SizeTier::Large),
            _ => None,
        }
    }

    /// Generator parameters for this tier. The service-layer knobs drive
    /// the entity count (one container subtree is ~7 entities); the
    /// physical layer scales with the container population it hosts.
    pub fn params(self, seed: u64) -> VirtParams {
        let base = VirtParams::default();
        match self {
            SizeTier::Toy => VirtParams {
                services: 2,
                vnfs_per_service: 2,
                vfcs_per_vnf: 3,
                containers_per_vfc: 2,
                vnets_per_container: 1,
                hosts: 16,
                tor_switches: 4,
                spine_switches: 2,
                routers: 2,
                vnets: 12,
                vrouters: 4,
                racks: 4,
                datacenters: 1,
                seed,
                ..base
            },
            SizeTier::Small => VirtParams { seed, ..base },
            SizeTier::Medium => VirtParams {
                services: 40,
                vnfs_per_service: 6,
                vfcs_per_vnf: 12,
                containers_per_vfc: 5,
                vnets_per_container: 2,
                hosts: 600,
                tor_switches: 60,
                spine_switches: 12,
                routers: 6,
                vnets: 800,
                vrouters: 100,
                racks: 40,
                datacenters: 3,
                seed,
                ..base
            },
            SizeTier::Large => VirtParams {
                services: 150,
                vnfs_per_service: 10,
                vfcs_per_vnf: 20,
                containers_per_vfc: 5,
                vnets_per_container: 2,
                hosts: 3000,
                tor_switches: 300,
                spine_switches: 24,
                routers: 8,
                vnets: 4000,
                vrouters: 400,
                racks: 150,
                datacenters: 4,
                seed,
                ..base
            },
        }
    }

    /// Broad-phase churn: a small daily fraction of the whole inventory.
    pub fn broad_churn(self, seed: u64) -> ChurnParams {
        let (days, frac) = match self {
            SizeTier::Toy => (5, 0.05),
            SizeTier::Small => (10, 0.01),
            SizeTier::Medium => (15, 0.004),
            SizeTier::Large => (15, 0.002),
        };
        ChurnParams { days, daily_update_fraction: frac, daily_rewire_fraction: 0.0005, seed }
    }

    /// Hot-phase schedule: `(stride, days)` — every `stride`-th updatable
    /// entity is updated once per day for `days` days, growing chains past
    /// the keyframe interval (16) at every tier above toy.
    pub fn hot_churn(self) -> (usize, u32) {
        match self {
            SizeTier::Toy => (4, 20),
            SizeTier::Small => (32, 24),
            SizeTier::Medium => (64, 34),
            SizeTier::Large => (128, 40),
        }
    }
}

/// Outcome of [`generate_tier_churned`].
#[derive(Debug, Clone, Copy, Default)]
pub struct TierChurnStats {
    pub broad: ChurnStats,
    pub hot: ChurnStats,
    /// Entities in the hot set (deep version chains).
    pub hot_entities: usize,
}

/// Generate the tier's topology with no history (current snapshot only).
pub fn generate_tier(tier: SizeTier, seed: u64) -> VirtTopology {
    generate_virtualized(tier.params(seed))
}

/// Generate the tier's topology and run its two churn phases, producing
/// the deep-chained history graph the scaling and storage sweeps measure.
pub fn generate_tier_churned(tier: SizeTier, seed: u64) -> (VirtTopology, TierChurnStats) {
    let mut topo = generate_tier(tier, seed);
    let stats = churn_tier(&mut topo.graph, tier, seed, topo.params.start_ts);
    (topo, stats)
}

/// Run the tier's churn phases against an already-generated graph.
pub fn churn_tier(g: &mut TemporalGraph, tier: SizeTier, seed: u64, start_ts: Ts) -> TierChurnStats {
    let mut stats = TierChurnStats::default();
    let updatable = updatable_entities(g, "status");
    let rewirable = alive_edges(g);
    let broad = tier.broad_churn(seed ^ 0xB04D);
    let broad_days = broad.days;
    stats.broad = apply_churn(g, &updatable, &rewirable, start_ts, &broad);

    // Hot phase: a fixed, deterministic subset updated every day. The
    // fraction is `1/stride`; daily_update_fraction 1.0 means each hot
    // entity takes ~1 update/day, so chain depth ≈ days.
    let (stride, days) = tier.hot_churn();
    let hot: Vec<_> = updatable.iter().copied().step_by(stride).collect();
    stats.hot_entities = hot.len();
    let hot_start = start_ts + (broad_days as Ts + 1) * DAY;
    stats.hot = apply_churn(
        g,
        &hot,
        &[],
        hot_start,
        &ChurnParams { days, daily_update_fraction: 1.0, daily_rewire_fraction: 0.0, seed: seed ^ 0x407 },
    );
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use nepal_graph::KEYFRAME_INTERVAL;
    use nepal_schema::{EDGE, NODE};

    #[test]
    fn toy_tier_is_tiny_and_deterministic() {
        let a = generate_tier(SizeTier::Toy, 1);
        let b = generate_tier(SizeTier::Toy, 1);
        assert_eq!(a.graph.num_entities(), b.graph.num_entities());
        assert!(a.graph.num_entities() < 1500, "toy = {}", a.graph.num_entities());
    }

    #[test]
    fn small_tier_matches_paper_scale() {
        let topo = generate_tier(SizeTier::Small, 42);
        let nodes = topo.graph.alive_count(NODE);
        let edges = topo.graph.alive_count(EDGE);
        assert!((1800..=2300).contains(&nodes), "nodes = {nodes}");
        assert!((9500..=12500).contains(&edges), "edges = {edges}");
    }

    #[test]
    fn medium_tier_is_about_100k_entities() {
        let topo = generate_tier(SizeTier::Medium, 42);
        let n = topo.graph.num_entities();
        assert!((80_000..160_000).contains(&n), "medium = {n}");
    }

    #[test]
    fn churn_grows_chains_past_the_keyframe_interval() {
        let (topo, stats) = generate_tier_churned(SizeTier::Toy, 7);
        assert!(stats.hot_entities > 0);
        assert!(stats.broad.updates > 0);
        let g = &topo.graph;
        let deepest =
            (0..g.num_entities() as u64).map(|raw| g.versions(nepal_graph::Uid(raw)).len()).max().unwrap_or(0);
        assert!(deepest > KEYFRAME_INTERVAL, "hot chains must cross a keyframe boundary (deepest = {deepest})");
        // Deep chains actually delta-encode: some stored version is a delta.
        let report = g.memory_report();
        assert!(report.entity_bytes < report.entity_full_bytes, "delta encoding must save bytes");
        assert_eq!(g.memory_report(), g.memory_recount());
    }
}
