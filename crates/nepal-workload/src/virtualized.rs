//! Generator for the virtualized network service topology (§6, first data
//! set): "about 2,000 nodes and 11,000 edges in the current snapshot",
//! with only 33 distinct VNFs, over the ONAP-style schema.
//!
//! The shape follows Fig. 2's layered model: Services composed of VNFs
//! (Service layer), VNFs composed of VFCs (Logical layer), VFCs hosted on
//! containers attached to virtual networks and routers (Virtualization
//! layer), and containers executing on hosts cabled through a ToR/spine
//! fabric with routers (Physical layer).

use std::sync::Arc;

use nepal_graph::{TemporalGraph, Uid};
use nepal_schema::{ClassId, Schema, Ts, Value};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::onap::onap_schema;

/// Generator parameters; defaults reproduce the paper's scale.
#[derive(Debug, Clone)]
pub struct VirtParams {
    pub services: usize,
    pub vnfs_per_service: usize,
    pub vfcs_per_vnf: usize,
    pub containers_per_vfc: usize,
    pub vnets_per_container: usize,
    pub hosts: usize,
    pub tor_switches: usize,
    pub spine_switches: usize,
    pub routers: usize,
    pub vnets: usize,
    pub vrouters: usize,
    pub racks: usize,
    pub datacenters: usize,
    pub seed: u64,
    /// Base transaction time for the initial load.
    pub start_ts: Ts,
}

impl Default for VirtParams {
    fn default() -> Self {
        VirtParams {
            services: 11,
            vnfs_per_service: 3, // → 33 distinct VNFs, as in §6
            vfcs_per_vnf: 9,
            containers_per_vfc: 5,
            vnets_per_container: 2,
            hosts: 120,
            tor_switches: 24,
            spine_switches: 6,
            routers: 4,
            vnets: 160,
            vrouters: 40,
            racks: 12,
            datacenters: 2,
            seed: 42,
            start_ts: 1_486_800_000_000_000, // 2017-02-11 ~08:00 UTC
        }
    }
}

/// A generated virtualized-service topology with element rosters for
/// query-instance sampling.
pub struct VirtTopology {
    pub graph: TemporalGraph,
    pub services: Vec<Uid>,
    pub vnfs: Vec<Uid>,
    pub vfcs: Vec<Uid>,
    pub containers: Vec<Uid>,
    pub hosts: Vec<Uid>,
    pub switches: Vec<Uid>,
    pub routers: Vec<Uid>,
    pub vnets: Vec<Uid>,
    pub vrouters: Vec<Uid>,
    pub params: VirtParams,
}

struct Gen {
    g: TemporalGraph,
    rng: StdRng,
    ts: Ts,
}

impl Gen {
    fn class(&self, name: &str) -> ClassId {
        self.g.schema().class_by_name(name).expect("class in onap schema")
    }

    fn node(&mut self, class: &str, fields: Vec<Value>) -> Uid {
        let c = self.class(class);
        self.g.insert_node(c, fields, self.ts).expect("generator produces valid nodes")
    }

    fn edge(&mut self, class: &str, a: Uid, b: Uid, fields: Vec<Value>) -> Uid {
        let c = self.class(class);
        self.g.insert_edge(c, a, b, fields, self.ts).expect("generator respects the allowed-edge rules")
    }

    fn pick(&mut self, v: &[Uid]) -> Uid {
        v[self.rng.gen_range(0..v.len())]
    }
}

/// Generate the virtualized-service graph.
pub fn generate_virtualized(params: VirtParams) -> VirtTopology {
    let schema: Arc<Schema> = Arc::new(onap_schema());
    let mut gen = Gen { g: TemporalGraph::new(schema), rng: StdRng::seed_from_u64(params.seed), ts: params.start_ts };
    let mut next_id = 1_000i64;
    let mut id = || {
        next_id += 1;
        Value::Int(next_id)
    };

    // --- Physical layer ---
    let dc_classes = ["Datacenter"];
    let datacenters: Vec<Uid> = (0..params.datacenters)
        .map(|i| gen.node(dc_classes[0], vec![id(), Value::Str(format!("region-{i}"))]))
        .collect();
    let racks: Vec<Uid> = (0..params.racks).map(|_| gen.node("Rack", vec![id()])).collect();
    for (i, &r) in racks.iter().enumerate() {
        let dc = datacenters[i % datacenters.len()];
        gen.edge("PartOf", r, dc, vec![]);
    }
    let host_classes = ["ComputeHost", "StorageHost", "ControlHost"];
    let hosts: Vec<Uid> = (0..params.hosts)
        .map(|i| {
            let cls = host_classes[i % 10 % host_classes.len().min(3)];
            // 80% compute, the rest storage/control.
            let cls = if i % 10 < 8 { "ComputeHost" } else { cls };
            let h = gen.node(cls, vec![id(), Value::Str(format!("rack-{}", i % params.racks)), Value::Null]);
            h
        })
        .collect();
    for (i, &h) in hosts.iter().enumerate() {
        gen.edge("PartOf", h, racks[i % racks.len()], vec![]);
    }
    let tors: Vec<Uid> = (0..params.tor_switches).map(|_| gen.node("TorSwitch", vec![id()])).collect();
    let spines: Vec<Uid> = (0..params.spine_switches).map(|_| gen.node("SpineSwitch", vec![id()])).collect();
    let routers: Vec<Uid> = (0..params.routers)
        .map(|i| gen.node(if i % 2 == 0 { "CoreRouter" } else { "EdgeRouter" }, vec![id()]))
        .collect();
    // Hosts dual-home to two ToRs, both directions (communication fabric).
    for (i, &h) in hosts.iter().enumerate() {
        for k in 0..2 {
            let t = tors[(i + k) % tors.len()];
            gen.edge("ServerSwitch", h, t, vec![Value::Null, Value::Null, Value::Null, Value::Null]);
            gen.edge("ServerSwitch", t, h, vec![Value::Null, Value::Null, Value::Null, Value::Null]);
        }
    }
    // Each ToR uplinks to two spines (both directions).
    for (i, &t) in tors.iter().enumerate() {
        for k in 0..3 {
            let s = spines[(i + k) % spines.len()];
            gen.edge("SwitchSwitch", t, s, vec![Value::Null, Value::Null]);
            gen.edge("SwitchSwitch", s, t, vec![Value::Null, Value::Null]);
        }
    }
    for &s in &spines {
        for &r in &routers {
            gen.edge("Connects", s, r, vec![Value::Null, Value::Null]);
            gen.edge("Connects", r, s, vec![Value::Null, Value::Null]);
        }
    }

    // --- Virtualization layer ---
    let vnets: Vec<Uid> = (0..params.vnets)
        .map(|i| {
            let cls = if i % 4 == 0 { "ProviderNetwork" } else { "TenantNetwork" };
            gen.node(cls, vec![id(), Value::Str(format!("10.{}.0.0/16", i))])
        })
        .collect();
    let vrouters: Vec<Uid> = (0..params.vrouters).map(|_| gen.node("VirtualRouter", vec![id()])).collect();
    for (i, &vn) in vnets.iter().enumerate() {
        let vr = vrouters[i % vrouters.len()];
        gen.edge("NetworkVRouter", vn, vr, vec![Value::Null, Value::Null]);
        gen.edge("NetworkVRouter", vr, vnets[(i + 1) % vnets.len()], vec![Value::Null, Value::Null]);
    }

    // --- Service + Logical layers ---
    let svc_classes = ["VpnService", "MobilityService", "DnsService"];
    let vnf_classes = [
        "DnsVNF",
        "FirewallVNF",
        "RouterVNF",
        "LoadBalancerVNF",
        "EpcVNF",
        "GatewayVNF",
        "NatVNF",
        "IdsVNF",
        "ProxyVNF",
        "CdnVNF",
    ];
    let vfc_classes =
        ["ProxyVFC", "WebServerVFC", "DbVFC", "CacheVFC", "WorkerVFC", "ControlVFC", "LoggerVFC", "VduVFC"];
    let container_classes = ["VMWare", "OnMetal", "KvmVM", "Docker"];
    let mut services = Vec::new();
    let mut vnfs = Vec::new();
    let mut vfcs = Vec::new();
    let mut containers = Vec::new();
    for si in 0..params.services {
        let svc = gen.node(svc_classes[si % svc_classes.len()], vec![id(), Value::Str(format!("customer-{si}"))]);
        services.push(svc);
        for vi in 0..params.vnfs_per_service {
            let vnf_cls = vnf_classes[(si * params.vnfs_per_service + vi) % vnf_classes.len()];
            let extra_nulls = match vnf_cls {
                "DnsVNF" | "FirewallVNF" => 1,
                _ => 0,
            };
            let mut fields = vec![id(), Value::Str(format!("vnf-{si}-{vi}")), Value::Str("Active".into())];
            fields.extend(std::iter::repeat_n(Value::Null, extra_nulls));
            let vnf = gen.node(vnf_cls, fields);
            gen.edge("ComposedOf", svc, vnf, vec![]);
            vnfs.push(vnf);
            for fi in 0..params.vfcs_per_vnf {
                let vfc = gen.node(vfc_classes[fi % vfc_classes.len()], vec![id(), Value::Str(format!("role-{fi}"))]);
                gen.edge("ComposedOf", vnf, vfc, vec![]);
                vfcs.push(vfc);
                for _ci in 0..params.containers_per_vfc {
                    let cls = container_classes[gen.rng.gen_range(0..container_classes.len())];
                    let cont = gen.node(cls, vec![Value::Str("Green".into()), Value::Str("img-1.4".into()), id()]);
                    gen.edge("OnVM", vfc, cont, vec![]);
                    let host = gen.pick(&hosts);
                    gen.edge("OnServer", cont, host, vec![]);
                    for _ni in 0..params.vnets_per_container {
                        let vn = gen.pick(&vnets);
                        // Virtual connectivity is symmetric.
                        gen.edge("VmNetwork", cont, vn, vec![Value::Null, Value::Null, Value::Null]);
                        gen.edge("VmNetwork", vn, cont, vec![Value::Null, Value::Null, Value::Null]);
                    }
                    containers.push(cont);
                }
            }
        }
    }

    let mut switches = tors;
    switches.extend(spines);
    VirtTopology { graph: gen.g, services, vnfs, vfcs, containers, hosts, switches, routers, vnets, vrouters, params }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nepal_schema::{EDGE, NODE};

    #[test]
    fn default_scale_matches_the_paper() {
        let topo = generate_virtualized(VirtParams::default());
        let g = &topo.graph;
        let nodes = g.alive_count(NODE);
        let edges = g.alive_count(EDGE);
        // §6: "about 2,000 nodes and 11,000 edges".
        assert!((1800..=2300).contains(&nodes), "nodes = {nodes}");
        assert!((9500..=12500).contains(&edges), "edges = {edges}");
        assert_eq!(topo.vnfs.len(), 33, "33 distinct VNFs (§6)");
    }

    #[test]
    fn deterministic_for_a_seed() {
        let a = generate_virtualized(VirtParams::default());
        let b = generate_virtualized(VirtParams::default());
        assert_eq!(a.graph.num_entities(), b.graph.num_entities());
        assert_eq!(a.hosts, b.hosts);
        let c = generate_virtualized(VirtParams { seed: 7, ..Default::default() });
        assert_eq!(a.graph.num_entities(), c.graph.num_entities()); // structure fixed
    }

    #[test]
    fn layered_paths_exist() {
        use nepal_graph::{GraphView, TimeFilter};
        use nepal_rpe::{evaluate, parse_rpe, plan_rpe, EvalOptions, GraphEstimator, Seeds};
        let topo = generate_virtualized(VirtParams::default());
        let g = &topo.graph;
        let plan =
            plan_rpe(g.schema(), &parse_rpe("VNF()->[Vertical()]{1,6}->Host()").unwrap(), &GraphEstimator { graph: g })
                .unwrap();
        let view = GraphView::new(g, TimeFilter::Current);
        // Seed from one VNF to keep the test fast.
        let seeds = [topo.vnfs[0]];
        let paths = evaluate(&view, &plan, Seeds::Sources(&seeds), &EvalOptions::default());
        assert!(!paths.is_empty(), "top-down vertical paths must exist");
        // All targets are hosts.
        let host_cls = g.schema().class_by_name("Host").unwrap();
        for p in &paths {
            let c = g.class_of(p.target()).unwrap();
            assert!(g.schema().is_subclass(c, host_cls));
        }
    }
}
