//! A&AI-style periodic snapshot feed.
//!
//! §3.1: "Several data sources provide periodic snapshots of their contents
//! rather than update streams, so the graph database management layer also
//! provides an update-by-snapshot service." This module simulates such a
//! source: it holds a logical inventory keyed by stable external ids,
//! mutates it day by day (status flips, container migrations, churn), and
//! emits the *full* snapshot for [`nepal_graph::SnapshotLoader`] to diff.

use nepal_graph::{SnapshotEdge, SnapshotNode, TemporalGraph};
use nepal_schema::{ClassKind, Ts, Value, EDGE, NODE};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const DAY: Ts = 86_400_000_000;

/// A simulated inventory source emitting daily full snapshots.
pub struct InventoryFeed {
    nodes: Vec<SnapshotNode>,
    edges: Vec<SnapshotEdge>,
    /// Node indexes with a string `status`-like field, and that field's
    /// layout position.
    flippable: Vec<(usize, usize)>,
    /// Edge indexes eligible for target rewrites, plus the pool of
    /// candidate target external ids.
    migratable: Vec<usize>,
    migration_targets: Vec<String>,
    rng: StdRng,
    day: u32,
    start_ts: Ts,
}

impl InventoryFeed {
    /// Build the feed's initial inventory from a graph's current snapshot.
    /// External ids are derived from uids (`n<uid>` / `e<uid>`);
    /// `migrate_edge_class` names the edge class whose targets migration
    /// events rewrite (e.g. `OnServer`), with targets drawn from
    /// `target_class` (e.g. `Host`).
    pub fn from_graph(
        g: &TemporalGraph,
        migrate_edge_class: &str,
        target_class: &str,
        seed: u64,
        start_ts: Ts,
    ) -> InventoryFeed {
        let schema = g.schema().clone();
        let mut nodes = Vec::new();
        let mut edges = Vec::new();
        let mut flippable = Vec::new();
        let mut migratable = Vec::new();
        let mut migration_targets = Vec::new();
        let mig_edge = schema.class_by_name(migrate_edge_class);
        let tgt_node = schema.class_by_name(target_class);
        for root in [NODE, EDGE] {
            for class in schema.descendants(root) {
                let status_field = schema
                    .all_fields(class)
                    .iter()
                    .position(|f| f.ty == nepal_schema::FieldType::Str && f.name == "status");
                for &uid in g.extent_exact(class) {
                    let Some(v) = g.current_version(uid) else { continue };
                    if !v.span.is_current() {
                        continue;
                    }
                    if schema.kind(class) == ClassKind::Node {
                        let ext_id = format!("n{}", uid.0);
                        if let Some(f) = status_field {
                            flippable.push((nodes.len(), f));
                        }
                        if tgt_node.is_some_and(|t| schema.is_subclass(class, t)) {
                            migration_targets.push(ext_id.clone());
                        }
                        nodes.push(SnapshotNode { ext_id, class, fields: v.fields().to_vec() });
                    } else {
                        let e = g.edge(uid).expect("edge extent");
                        if mig_edge.is_some_and(|m| schema.is_subclass(class, m)) {
                            migratable.push(edges.len());
                        }
                        edges.push(SnapshotEdge {
                            ext_id: format!("e{}", uid.0),
                            class,
                            src_ext: format!("n{}", e.src.0),
                            dst_ext: format!("n{}", e.dst.0),
                            fields: v.fields().to_vec(),
                        });
                    }
                }
            }
        }
        InventoryFeed {
            nodes,
            edges,
            flippable,
            migratable,
            migration_targets,
            rng: StdRng::seed_from_u64(seed),
            day: 0,
            start_ts,
        }
    }

    /// Transaction time of the current day's snapshot.
    pub fn day_ts(&self) -> Ts {
        self.start_ts + self.day as Ts * DAY
    }

    /// Advance one day: flip `flips` statuses and migrate `migrations`
    /// edges to fresh targets. Returns the new day number.
    ///
    /// Day labels in logs derive from [`InventoryFeed::day_ts`].
    pub fn advance(&mut self, flips: usize, migrations: usize) -> u32 {
        self.day += 1;
        for _ in 0..flips {
            if self.flippable.is_empty() {
                break;
            }
            let (ni, fi) = self.flippable[self.rng.gen_range(0..self.flippable.len())];
            let day = self.day;
            self.nodes[ni].fields[fi] = Value::Str(format!("state-d{day}"));
        }
        for k in 0..migrations {
            if self.migratable.is_empty() || self.migration_targets.is_empty() {
                break;
            }
            let ei = self.migratable[self.rng.gen_range(0..self.migratable.len())];
            let tgt = self.migration_targets[self.rng.gen_range(0..self.migration_targets.len())].clone();
            let e = &mut self.edges[ei];
            if e.dst_ext != tgt {
                e.dst_ext = tgt;
                // A migrated connection is a *new* inventory object.
                e.ext_id = format!("{}-m{}-{k}", e.ext_id, self.day);
            }
        }
        self.day
    }

    /// The current full snapshot.
    pub fn emit(&self) -> (&[SnapshotNode], &[SnapshotEdge]) {
        (&self.nodes, &self.edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::virtualized::{generate_virtualized, VirtParams};
    use nepal_graph::SnapshotLoader;

    fn small() -> VirtParams {
        VirtParams {
            services: 2,
            vnfs_per_service: 2,
            vfcs_per_vnf: 2,
            containers_per_vfc: 2,
            hosts: 6,
            tor_switches: 2,
            spine_switches: 2,
            routers: 2,
            vnets: 4,
            vrouters: 2,
            racks: 2,
            datacenters: 1,
            ..Default::default()
        }
    }

    #[test]
    fn identical_days_add_no_history() {
        let topo = generate_virtualized(small());
        let src = topo.graph;
        let feed = InventoryFeed::from_graph(&src, "OnServer", "Host", 1, 1_000_000);
        let mut target = TemporalGraph::new(src.schema().clone());
        let mut loader = SnapshotLoader::new();
        let (n, e) = feed.emit();
        loader.apply(&mut target, feed.day_ts(), n, e).unwrap();
        let v0 = target.num_versions();
        // Re-apply the same snapshot on "day 1" without advancing: no-op.
        loader.apply(&mut target, feed.day_ts() + DAY, n, e).unwrap();
        assert_eq!(target.num_versions(), v0);
        assert_eq!(target.alive_count(NODE), src.alive_count(NODE));
        assert_eq!(target.alive_count(EDGE), src.alive_count(EDGE));
    }

    #[test]
    fn migrations_create_history_and_preserve_counts() {
        let topo = generate_virtualized(small());
        let src = topo.graph;
        let mut feed = InventoryFeed::from_graph(&src, "OnServer", "Host", 2, 1_000_000);
        let mut target = TemporalGraph::new(src.schema().clone());
        let mut loader = SnapshotLoader::new();
        let (n, e) = feed.emit();
        loader.apply(&mut target, feed.day_ts(), n, e).unwrap();
        let edges_before = target.alive_count(EDGE);
        let versions_before = target.num_versions();
        for _ in 0..5 {
            feed.advance(3, 2);
            let (n, e) = feed.emit();
            let stats = loader.apply(&mut target, feed.day_ts(), n, e).unwrap();
            assert!(stats.unchanged > 0);
        }
        // Snapshot-level counts stable, history grew.
        assert_eq!(target.alive_count(EDGE), edges_before);
        assert!(target.num_versions() > versions_before);
        // Time travel works across the feed history: day-0 state intact.
        let onserver = src.schema().class_by_name("OnServer").unwrap();
        let day0_alive = target.extent(onserver).filter(|&u| target.version_at(u, 1_000_000).is_some()).count() as u64;
        assert_eq!(day0_alive, src.alive_count(onserver));
    }
}
