//! Binary snapshot persistence: the fast-recovery companion to the text
//! [`journal`](crate::journal).
//!
//! The journal is append-friendly and human-auditable but replays one line
//! at a time; at million-entity scale that dominates restart time. The
//! binary snapshot trades appendability for bulk speed:
//!
//! ```text
//! magic "NEPALB1\n"            8 bytes
//! schema fingerprint           u64 LE (FNV-1a over the schema shape)
//! block*                       [len: u32 LE][crc32: u32 LE][payload]
//! ```
//!
//! Each payload holds one or more *single-class, uid-contiguous runs* of
//! entities (entities are never split across blocks), so blocks decode
//! independently and in parallel. Version payloads preserve the store's
//! keyframe/delta representation verbatim — no materialization on save, no
//! re-encoding on load, and per-class byte accounting round-trips exactly.
//! Version spans are chain-delta-coded (see [`encode_version`]). The final
//! block is a trailer carrying entity/version totals.
//!
//! Recovery mirrors the journal's lenient contract: a torn tail (truncated
//! header, truncated payload, or a checksum mismatch in the *final* block)
//! drops the incomplete suffix and recovers every complete block before
//! it; a checksum mismatch *followed by* intact blocks is interior
//! corruption and always a hard error.
//!
//! Loading is a streamed pipeline: (1) a serial frame scan finds block
//! boundaries (only the final block's CRC is verified here — it alone
//! decides tear-vs-corruption); (2) worker threads CRC, decode, and
//! schema-validate blocks in any order while (3) the consumer thread
//! applies each decoded block to the store the moment its turn in uid
//! order arrives, overlapping the serial apply with the remaining decode.

use std::io::Write;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use nepal_schema::codec::{
    decode_value_bin, encode_value_bin, read_ivarint, read_uvarint, write_ivarint, write_uvarint,
};
use nepal_schema::{ClassId, ClassKind, Schema};

use crate::error::{GraphError, Result};
use crate::interval::{Interval, FOREVER};
use crate::store::{
    stored_version_bytes, value_heap_bytes, TemporalGraph, Uid, Version, VersionData, VALUE_SLOT_BYTES, VERSION_BYTES,
};

/// File magic: 8 bytes, trailing newline so `head -c8` shows it cleanly.
pub const BIN_MAGIC: &[u8; 8] = b"NEPALB1\n";

/// Soft payload cap per block; a block closes at the first entity boundary
/// past this. Small enough for good parallel-decode granularity, large
/// enough that framing overhead vanishes.
const BLOCK_TARGET_BYTES: usize = 256 * 1024;

const BLOCK_ENTITIES: u8 = 0x01;
const BLOCK_TRAILER: u8 = 0x02;

const TAG_FULL: u8 = 0x00;
const TAG_DELTA: u8 = 0x01;

/// Process-wide decode counters: versions decoded from full (keyframe)
/// records vs. backward-delta records, across every binary-snapshot load.
/// Exported as `nepal_binsnap_decoded_{full,delta}` gauges so recovery
/// telemetry shows how much of a restore rode the delta encoding.
static DECODED_FULL: AtomicU64 = AtomicU64::new(0);
static DECODED_DELTA: AtomicU64 = AtomicU64::new(0);

/// `(full, delta)` versions decoded by binary-snapshot loads so far.
pub fn decode_stats() -> (u64, u64) {
    (DECODED_FULL.load(Ordering::Relaxed), DECODED_DELTA.load(Ordering::Relaxed))
}

// ----------------------------------------------------------------------
// CRC32 (IEEE 802.3), table built at compile time — no dependencies.
// ----------------------------------------------------------------------

// Slice-by-8: eight derived tables let the hot loop fold 8 bytes per
// iteration (~5-8x over byte-at-a-time), which matters because every
// recovery CRCs the whole snapshot.
const fn build_crc_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            tables[t][i] = (tables[t - 1][i] >> 8) ^ tables[0][(tables[t - 1][i] & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static CRC_TABLES: [[u32; 256]; 8] = build_crc_tables();

/// CRC32 (IEEE) of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let t = &CRC_TABLES;
    let mut c = 0xFFFF_FFFFu32;
    let mut chunks = data.chunks_exact(8);
    for ch in &mut chunks {
        let lo = u32::from_le_bytes(ch[..4].try_into().unwrap()) ^ c;
        let hi = u32::from_le_bytes(ch[4..].try_into().unwrap());
        c = t[7][(lo & 0xFF) as usize]
            ^ t[6][((lo >> 8) & 0xFF) as usize]
            ^ t[5][((lo >> 16) & 0xFF) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xFF) as usize]
            ^ t[2][((hi >> 8) & 0xFF) as usize]
            ^ t[1][((hi >> 16) & 0xFF) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = t[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

// ----------------------------------------------------------------------
// Schema fingerprint
// ----------------------------------------------------------------------

fn fnv1a(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// FNV-1a hash over the schema shape (class paths, kinds, field names and
/// types, in class-id order). Snapshots refuse to load under a schema
/// whose fingerprint differs — class ids and field offsets are positional.
pub fn schema_fingerprint(schema: &Schema) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for raw in 0..schema.num_classes() as u32 {
        let class = ClassId(raw);
        h = fnv1a(h, schema.path_name(class).as_bytes());
        h = fnv1a(h, &[schema.kind(class) as u8, 0xFE]);
        for f in schema.all_fields(class) {
            h = fnv1a(h, f.name.as_bytes());
            h = fnv1a(h, format!(":{:?}:{}:{};", f.ty, f.required, f.unique).as_bytes());
        }
        h = fnv1a(h, &[0xFF]);
    }
    h
}

fn io_err(e: std::io::Error) -> GraphError {
    GraphError::BadClass(format!("snapshot io error: {e}"))
}

fn corrupt(offset: usize, msg: &str) -> GraphError {
    GraphError::BadClass(format!("snapshot corrupt at byte {offset}: {msg}"))
}

// ----------------------------------------------------------------------
// Save
// ----------------------------------------------------------------------

fn flush_block<W: Write>(w: &mut W, payload: &mut Vec<u8>) -> Result<()> {
    if payload.is_empty() {
        return Ok(());
    }
    w.write_all(&(payload.len() as u32).to_le_bytes()).map_err(io_err)?;
    w.write_all(&crc32(payload).to_le_bytes()).map_err(io_err)?;
    w.write_all(payload).map_err(io_err)?;
    payload.clear();
    Ok(())
}

/// Encode one version. Spans are delta-coded against the chain: the first
/// version's start is absolute (zigzag), every later start is the unsigned
/// gap from the previous version's close (usually 0 in a contiguous
/// chain), and the close is the unsigned duration with 0 reserved for an
/// open (`FOREVER`) version — `to > from` makes a real zero duration
/// impossible. Epoch-scale timestamps thus cost 1-3 bytes instead of two
/// 9-10 byte absolutes per version.
fn encode_version(payload: &mut Vec<u8>, v: &Version, prev_to: Option<i64>) {
    match prev_to {
        None => write_ivarint(v.span.from, payload),
        Some(pt) => {
            debug_assert!(v.span.from >= pt, "chain spans must be time-ordered");
            write_uvarint((v.span.from - pt) as u64, payload);
        }
    }
    if v.span.to == FOREVER {
        write_uvarint(0, payload);
    } else {
        debug_assert!(v.span.to > v.span.from);
        write_uvarint((v.span.to - v.span.from) as u64, payload);
    }
    match v.data() {
        VersionData::Full(fields) => {
            payload.push(TAG_FULL);
            write_uvarint(fields.len() as u64, payload);
            for f in fields {
                encode_value_bin(f, payload);
            }
        }
        VersionData::Delta(pairs) => {
            payload.push(TAG_DELTA);
            write_uvarint(pairs.len() as u64, payload);
            for (idx, val) in pairs.iter() {
                write_uvarint(*idx as u64, payload);
                encode_value_bin(val, payload);
            }
        }
    }
}

/// Write the complete graph to `w` in the binary snapshot format.
pub fn save_binary<W: Write>(g: &TemporalGraph, w: &mut W) -> Result<()> {
    let schema = g.schema();
    w.write_all(BIN_MAGIC).map_err(io_err)?;
    w.write_all(&schema_fingerprint(schema).to_le_bytes()).map_err(io_err)?;

    let mut payload: Vec<u8> = Vec::with_capacity(BLOCK_TARGET_BYTES + 4096);
    // (class, is_node, start uid, count) of the open run; None when no
    // block is open.
    let mut run: Option<(ClassId, bool, u64, u64)> = None;
    // Patch slot where the run's entity count lives (fixed-width u32 so it
    // can be back-patched after the run closes).
    let mut count_slot = 0usize;

    let close_run = |payload: &mut Vec<u8>, run: &mut Option<(ClassId, bool, u64, u64)>, count_slot: usize| {
        if let Some((_, _, _, count)) = run.take() {
            payload[count_slot..count_slot + 4].copy_from_slice(&(count as u32).to_le_bytes());
        }
    };

    for raw in 0..g.num_entities() as u64 {
        let uid = Uid(raw);
        let class = g.class_of(uid).expect("dense uids");
        let is_node = g.is_node(uid);
        let extend = matches!(run, Some((c, n, start, count)) if c == class && n == is_node && start + count == raw)
            && payload.len() < BLOCK_TARGET_BYTES;
        if !extend {
            close_run(&mut payload, &mut run, count_slot);
            if payload.len() >= BLOCK_TARGET_BYTES {
                flush_block(w, &mut payload)?;
            }
            payload.push(BLOCK_ENTITIES);
            payload.push(is_node as u8);
            let path = schema.path_name(class);
            write_uvarint(path.len() as u64, &mut payload);
            payload.extend_from_slice(path.as_bytes());
            write_uvarint(raw, &mut payload);
            count_slot = payload.len();
            payload.extend_from_slice(&0u32.to_le_bytes());
            run = Some((class, is_node, raw, 0));
        }
        if !is_node {
            let e = g.edge(uid)?;
            write_uvarint(e.src.0, &mut payload);
            write_uvarint(e.dst.0, &mut payload);
        }
        let versions = g.versions(uid);
        write_uvarint(versions.len() as u64, &mut payload);
        let mut prev_to = None;
        for v in versions {
            encode_version(&mut payload, v, prev_to);
            prev_to = Some(v.span.to);
        }
        if let Some((_, _, _, count)) = &mut run {
            *count += 1;
        }
    }
    close_run(&mut payload, &mut run, count_slot);
    flush_block(w, &mut payload)?;

    // Trailer: totals the loader cross-checks after apply.
    payload.push(BLOCK_TRAILER);
    write_uvarint(g.num_entities() as u64, &mut payload);
    write_uvarint(g.num_versions(), &mut payload);
    flush_block(w, &mut payload)?;
    Ok(())
}

/// Exact size in bytes of the snapshot [`save_binary`] would produce.
pub fn binary_snapshot_bytes(g: &TemporalGraph) -> u64 {
    struct CountWriter(u64);
    impl Write for CountWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0 += buf.len() as u64;
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let mut w = CountWriter(0);
    save_binary(g, &mut w).expect("counting writer cannot fail");
    w.0
}

/// Save to a file path.
pub fn save_binary_to_file(g: &TemporalGraph, path: &std::path::Path) -> Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path).map_err(io_err)?);
    save_binary(g, &mut f)?;
    f.flush().map_err(io_err)
}

// ----------------------------------------------------------------------
// Load
// ----------------------------------------------------------------------

/// A torn (partially written) snapshot tail dropped by lenient recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornSnap {
    /// Byte offset where the tear was detected.
    pub offset: u64,
    /// Why the suffix failed to frame or checksum.
    pub reason: String,
    /// Complete blocks recovered before the tear.
    pub recovered_blocks: usize,
    /// Byte length of the intact block prefix. Unlike the journal, this
    /// prefix is not strictly loadable on its own (the trailer is gone);
    /// re-save the recovered graph to repair.
    pub keep_bytes: u64,
}

struct DecodedEntity {
    uid: u64,
    is_node: bool,
    class: ClassId,
    src: u64,
    dst: u64,
    versions: Vec<Version>,
    stored_heap: u64,
    full_heap: u64,
}

/// Thread count for parallel decode: `NEPAL_THREADS` if set, else the
/// host's available parallelism.
pub fn default_threads() -> usize {
    std::env::var("NEPAL_THREADS")
        .ok()
        .and_then(|s| s.parse::<usize>().ok())
        .filter(|&n| n >= 1)
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

/// Load a snapshot written by [`save_binary`], validating against
/// `schema`. `threads` bounds the parallel-decode worker count (1 =
/// fully serial).
pub fn load_binary(schema: Arc<Schema>, bytes: &[u8], threads: usize) -> Result<TemporalGraph> {
    load_inner(schema, bytes, threads, false).map(|(g, _)| g)
}

/// [`load_binary`] tolerating a torn tail, mirroring
/// [`load_graph_lenient`](crate::journal::load_graph_lenient): every
/// complete block before the tear is recovered and the dropped suffix is
/// reported. Interior corruption (a bad block followed by intact ones) is
/// still a hard error.
pub fn load_binary_lenient(
    schema: Arc<Schema>,
    bytes: &[u8],
    threads: usize,
) -> Result<(TemporalGraph, Option<TornSnap>)> {
    load_inner(schema, bytes, threads, true)
}

/// Load from a file path with [`default_threads`].
pub fn load_binary_from_file(schema: Arc<Schema>, path: &std::path::Path) -> Result<TemporalGraph> {
    let bytes = std::fs::read(path).map_err(io_err)?;
    load_binary(schema, &bytes, default_threads())
}

/// Lenient load from a file path with [`default_threads`].
pub fn load_binary_from_file_lenient(
    schema: Arc<Schema>,
    path: &std::path::Path,
) -> Result<(TemporalGraph, Option<TornSnap>)> {
    let bytes = std::fs::read(path).map_err(io_err)?;
    load_binary_lenient(schema, &bytes, default_threads())
}

fn load_inner(
    schema: Arc<Schema>,
    bytes: &[u8],
    threads: usize,
    lenient: bool,
) -> Result<(TemporalGraph, Option<TornSnap>)> {
    let t0 = std::time::Instant::now();
    // ---- Phase 1: serial frame + CRC scan -----------------------------
    if bytes.len() < 16 {
        return Err(corrupt(0, "shorter than header"));
    }
    if &bytes[..8] != BIN_MAGIC {
        return Err(corrupt(0, "bad magic"));
    }
    let fp = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
    let want = schema_fingerprint(&schema);
    if fp != want {
        return Err(corrupt(8, &format!("schema fingerprint mismatch (file {fp:#018x}, schema {want:#018x})")));
    }

    let mut pos = 16usize;
    let mut blocks: Vec<(usize, &[u8], u32)> = Vec::new(); // (header offset, payload, expected crc)
    let mut trailer: Option<(u64, u64)> = None;
    let mut torn: Option<TornSnap> = None;
    let tear = |offset: usize, reason: String, recovered: usize| -> Result<Option<TornSnap>> {
        if lenient {
            Ok(Some(TornSnap { offset: offset as u64, reason, recovered_blocks: recovered, keep_bytes: offset as u64 }))
        } else {
            Err(corrupt(offset, &reason))
        }
    };
    while pos < bytes.len() {
        if bytes.len() - pos < 8 {
            torn = tear(pos, "truncated block header".into(), blocks.len())?;
            break;
        }
        let len = u32::from_le_bytes(bytes[pos..pos + 4].try_into().unwrap()) as usize;
        let crc = u32::from_le_bytes(bytes[pos + 4..pos + 8].try_into().unwrap());
        if bytes.len() - pos - 8 < len {
            torn = tear(pos, "truncated block payload".into(), blocks.len())?;
            break;
        }
        let payload = &bytes[pos + 8..pos + 8 + len];
        let at_eof = pos + 8 + len == bytes.len();
        // Only the *final* block's checksum decides tear-vs-corruption, so
        // only it is verified here; interior blocks are CRC'd by the
        // parallel decode workers, where a mismatch is interior corruption
        // by definition (intact blocks follow it) and lenient mode must
        // not mask it.
        if at_eof && crc32(payload) != crc {
            // A torn final write: recoverable.
            torn = tear(pos, "checksum mismatch in final block".into(), blocks.len())?;
            break;
        }
        match payload.first() {
            Some(&BLOCK_ENTITIES) => blocks.push((pos, payload, crc)),
            Some(&BLOCK_TRAILER) => {
                if !at_eof {
                    return Err(corrupt(pos, "trailer block is not last"));
                }
                let mut p = 1usize;
                let ents = read_uvarint(payload, &mut p).map_err(|e| corrupt(pos, &format!("bad trailer: {e}")))?;
                let vers = read_uvarint(payload, &mut p).map_err(|e| corrupt(pos, &format!("bad trailer: {e}")))?;
                trailer = Some((ents, vers));
            }
            Some(other) => return Err(corrupt(pos, &format!("unknown block kind {other:#04x}"))),
            None => return Err(corrupt(pos, "empty block")),
        }
        pos += 8 + len;
    }
    if torn.is_none() && trailer.is_none() {
        torn = tear(pos, "missing trailer".into(), blocks.len())?;
    }

    let timing = std::env::var_os("NEPAL_BINSNAP_TIMING").is_some();
    let t_scan = std::time::Instant::now();
    if timing {
        eprintln!("binsnap: scan {:.1}ms", (t_scan - t0).as_secs_f64() * 1e3);
    }
    // ---- Phases 2+3: parallel decode, streamed uid-order apply --------
    // Workers CRC + decode + validate blocks in any order; the consumer
    // (this thread) applies each block to the store the moment its turn
    // in uid order comes up, overlapping the serial apply with the
    // remaining decode work instead of barriering on the full decode.
    // Peak memory holds only the blocks decoded ahead of the consumer.
    let n = blocks.len();
    let check_and_decode = |header: usize, payload: &[u8], crc: u32| -> Result<Vec<DecodedEntity>> {
        if crc32(payload) != crc {
            return Err(corrupt(header, "block checksum mismatch"));
        }
        decode_block(&schema, header + 8, payload)
    };
    let mut g = TemporalGraph::new(schema.clone());
    let apply_block = |g: &mut TemporalGraph, ents: Vec<DecodedEntity>| -> Result<()> {
        for e in ents {
            g.restore_entity_encoded(
                Uid(e.uid),
                e.is_node,
                e.class,
                Uid(e.src),
                Uid(e.dst),
                e.versions,
                e.stored_heap,
                e.full_heap,
            )?;
        }
        Ok(())
    };
    if threads <= 1 || n <= 1 {
        for &(header, payload, crc) in &blocks {
            apply_block(&mut g, check_and_decode(header, payload, crc)?)?;
        }
    } else {
        let next = AtomicUsize::new(0);
        let slots: Mutex<Vec<Option<Result<Vec<DecodedEntity>>>>> = Mutex::new((0..n).map(|_| None).collect());
        let ready = Condvar::new();
        let workers = threads.min(n);
        std::thread::scope(|s| -> Result<()> {
            for _ in 0..workers {
                s.spawn(|| loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let (header, payload, crc) = blocks[i];
                    let r = check_and_decode(header, payload, crc);
                    slots.lock().unwrap()[i] = Some(r);
                    ready.notify_all();
                });
            }
            for i in 0..n {
                let block = {
                    let mut st = slots.lock().unwrap();
                    loop {
                        if let Some(r) = st[i].take() {
                            break r;
                        }
                        st = ready.wait(st).unwrap();
                    }
                }?;
                apply_block(&mut g, block)?;
            }
            Ok(())
        })?;
    }

    let t_apply = std::time::Instant::now();
    if timing {
        eprintln!("binsnap: decode+apply {:.1}ms", (t_apply - t_scan).as_secs_f64() * 1e3);
    }
    g.rebuild_unique_index()?;
    if timing {
        eprintln!("binsnap: index {:.1}ms", t_apply.elapsed().as_secs_f64() * 1e3);
    }
    if let Some((ents, vers)) = trailer {
        if ents != g.num_entities() as u64 || vers != g.num_versions() {
            return Err(corrupt(
                bytes.len(),
                &format!(
                    "trailer totals mismatch: file says {ents} entities / {vers} versions, \
                     restored {} / {}",
                    g.num_entities(),
                    g.num_versions()
                ),
            ));
        }
    }
    Ok((g, torn))
}

fn decode_block(schema: &Schema, off: usize, payload: &[u8]) -> Result<Vec<DecodedEntity>> {
    let bad = |p: usize, msg: &str| corrupt(off + p, msg);
    let mut out = Vec::new();
    let mut p = 0usize;
    // A block holds one or more single-class uid-contiguous runs, each
    // introduced by its own run marker (the first doubles as the block
    // kind byte phase 1 dispatched on).
    while p < payload.len() {
        if payload[p] != BLOCK_ENTITIES {
            return Err(bad(p, "bad run marker"));
        }
        p += 1;
        decode_run(schema, off, payload, &mut p, &mut out)?;
    }
    Ok(out)
}

#[allow(clippy::ptr_arg)]
fn decode_run(
    schema: &Schema,
    off: usize,
    payload: &[u8],
    pos: &mut usize,
    out: &mut Vec<DecodedEntity>,
) -> Result<()> {
    let bad = |p: usize, msg: &str| corrupt(off + p, msg);
    let mut p = *pos;
    let is_node = match payload.get(p) {
        Some(0) => false,
        Some(1) => true,
        _ => return Err(bad(p, "bad is_node flag")),
    };
    p += 1;
    let path_len = read_uvarint(payload, &mut p).map_err(|e| bad(p, &e.to_string()))? as usize;
    if payload.len() - p < path_len {
        return Err(bad(p, "class path overruns block"));
    }
    let path = std::str::from_utf8(&payload[p..p + path_len]).map_err(|_| bad(p, "class path not utf-8"))?;
    p += path_len;
    let class = schema.class_by_name(path).ok_or_else(|| bad(p, &format!("unknown class `{path}`")))?;
    let expected_kind = if is_node { ClassKind::Node } else { ClassKind::Edge };
    if schema.kind(class) != expected_kind {
        return Err(bad(p, "class kind mismatch"));
    }
    let n_fields = schema.all_fields(class).len();
    let start_uid = read_uvarint(payload, &mut p).map_err(|e| bad(p, &e.to_string()))?;
    if payload.len() - p < 4 {
        return Err(bad(p, "missing entity count"));
    }
    let count = u32::from_le_bytes(payload[p..p + 4].try_into().unwrap()) as u64;
    p += 4;

    out.reserve(count as usize);
    let (mut full_seen, mut delta_seen) = (0u64, 0u64);
    for k in 0..count {
        let uid = start_uid + k;
        let (src, dst) = if is_node {
            (0, 0)
        } else {
            let s = read_uvarint(payload, &mut p).map_err(|e| bad(p, &e.to_string()))?;
            let d = read_uvarint(payload, &mut p).map_err(|e| bad(p, &e.to_string()))?;
            (s, d)
        };
        let n_versions = read_uvarint(payload, &mut p).map_err(|e| bad(p, &e.to_string()))? as usize;
        let mut versions: Vec<Version> = Vec::with_capacity(n_versions);
        let mut prev_to: Option<i64> = None;
        for _ in 0..n_versions {
            // Spans are chain-delta-coded (see `encode_version`); the
            // unsigned gap/duration representation makes time-ordering
            // structural — only overflow can produce an invalid span.
            let from = match prev_to {
                None => read_ivarint(payload, &mut p).map_err(|e| bad(p, &e.to_string()))?,
                Some(pt) => {
                    let gap = read_uvarint(payload, &mut p).map_err(|e| bad(p, &e.to_string()))?;
                    pt.checked_add_unsigned(gap)
                        .ok_or_else(|| bad(p, &format!("version start overflows for uid {uid}")))?
                }
            };
            let dur = read_uvarint(payload, &mut p).map_err(|e| bad(p, &e.to_string()))?;
            let to = if dur == 0 {
                FOREVER
            } else {
                from.checked_add_unsigned(dur)
                    .ok_or_else(|| bad(p, &format!("version close overflows for uid {uid}")))?
            };
            if from >= to {
                return Err(bad(p, &format!("version span [{from},{to}) invalid for uid {uid}")));
            }
            prev_to = Some(to);
            let tag = *payload.get(p).ok_or_else(|| bad(p, "missing version tag"))?;
            p += 1;
            let data = match tag {
                TAG_FULL => {
                    full_seen += 1;
                    let nf = read_uvarint(payload, &mut p).map_err(|e| bad(p, &e.to_string()))? as usize;
                    if nf != n_fields {
                        return Err(bad(p, &format!("field count {nf} != schema's {n_fields}")));
                    }
                    let mut fields = Vec::with_capacity(nf);
                    for _ in 0..nf {
                        fields.push(decode_value_bin(payload, &mut p).map_err(|e| bad(p, &e.to_string()))?);
                    }
                    VersionData::Full(fields)
                }
                TAG_DELTA => {
                    delta_seen += 1;
                    let np = read_uvarint(payload, &mut p).map_err(|e| bad(p, &e.to_string()))? as usize;
                    if np >= n_fields.max(1) {
                        // A delta at least as wide as the record would have
                        // been stored full; reject rather than under-account.
                        return Err(bad(p, &format!("delta width {np} >= field count {n_fields}")));
                    }
                    let mut pairs = Vec::with_capacity(np);
                    for _ in 0..np {
                        let idx = read_uvarint(payload, &mut p).map_err(|e| bad(p, &e.to_string()))? as usize;
                        if idx >= n_fields {
                            return Err(bad(p, &format!("delta field index {idx} out of range")));
                        }
                        let val = decode_value_bin(payload, &mut p).map_err(|e| bad(p, &e.to_string()))?;
                        pairs.push((idx as u32, val));
                    }
                    VersionData::Delta(pairs.into_boxed_slice())
                }
                other => return Err(bad(p, &format!("unknown version tag {other:#04x}"))),
            };
            versions.push(Version { data, span: Interval::new(from, to) });
        }
        if versions.last().is_some_and(|v| v.is_delta()) {
            return Err(bad(p, &format!("uid {uid} chain head is not a full version")));
        }
        // Validate every version against the schema and tally the byte
        // accounting — this is the parallel half of what the journal's
        // `restore_entity` does serially, and the hot loop of recovery.
        // A backward delta patches its slots over the next-newer record,
        // so walking newest -> oldest needs only the per-slot heap sizes
        // of the working record (not the values themselves) to price each
        // materialized version — no per-version reconstruction, no value
        // clones. Full versions are validated whole; a delta only
        // re-validates the slots it patches.
        let mut stored_heap = 0u64;
        let mut full_heap = 0u64;
        let layout = schema.all_fields(class);
        let mut slot_heap: Vec<u64> = Vec::new();
        let mut cur_heap = 0u64;
        for i in (0..versions.len()).rev() {
            let v = &versions[i];
            stored_heap += stored_version_bytes(v);
            match v.data() {
                VersionData::Full(fields) => {
                    schema.validate_record(class, fields)?;
                    slot_heap.clear();
                    slot_heap.extend(fields.iter().map(value_heap_bytes));
                    cur_heap = slot_heap.iter().sum();
                }
                VersionData::Delta(pairs) => {
                    for (idx, val) in pairs.iter() {
                        let fd = &layout[*idx as usize];
                        if val.is_null() {
                            if fd.required {
                                return Err(bad(p, &format!("null in required field `{}` of uid {uid}", fd.name)));
                            }
                        } else {
                            schema.data_types().validate_value(&fd.ty, val)?;
                        }
                        let h = value_heap_bytes(val);
                        cur_heap += h;
                        cur_heap -= std::mem::replace(&mut slot_heap[*idx as usize], h);
                    }
                }
            }
            full_heap += VERSION_BYTES + n_fields as u64 * VALUE_SLOT_BYTES + cur_heap;
        }
        out.push(DecodedEntity { uid, is_node, class, src, dst, versions, stored_heap, full_heap });
    }
    DECODED_FULL.fetch_add(full_seen, Ordering::Relaxed);
    DECODED_DELTA.fetch_add(delta_seen, Ordering::Relaxed);
    *pos = p;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nepal_schema::dsl::parse_schema;
    use nepal_schema::Value;

    fn fixture() -> TemporalGraph {
        let s = Arc::new(
            parse_schema(
                r#"
                data geo { region: str }
                node VM { vm_id: int unique, status: str, loc: geo optional }
                node Host { host_id: int unique }
                edge HostedOn { }
                "#,
            )
            .unwrap(),
        );
        let mut g = TemporalGraph::new(s.clone());
        let vm = s.class_by_name("VM").unwrap();
        let host = s.class_by_name("Host").unwrap();
        let ho = s.class_by_name("HostedOn").unwrap();
        let v1 = g
            .insert_node(
                vm,
                vec![Value::Int(1), Value::Str("Green".into()), Value::Composite(vec![Value::Str("east".into())])],
                100,
            )
            .unwrap();
        let h1 = g.insert_node(host, vec![Value::Int(7)], 100).unwrap();
        let e = g.insert_edge(ho, v1, h1, vec![], 110).unwrap();
        // Deep chain so keyframes and deltas both appear on disk.
        for t in 0..40i64 {
            g.update(v1, &[(1, Value::Str(format!("s{t}")))], 200 + t).unwrap();
        }
        g.delete(e, 300).unwrap();
        let v2 = g.insert_node(vm, vec![Value::Int(2), Value::Str("Green".into()), Value::Null], 150).unwrap();
        g.delete(v2, 400).unwrap();
        g
    }

    fn snap(g: &TemporalGraph) -> Vec<u8> {
        let mut buf = Vec::new();
        save_binary(g, &mut buf).unwrap();
        buf
    }

    #[test]
    fn round_trip_preserves_chains_deltas_and_accounting() {
        let g = fixture();
        let buf = snap(&g);
        for threads in [1, 4] {
            let g2 = load_binary(g.schema().clone(), &buf, threads).unwrap();
            assert_eq!(g.num_entities(), g2.num_entities());
            assert_eq!(g.num_versions(), g2.num_versions());
            for raw in 0..g.num_entities() as u64 {
                let uid = Uid(raw);
                assert_eq!(g.class_of(uid), g2.class_of(uid));
                let (va, vb) = (g.versions(uid), g2.versions(uid));
                assert_eq!(va.len(), vb.len());
                for (i, (a, b)) in va.iter().zip(vb).enumerate() {
                    assert_eq!(a.span, b.span);
                    // The on-disk form preserves the exact representation.
                    assert_eq!(a.is_delta(), b.is_delta(), "uid {raw} version {i}");
                    assert_eq!(g.fields_of(uid, i), g2.fields_of(uid, i));
                }
            }
            // Byte accounting round-trips exactly, not just approximately.
            assert_eq!(g.memory_report(), g2.memory_report());
            assert_eq!(g2.memory_report(), g2.memory_recount());
        }
    }

    #[test]
    fn wrong_schema_fingerprint_is_rejected() {
        let g = fixture();
        let buf = snap(&g);
        let other = Arc::new(parse_schema("node VM { vm_id: int unique, status: str }").unwrap());
        let err = load_binary(other, &buf, 1).map(|_| ()).unwrap_err().to_string();
        assert!(err.contains("fingerprint"), "{err}");
    }

    #[test]
    fn torn_tail_recovers_complete_prefix() {
        let g = fixture();
        let buf = snap(&g);
        // Cut mid-trailer and mid-entity-block: strict fails, lenient
        // recovers every complete block.
        for cut in [1usize, 9, 24] {
            let torn_bytes = &buf[..buf.len() - cut];
            assert!(load_binary(g.schema().clone(), torn_bytes, 1).is_err());
            let (g2, torn) = load_binary_lenient(g.schema().clone(), torn_bytes, 2).unwrap();
            let torn = torn.expect("tear must be reported");
            assert!(torn.keep_bytes <= torn_bytes.len() as u64);
            assert!(g2.num_entities() <= g.num_entities());
            for raw in 0..g2.num_entities() as u64 {
                let uid = Uid(raw);
                assert_eq!(g.class_of(uid), g2.class_of(uid));
                assert_eq!(g.versions(uid).len(), g2.versions(uid).len());
            }
            assert_eq!(g2.memory_report(), g2.memory_recount());
        }
    }

    #[test]
    fn interior_corruption_is_always_rejected() {
        let g = fixture();
        let mut buf = snap(&g);
        // Flip a byte inside the FIRST block's payload (a later intact
        // block follows, so this must be a hard error in both modes).
        let first_len = u32::from_le_bytes(buf[16..20].try_into().unwrap()) as usize;
        assert!(16 + 8 + first_len < buf.len(), "fixture must span multiple blocks");
        buf[16 + 8 + first_len / 2] ^= 0xA5;
        assert!(load_binary(g.schema().clone(), &buf, 1).is_err());
        let err = load_binary_lenient(g.schema().clone(), &buf, 1).map(|_| ()).unwrap_err().to_string();
        assert!(err.contains("checksum"), "{err}");
    }

    #[test]
    fn unique_index_rebuilt_after_load() {
        let g = fixture();
        let buf = snap(&g);
        let mut g2 = load_binary(g.schema().clone(), &buf, 1).unwrap();
        let vm = g.schema().class_by_name("VM").unwrap();
        // vm_id=1 is still alive → duplicate rejected; vm_id=2 died → free.
        assert!(g2.insert_node(vm, vec![Value::Int(1), Value::Str("x".into()), Value::Null], 500).is_err());
        assert!(g2.insert_node(vm, vec![Value::Int(2), Value::Str("x".into()), Value::Null], 500).is_ok());
    }

    #[test]
    fn file_round_trip() {
        let g = fixture();
        let dir = std::env::temp_dir().join(format!("nepal-binsnap-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.nbs");
        save_binary_to_file(&g, &path).unwrap();
        assert_eq!(std::fs::metadata(&path).unwrap().len(), binary_snapshot_bytes(&g));
        let g2 = load_binary_from_file(g.schema().clone(), &path).unwrap();
        assert_eq!(g.num_versions(), g2.num_versions());
        std::fs::remove_dir_all(&dir).ok();
    }
}
