//! # nepal-graph — the native temporal graph store
//!
//! Transaction-time temporal graph storage for Nepal (§4/§5.3 of the
//! paper): versioned, class-partitioned node/edge storage with adjacency
//! and unique indexes, time-filtered views, an interval algebra for maximal
//! assertion ranges, and the update-by-snapshot ingestion service.
//!
//! - [`store::TemporalGraph`] — the store and its mutation API.
//! - [`view::GraphView`] / [`view::TimeFilter`] — current / as-of / range
//!   scoped reads.
//! - [`interval::IntervalSet`] — the temporal algebra behind time-range
//!   query results.
//! - [`snapshot::SnapshotLoader`] — diff-based ingestion of periodic full
//!   snapshots.
//! - [`journal`] — lossless save/load of the whole temporal graph.
//!
//! ## Example: time travel
//!
//! ```
//! use std::sync::Arc;
//! use nepal_graph::TemporalGraph;
//! use nepal_schema::dsl::parse_schema;
//! use nepal_schema::Value;
//!
//! let schema = Arc::new(parse_schema("node VM { status: str }").unwrap());
//! let vm_class = schema.class_by_name("VM").unwrap();
//! let mut g = TemporalGraph::new(schema);
//! let vm = g.insert_node(vm_class, vec![Value::Str("Green".into())], 100).unwrap();
//! g.update(vm, &[(0, Value::Str("Red".into()))], 200).unwrap();
//!
//! // The current snapshot sees Red; time travel to 150 sees Green.
//! assert_eq!(g.current_fields(vm).unwrap()[0], Value::Str("Red".into()));
//! assert_eq!(g.fields_at(vm, 150).unwrap()[0], Value::Str("Green".into()));
//! ```

pub mod binsnap;
pub mod error;
pub mod fxmap;
pub mod interval;
pub mod journal;
pub mod metrics;
pub mod snapshot;
pub mod store;
pub mod view;

pub use binsnap::{
    binary_snapshot_bytes, decode_stats, load_binary, load_binary_from_file, load_binary_from_file_lenient,
    load_binary_lenient, save_binary, save_binary_to_file, schema_fingerprint, TornSnap, BIN_MAGIC,
};
pub use error::{GraphError, Result};
pub use fxmap::{FxBuildHasher, FxHashMap, FxHashSet};
pub use interval::{Interval, IntervalSet, FOREVER};
pub use journal::{
    journal_bytes, journal_lines, load_from_file, load_from_file_lenient, load_graph as load_journal,
    load_graph_lenient, save_graph as save_journal, save_to_file, TornTail,
};
pub use metrics::{resource_summary, StoreGauges};
pub use snapshot::{SnapshotEdge, SnapshotLoader, SnapshotNode, SnapshotStats};
pub use store::{
    materialize_version, value_heap_bytes, AdjEntry, AdjList, ClassAccounting, ClassHeat, ClassHeatSnapshot,
    ClassMemory, EdgeEntry, MemoryReport, NodeEntry, StoreCounts, TemporalGraph, Uid, Version, VersionData,
    KEYFRAME_INTERVAL,
};
pub use view::{AccessCost, GraphView, MatchTime, TimeFilter};
