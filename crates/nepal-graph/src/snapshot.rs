//! Update-by-snapshot service (§3.1).
//!
//! "Several data sources provide periodic snapshots of their contents
//! rather than update streams, so the graph database management layer also
//! provides an update-by-snapshot service." This module diffs an incoming
//! full snapshot against the current graph state keyed by stable *external
//! ids* supplied by the source, and translates the diff into inserts,
//! field-level updates, and deletes with a single transaction time.

use std::collections::{HashMap, HashSet};

use nepal_schema::{ClassId, Ts, Value};

use crate::error::Result;
use crate::store::{TemporalGraph, Uid};

/// One node in an incoming snapshot.
#[derive(Debug, Clone)]
pub struct SnapshotNode {
    /// Stable identifier assigned by the data source.
    pub ext_id: String,
    pub class: ClassId,
    pub fields: Vec<Value>,
}

/// One edge in an incoming snapshot, endpoints referenced by external id.
#[derive(Debug, Clone)]
pub struct SnapshotEdge {
    pub ext_id: String,
    pub class: ClassId,
    pub src_ext: String,
    pub dst_ext: String,
    pub fields: Vec<Value>,
}

/// Outcome counts of one snapshot application.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SnapshotStats {
    pub inserted: usize,
    pub updated: usize,
    pub deleted: usize,
    pub unchanged: usize,
}

/// Stateful snapshot applier; owns the external-id → uid mapping.
#[derive(Debug, Default)]
pub struct SnapshotLoader {
    nodes: HashMap<String, Uid>,
    edges: HashMap<String, Uid>,
    /// Upserts whose external id resolved to a live entity of the same
    /// shape (updated in place or unchanged).
    cache_hits: u64,
    /// Upserts that had to insert fresh (unknown id, class change, rewire).
    cache_misses: u64,
}

impl SnapshotLoader {
    pub fn new() -> Self {
        Self::default()
    }

    /// Cumulative upsert-cache hits across all applied snapshots.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits
    }

    /// Cumulative upsert-cache misses across all applied snapshots.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses
    }

    /// Resolve an external node id loaded by a previous snapshot.
    pub fn node_uid(&self, ext_id: &str) -> Option<Uid> {
        self.nodes.get(ext_id).copied()
    }

    /// Resolve an external edge id loaded by a previous snapshot.
    pub fn edge_uid(&self, ext_id: &str) -> Option<Uid> {
        self.edges.get(ext_id).copied()
    }

    /// Apply a full snapshot at transaction time `ts`.
    ///
    /// Entities present in the snapshot but not the graph are inserted;
    /// present in both with differing fields are updated; present in the
    /// graph (via this loader) but absent from the snapshot are deleted.
    /// An entity whose class changed is modeled as delete + insert.
    pub fn apply(
        &mut self,
        g: &mut TemporalGraph,
        ts: Ts,
        nodes: &[SnapshotNode],
        edges: &[SnapshotEdge],
    ) -> Result<SnapshotStats> {
        let mut stats = SnapshotStats::default();

        // --- delete phase: edges first, then nodes (cascade-safe) ---
        let edge_seen: HashSet<&str> = edges.iter().map(|e| e.ext_id.as_str()).collect();
        let node_seen: HashSet<&str> = nodes.iter().map(|n| n.ext_id.as_str()).collect();
        let stale_edges: Vec<String> = self.edges.keys().filter(|k| !edge_seen.contains(k.as_str())).cloned().collect();
        for k in stale_edges {
            let uid = self.edges.remove(&k).unwrap();
            if g.current_version(uid).is_some() {
                g.delete(uid, ts)?;
            }
            stats.deleted += 1;
        }
        let stale_nodes: Vec<String> = self.nodes.keys().filter(|k| !node_seen.contains(k.as_str())).cloned().collect();
        for k in stale_nodes {
            let uid = self.nodes.remove(&k).unwrap();
            if g.current_version(uid).is_some() {
                g.delete(uid, ts)?;
            }
            stats.deleted += 1;
        }

        // --- node upsert phase ---
        for n in nodes {
            match self.nodes.get(&n.ext_id).copied() {
                Some(uid) if g.class_of(uid) == Some(n.class) && g.current_version(uid).is_some() => {
                    self.cache_hits += 1;
                    let cur = g.current_version(uid).unwrap().fields().to_vec();
                    let changes: Vec<(usize, Value)> = cur
                        .iter()
                        .zip(&n.fields)
                        .enumerate()
                        .filter(|(_, (a, b))| a != b)
                        .map(|(i, (_, b))| (i, b.clone()))
                        .collect();
                    if changes.is_empty() {
                        stats.unchanged += 1;
                    } else {
                        g.update(uid, &changes, ts)?;
                        stats.updated += 1;
                    }
                }
                prior => {
                    self.cache_misses += 1;
                    if let Some(uid) = prior {
                        // Class changed (or zombie mapping): replace.
                        if g.current_version(uid).is_some() {
                            g.delete(uid, ts)?;
                            stats.deleted += 1;
                        }
                    }
                    let uid = g.insert_node(n.class, n.fields.clone(), ts)?;
                    self.nodes.insert(n.ext_id.clone(), uid);
                    stats.inserted += 1;
                }
            }
        }

        // --- edge upsert phase (endpoints must already be resolved) ---
        for e in edges {
            let src =
                self.nodes.get(&e.src_ext).copied().ok_or_else(|| {
                    crate::error::GraphError::BadClass(format!("unresolved endpoint `{}`", e.src_ext))
                })?;
            let dst =
                self.nodes.get(&e.dst_ext).copied().ok_or_else(|| {
                    crate::error::GraphError::BadClass(format!("unresolved endpoint `{}`", e.dst_ext))
                })?;
            match self.edges.get(&e.ext_id).copied() {
                Some(uid)
                    if g.class_of(uid) == Some(e.class)
                        && g.current_version(uid).is_some()
                        && g.edge(uid)?.src == src
                        && g.edge(uid)?.dst == dst =>
                {
                    self.cache_hits += 1;
                    let cur = g.current_version(uid).unwrap().fields().to_vec();
                    let changes: Vec<(usize, Value)> = cur
                        .iter()
                        .zip(&e.fields)
                        .enumerate()
                        .filter(|(_, (a, b))| a != b)
                        .map(|(i, (_, b))| (i, b.clone()))
                        .collect();
                    if changes.is_empty() {
                        stats.unchanged += 1;
                    } else {
                        g.update(uid, &changes, ts)?;
                        stats.updated += 1;
                    }
                }
                prior => {
                    self.cache_misses += 1;
                    if let Some(uid) = prior {
                        if g.current_version(uid).is_some() {
                            g.delete(uid, ts)?;
                            stats.deleted += 1;
                        }
                    }
                    let uid = g.insert_edge(e.class, src, dst, e.fields.clone(), ts)?;
                    self.edges.insert(e.ext_id.clone(), uid);
                    stats.inserted += 1;
                }
            }
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nepal_schema::dsl::parse_schema;
    use std::sync::Arc;

    fn setup() -> (TemporalGraph, ClassId, ClassId) {
        let s = Arc::new(
            parse_schema(
                r#"
                node VM { status: str }
                edge Link { }
                allow Link (VM -> VM)
                "#,
            )
            .unwrap(),
        );
        let vm = s.class_by_name("VM").unwrap();
        let link = s.class_by_name("Link").unwrap();
        (TemporalGraph::new(s), vm, link)
    }

    fn n(id: &str, class: ClassId, status: &str) -> SnapshotNode {
        SnapshotNode { ext_id: id.into(), class, fields: vec![Value::Str(status.into())] }
    }

    fn e(id: &str, class: ClassId, s: &str, d: &str) -> SnapshotEdge {
        SnapshotEdge { ext_id: id.into(), class, src_ext: s.into(), dst_ext: d.into(), fields: vec![] }
    }

    #[test]
    fn snapshot_diff_produces_minimal_history() {
        let (mut g, vm, link) = setup();
        let mut loader = SnapshotLoader::new();
        let s1 =
            loader.apply(&mut g, 100, &[n("a", vm, "Green"), n("b", vm, "Green")], &[e("ab", link, "a", "b")]).unwrap();
        assert_eq!(s1, SnapshotStats { inserted: 3, ..Default::default() });

        // Identical snapshot: nothing changes, no new versions.
        let before = g.num_versions();
        let s2 =
            loader.apply(&mut g, 200, &[n("a", vm, "Green"), n("b", vm, "Green")], &[e("ab", link, "a", "b")]).unwrap();
        assert_eq!(s2.unchanged, 3);
        assert_eq!(g.num_versions(), before);

        // Field change + removal.
        let s3 = loader.apply(&mut g, 300, &[n("a", vm, "Red")], &[]).unwrap();
        assert_eq!(s3.updated, 1);
        assert_eq!(s3.deleted, 2); // edge ab + node b
        let a = loader.node_uid("a").unwrap();
        assert_eq!(g.current_version(a).unwrap().fields()[0], Value::Str("Red".into()));
        // Time travel to 250: b still exists.
        let b_uid_gone = loader.node_uid("b");
        assert!(b_uid_gone.is_none());
    }

    #[test]
    fn reappearing_entity_gets_fresh_uid() {
        let (mut g, vm, _link) = setup();
        let mut loader = SnapshotLoader::new();
        loader.apply(&mut g, 100, &[n("a", vm, "Green")], &[]).unwrap();
        let old = loader.node_uid("a").unwrap();
        loader.apply(&mut g, 200, &[], &[]).unwrap();
        loader.apply(&mut g, 300, &[n("a", vm, "Green")], &[]).unwrap();
        let new = loader.node_uid("a").unwrap();
        assert_ne!(old, new);
        // History of the old incarnation is preserved.
        assert!(g.version_at(old, 150).is_some());
        assert!(g.version_at(old, 250).is_none());
    }

    #[test]
    fn endpoint_rewire_is_delete_plus_insert() {
        let (mut g, vm, link) = setup();
        let mut loader = SnapshotLoader::new();
        loader
            .apply(&mut g, 100, &[n("a", vm, "G"), n("b", vm, "G"), n("c", vm, "G")], &[e("x", link, "a", "b")])
            .unwrap();
        let old_edge = loader.edge_uid("x").unwrap();
        loader
            .apply(&mut g, 200, &[n("a", vm, "G"), n("b", vm, "G"), n("c", vm, "G")], &[e("x", link, "a", "c")])
            .unwrap();
        let new_edge = loader.edge_uid("x").unwrap();
        assert_ne!(old_edge, new_edge);
        assert!(g.current_version(old_edge).is_none());
        assert_eq!(g.edge(new_edge).unwrap().dst, loader.node_uid("c").unwrap());
    }
}
