//! Transaction-time interval algebra.
//!
//! Every node/edge version carries a half-open system-time interval
//! `[from, to)`; an entity's *assertion set* is the union of its version
//! intervals. Time-range queries (§4) intersect the assertion sets of all
//! pathway elements to produce the **maximal** time ranges during which the
//! pathway can be asserted in the database.

use std::fmt;

use nepal_schema::{format_ts, Ts};

/// Sentinel for an open-ended interval ("still current").
pub const FOREVER: Ts = Ts::MAX;

/// A half-open transaction-time interval `[from, to)`.
///
/// `to == FOREVER` means the row is still asserted (the paper renders this
/// as an absent end time, e.g. `times: ['2017-02-15 09:15', ]`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Interval {
    pub from: Ts,
    pub to: Ts,
}

impl Interval {
    /// `[from, to)`; panics if `from >= to` (empty intervals are not
    /// representable — use [`IntervalSet::empty`]).
    pub fn new(from: Ts, to: Ts) -> Interval {
        assert!(from < to, "empty or inverted interval [{from}, {to})");
        Interval { from, to }
    }

    /// `[from, ∞)`.
    pub fn since(from: Ts) -> Interval {
        Interval { from, to: FOREVER }
    }

    /// Does the interval contain the time point?
    pub fn contains(&self, t: Ts) -> bool {
        self.from <= t && t < self.to
    }

    /// Do two intervals overlap (share at least one point)?
    pub fn overlaps(&self, other: &Interval) -> bool {
        self.from < other.to && other.from < self.to
    }

    /// Intersection, if non-empty.
    pub fn intersect(&self, other: &Interval) -> Option<Interval> {
        let from = self.from.max(other.from);
        let to = self.to.min(other.to);
        (from < to).then_some(Interval { from, to })
    }

    /// Is the interval open-ended?
    pub fn is_current(&self) -> bool {
        self.to == FOREVER
    }
}

impl fmt::Display for Interval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_current() {
            write!(f, "['{}', ]", format_ts(self.from))
        } else {
            write!(f, "['{}', '{}']", format_ts(self.from), format_ts(self.to))
        }
    }
}

/// A set of times represented as sorted, disjoint, non-adjacent intervals.
#[derive(Debug, Clone, PartialEq, Eq, Default, Hash)]
pub struct IntervalSet {
    ivs: Vec<Interval>,
}

impl IntervalSet {
    pub fn empty() -> IntervalSet {
        IntervalSet { ivs: Vec::new() }
    }

    pub fn from_interval(iv: Interval) -> IntervalSet {
        IntervalSet { ivs: vec![iv] }
    }

    /// Build from arbitrary intervals: sorts, merges overlapping/adjacent.
    pub fn from_intervals(mut ivs: Vec<Interval>) -> IntervalSet {
        ivs.sort();
        let mut out: Vec<Interval> = Vec::with_capacity(ivs.len());
        for iv in ivs {
            match out.last_mut() {
                Some(last) if iv.from <= last.to => {
                    last.to = last.to.max(iv.to);
                }
                _ => out.push(iv),
            }
        }
        IntervalSet { ivs: out }
    }

    pub fn is_empty(&self) -> bool {
        self.ivs.is_empty()
    }

    pub fn intervals(&self) -> &[Interval] {
        &self.ivs
    }

    pub fn contains(&self, t: Ts) -> bool {
        // Binary search on `from`.
        match self.ivs.binary_search_by(|iv| iv.from.cmp(&t)) {
            Ok(_) => true,
            Err(0) => false,
            Err(i) => self.ivs[i - 1].contains(t),
        }
    }

    /// Append an interval known to start at-or-after every existing start
    /// (the common case when walking versions in order); merges if adjacent.
    pub fn push(&mut self, iv: Interval) {
        match self.ivs.last_mut() {
            Some(last) if iv.from <= last.to => {
                last.to = last.to.max(iv.to);
                // Maintain sortedness: if iv.from < last.from the caller
                // violated the contract; fall back to full rebuild.
                if iv.from < last.from {
                    let ivs = std::mem::take(&mut self.ivs);
                    let mut all = ivs;
                    all.push(iv);
                    *self = IntervalSet::from_intervals(all);
                }
            }
            _ => self.ivs.push(iv),
        }
    }

    /// Set union.
    pub fn union(&self, other: &IntervalSet) -> IntervalSet {
        let mut all = Vec::with_capacity(self.ivs.len() + other.ivs.len());
        all.extend_from_slice(&self.ivs);
        all.extend_from_slice(&other.ivs);
        IntervalSet::from_intervals(all)
    }

    /// Set intersection (linear merge).
    pub fn intersect(&self, other: &IntervalSet) -> IntervalSet {
        let (mut i, mut j) = (0, 0);
        let mut out = Vec::new();
        while i < self.ivs.len() && j < other.ivs.len() {
            if let Some(iv) = self.ivs[i].intersect(&other.ivs[j]) {
                out.push(iv);
            }
            if self.ivs[i].to <= other.ivs[j].to {
                i += 1;
            } else {
                j += 1;
            }
        }
        IntervalSet { ivs: out }
    }

    /// Does the set overlap the given interval?
    pub fn overlaps(&self, iv: &Interval) -> bool {
        self.ivs.iter().any(|x| x.overlaps(iv))
    }

    /// Components of the set that overlap `iv` — the *maximal* assertion
    /// ranges reported by time-range queries (deliberately **not** clamped
    /// to `iv`: the paper's §4 example reports `['02-05 06:30','02-15
    /// 09:45']` for a 9:00–11:00 query window).
    pub fn components_overlapping(&self, iv: &Interval) -> Vec<Interval> {
        self.ivs.iter().filter(|x| x.overlaps(iv)).copied().collect()
    }

    /// Earliest time point in the set, if any (First Time When Exists, §4).
    pub fn first(&self) -> Option<Ts> {
        self.ivs.first().map(|iv| iv.from)
    }

    /// Latest time point in the set: end of the last interval, or `None`
    /// end if still current (Last Time When Exists, §4).
    pub fn last(&self) -> Option<Interval> {
        self.ivs.last().copied()
    }
}

impl fmt::Display for IntervalSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, iv) in self.ivs.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{iv}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn iv(a: Ts, b: Ts) -> Interval {
        Interval::new(a, b)
    }

    #[test]
    fn merge_adjacent_and_overlapping() {
        let s = IntervalSet::from_intervals(vec![iv(5, 10), iv(0, 5), iv(20, 30), iv(8, 12)]);
        assert_eq!(s.intervals(), &[iv(0, 12), iv(20, 30)]);
    }

    #[test]
    fn intersection_basic() {
        let a = IntervalSet::from_intervals(vec![iv(0, 10), iv(20, 30)]);
        let b = IntervalSet::from_intervals(vec![iv(5, 25)]);
        assert_eq!(a.intersect(&b).intervals(), &[iv(5, 10), iv(20, 25)]);
    }

    #[test]
    fn intersection_with_open_end() {
        let a = IntervalSet::from_interval(Interval::since(10));
        let b = IntervalSet::from_intervals(vec![iv(0, 15), Interval::since(100)]);
        assert_eq!(a.intersect(&b).intervals(), &[iv(10, 15), Interval::since(100)]);
    }

    #[test]
    fn contains_uses_half_open_semantics() {
        let s = IntervalSet::from_interval(iv(10, 20));
        assert!(!s.contains(9));
        assert!(s.contains(10));
        assert!(s.contains(19));
        assert!(!s.contains(20));
    }

    #[test]
    fn components_overlapping_reports_maximal_ranges() {
        // Mirrors the paper's example: assertion [06:30, 09:45) overlaps a
        // [09:00, 11:00] query window and is reported un-clamped.
        let s = IntervalSet::from_intervals(vec![iv(630, 945), Interval::since(915)]);
        // from_intervals merges those two (overlap), so rebuild disjoint:
        let s2 = IntervalSet::from_intervals(vec![iv(630, 900), Interval::since(915)]);
        assert_eq!(s.components_overlapping(&iv(900, 1100)).len(), 1);
        let comps = s2.components_overlapping(&iv(900, 1100));
        assert_eq!(comps, vec![Interval::since(915)]);
    }

    #[test]
    fn push_merges_in_order() {
        let mut s = IntervalSet::empty();
        s.push(iv(0, 5));
        s.push(iv(5, 8)); // adjacent → merge
        s.push(iv(10, 12));
        assert_eq!(s.intervals(), &[iv(0, 8), iv(10, 12)]);
    }

    #[test]
    fn first_and_last() {
        let s = IntervalSet::from_intervals(vec![iv(3, 5), Interval::since(9)]);
        assert_eq!(s.first(), Some(3));
        assert!(s.last().unwrap().is_current());
    }
}
