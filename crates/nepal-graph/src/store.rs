//! The native temporal graph store.
//!
//! A transaction-time graph database (§4, §5.3): every node and edge carries
//! a sequence of *versions*, each with its field values and a half-open
//! system-time interval. The current snapshot is simply the set of versions
//! whose interval is still open — so history queries and snapshot queries
//! run against the same structure, and storing 60 days of history costs a
//! few percent rather than 60 full copies (§6.1).
//!
//! Storage is **class-partitioned**: every class keeps its own extent list,
//! which is what makes anchored scans over `VM()` ignore the millions of
//! irrelevant legacy entities (the paper's Table-3 partitioning win).

use std::borrow::Cow;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use nepal_schema::{ClassId, ClassKind, Schema, Ts, Value};

use crate::error::{GraphError, Result};
use crate::interval::{Interval, IntervalSet};

/// Unique identifier of a node or edge. Uids are dense indices assigned by
/// the store; nodes and edges share one uid space (as in the paper's
/// `uid_list` path representation, which mixes both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Uid(pub u64);

/// Every `KEYFRAME_INTERVAL`-th version in a chain is kept as a full
/// keyframe; versions between keyframes store backward deltas. Bounds the
/// work to materialize any historical version while deep chains under
/// churn keep only the fields that actually changed.
pub const KEYFRAME_INTERVAL: usize = 16;

/// Payload of one stored version: either the full field vector, or — for
/// history versions between keyframes — a backward delta holding *this*
/// version's values for exactly the fields that differ from the next
/// (newer) version in the chain.
#[derive(Debug, Clone)]
pub enum VersionData {
    Full(Vec<Value>),
    Delta(Box<[(u32, Value)]>),
}

/// One version of an entity: field values asserted during `span`.
///
/// The newest version of a chain is always stored [`VersionData::Full`]
/// (the hot current-snapshot path never materializes); older versions may
/// be backward deltas — read them through
/// [`materialize_version`] / [`TemporalGraph::fields_at`].
#[derive(Debug, Clone)]
pub struct Version {
    pub(crate) data: VersionData,
    pub span: Interval,
}

impl Version {
    /// A fully-materialized version.
    pub fn full(fields: Vec<Value>, span: Interval) -> Version {
        Version { data: VersionData::Full(fields), span }
    }

    /// The stored payload (full values or backward delta).
    pub fn data(&self) -> &VersionData {
        &self.data
    }

    /// Is this version stored as a backward delta?
    pub fn is_delta(&self) -> bool {
        matches!(self.data, VersionData::Delta(_))
    }

    /// Field values of a fully-stored version. Panics on a delta-encoded
    /// history version — those must be read via
    /// [`materialize_version`] or [`TemporalGraph::fields_at`].
    pub fn fields(&self) -> &[Value] {
        match &self.data {
            VersionData::Full(f) => f,
            VersionData::Delta(_) => {
                panic!("delta-encoded history version read directly; materialize via fields_at()")
            }
        }
    }
}

/// Materialize the field values of `versions[i]`. Full versions are
/// returned borrowed; delta versions are reconstructed by copying the
/// nearest newer full version (keyframes guarantee one within
/// [`KEYFRAME_INTERVAL`]) and applying the backward deltas down to `i`.
pub fn materialize_version(versions: &[Version], i: usize) -> Cow<'_, [Value]> {
    match &versions[i].data {
        VersionData::Full(f) => Cow::Borrowed(f.as_slice()),
        VersionData::Delta(_) => {
            let j = (i + 1..versions.len())
                .find(|&k| matches!(versions[k].data, VersionData::Full(_)))
                .expect("chain head is always a full version");
            let mut fields = match &versions[j].data {
                VersionData::Full(f) => f.clone(),
                VersionData::Delta(_) => unreachable!(),
            };
            for k in (i..j).rev() {
                match &versions[k].data {
                    VersionData::Delta(d) => {
                        for (idx, v) in d.iter() {
                            fields[*idx as usize] = v.clone();
                        }
                    }
                    VersionData::Full(f) => fields.clone_from(f),
                }
            }
            Cow::Owned(fields)
        }
    }
}

/// The backward delta of `older` against `newer`: `older`'s values at
/// exactly the indices where the two differ.
fn field_delta(older: &[Value], newer: &[Value]) -> Vec<(u32, Value)> {
    older
        .iter()
        .zip(newer.iter())
        .enumerate()
        .filter(|(_, (o, n))| o != n)
        .map(|(i, (o, _))| (i as u32, o.clone()))
        .collect()
}

/// Canonical encoding decision for chain position `i` of `chain_len`:
/// the head and every `KEYFRAME_INTERVAL`-th version stay full; everything
/// between is a delta **iff** the delta is narrower than the field count
/// (an all-fields delta costs more than the full vector it replaces).
/// Both the live mutation path and every restore path (journal, binary
/// snapshot) must follow this rule so byte accounting is reproducible.
fn canonical_keep_full(i: usize, chain_len: usize) -> bool {
    i + 1 == chain_len || i.is_multiple_of(KEYFRAME_INTERVAL)
}

/// Encode a closed history version per the canonical width rule: delta
/// against the next-newer version iff strictly narrower than the full
/// field vector (otherwise the full values stay, e.g. field-less edges or
/// every-field rewrites).
fn encode_history(older: Vec<Value>, newer: &[Value]) -> VersionData {
    let delta = field_delta(&older, newer);
    if delta.len() < older.len() {
        VersionData::Delta(delta.into_boxed_slice())
    } else {
        VersionData::Full(older)
    }
}

/// A stored node.
#[derive(Debug, Clone)]
pub struct NodeEntry {
    pub uid: Uid,
    pub class: ClassId,
    /// Versions in chronological order; spans never overlap.
    pub versions: Vec<Version>,
}

/// A stored edge. Endpoints are immutable for the lifetime of the uid
/// (a moved connection is a delete + insert, as in real inventory feeds).
#[derive(Debug, Clone)]
pub struct EdgeEntry {
    pub uid: Uid,
    pub class: ClassId,
    pub src: Uid,
    pub dst: Uid,
    pub versions: Vec<Version>,
}

#[derive(Debug, Clone)]
enum Entry {
    Node(NodeEntry),
    Edge(EdgeEntry),
}

impl Entry {
    fn versions(&self) -> &[Version] {
        match self {
            Entry::Node(n) => &n.versions,
            Entry::Edge(e) => &e.versions,
        }
    }

    fn versions_mut(&mut self) -> &mut Vec<Version> {
        match self {
            Entry::Node(n) => &mut n.versions,
            Entry::Edge(e) => &mut e.versions,
        }
    }

    fn class(&self) -> ClassId {
        match self {
            Entry::Node(n) => n.class,
            Entry::Edge(e) => e.class,
        }
    }
}

/// An adjacency record: the connecting edge, the opposite endpoint, and —
/// denormalized for the evaluator's hot path — the edge's exact class and
/// direction, so `Extend` can match a neighbor without an `edge()` lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdjEntry {
    pub edge: Uid,
    pub other: Uid,
    /// Exact class of `edge` (classes are immutable per entity).
    pub class: ClassId,
    /// `true` when this entry sits in an out-adjacency list (edge leaves
    /// the owning node), `false` for in-adjacency.
    pub out: bool,
}

/// One class run inside an [`AdjList`]: entries `[start, start+len)` all
/// have exactly `class`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AdjBucket {
    class: ClassId,
    start: u32,
    len: u32,
}

/// A node's adjacency list, kept grouped by exact edge class so the
/// evaluator can skip whole classes that no NFA transition can match
/// (two array reads instead of a per-neighbor lookup).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdjList {
    entries: Vec<AdjEntry>,
    buckets: Vec<AdjBucket>,
}

/// Shared empty list for uids without an adjacency slot.
static EMPTY_ADJ: AdjList = AdjList { entries: Vec::new(), buckets: Vec::new() };

impl AdjList {
    /// All entries, grouped by exact edge class (insertion order within a
    /// class, classes in first-seen order).
    pub fn entries(&self) -> &[AdjEntry] {
        &self.entries
    }

    /// Iterate `(exact edge class, entries of that class)` runs.
    pub fn buckets(&self) -> impl Iterator<Item = (ClassId, &[AdjEntry])> {
        self.buckets.iter().map(|b| (b.class, &self.entries[b.start as usize..(b.start + b.len) as usize]))
    }

    /// Insert an entry, returning whether a new class bucket was created
    /// (the accounting hook charges bucket overhead on first use).
    fn insert(&mut self, e: AdjEntry) -> bool {
        // Fast path: bulk load inserts edges in class runs, so the hit is
        // almost always the most recent bucket — and the last bucket's run
        // always ends at `entries.len()`, making the insert a pure push
        // with no mid-array shifting and no O(#classes) scan.
        if let Some(b) = self.buckets.last_mut() {
            if b.class == e.class {
                b.len += 1;
                self.entries.push(e);
                return false;
            }
        }
        if let Some(i) = self.buckets.iter().position(|b| b.class == e.class) {
            let at = (self.buckets[i].start + self.buckets[i].len) as usize;
            self.entries.insert(at, e);
            self.buckets[i].len += 1;
            for b in &mut self.buckets[i + 1..] {
                b.start += 1;
            }
            false
        } else {
            self.buckets.push(AdjBucket { class: e.class, start: self.entries.len() as u32, len: 1 });
            self.entries.push(e);
            true
        }
    }

    /// Estimated heap bytes of this list under the accounting model:
    /// entry array + bucket array (the `AdjList` header itself is charged
    /// by the owner).
    fn heap_bytes(&self) -> u64 {
        self.entries.len() as u64 * ADJ_ENTRY_BYTES + self.buckets.len() as u64 * ADJ_BUCKET_BYTES
    }
}

// ----------------------------------------------------------------------
// Resource accounting (estimated heap bytes)
// ----------------------------------------------------------------------

/// Inline size of one [`Value`] slot (vector element / field cell).
pub(crate) const VALUE_SLOT_BYTES: u64 = std::mem::size_of::<Value>() as u64;
/// Inline size of one [`Version`] inside an entity's version vector.
pub(crate) const VERSION_BYTES: u64 = std::mem::size_of::<Version>() as u64;
/// Inline size of one backward-delta slot (`(field index, value)`).
const DELTA_SLOT_BYTES: u64 = std::mem::size_of::<(u32, Value)>() as u64;
/// Per-entity overhead: the `Entry` slot in the entry table, the
/// adjacency-slot index, and the extent-list uid.
const ENTRY_OVERHEAD_BYTES: u64 =
    (std::mem::size_of::<Entry>() + std::mem::size_of::<u32>() + std::mem::size_of::<Uid>()) as u64;
const ADJ_ENTRY_BYTES: u64 = std::mem::size_of::<AdjEntry>() as u64;
const ADJ_BUCKET_BYTES: u64 = std::mem::size_of::<AdjBucket>() as u64;
/// Per-node adjacency base: one out and one in `AdjList` header.
const ADJ_NODE_BYTES: u64 = 2 * std::mem::size_of::<AdjList>() as u64;
/// Flat estimate for a hash-map header (unique-index accounting).
const MAP_HEADER_BYTES: u64 = 48;

/// Estimated heap bytes owned by `v` beyond its inline enum slot.
/// Strings are charged at `len` (capacity is unobservable), containers at
/// one slot per element plus their elements' own heap.
pub fn value_heap_bytes(v: &Value) -> u64 {
    match v {
        Value::Str(s) => s.len() as u64,
        Value::List(vs) | Value::Set(vs) | Value::Composite(vs) => {
            vs.len() as u64 * VALUE_SLOT_BYTES + vs.iter().map(value_heap_bytes).sum::<u64>()
        }
        Value::Map(m) => {
            m.iter().map(|(k, val)| 2 * VALUE_SLOT_BYTES + value_heap_bytes(k) + value_heap_bytes(val)).sum()
        }
        _ => 0,
    }
}

/// Heap owned by one field vector: the slots plus each value's own heap.
fn fields_heap_bytes(fields: &[Value]) -> u64 {
    fields.len() as u64 * VALUE_SLOT_BYTES + fields.iter().map(value_heap_bytes).sum::<u64>()
}

/// Bytes one fully-stored version contributes: its slot in the version
/// vector plus its field payload. Also the *full-equivalent* cost of a
/// delta version (what it would cost uncompressed).
pub(crate) fn version_heap_bytes(fields: &[Value]) -> u64 {
    VERSION_BYTES + fields_heap_bytes(fields)
}

/// Heap owned by one backward delta: its slots plus each value's heap.
fn delta_heap_bytes(delta: &[(u32, Value)]) -> u64 {
    delta.len() as u64 * DELTA_SLOT_BYTES + delta.iter().map(|(_, v)| value_heap_bytes(v)).sum::<u64>()
}

/// Actual stored bytes of one version under the accounting model,
/// whichever representation it uses.
pub(crate) fn stored_version_bytes(v: &Version) -> u64 {
    match &v.data {
        VersionData::Full(f) => version_heap_bytes(f),
        VersionData::Delta(d) => VERSION_BYTES + delta_heap_bytes(d),
    }
}

/// Incrementally maintained per-class accounting (one entry per exact
/// class; future partitions split along the same axis).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassAccounting {
    /// Uids ever created with this exact class.
    pub entities: u64,
    /// Stored versions, current + history.
    pub versions: u64,
    /// Estimated heap bytes: entry slots, version chains (as actually
    /// stored — deltas charged at delta cost), field payloads.
    pub bytes: u64,
    /// Full-equivalent heap bytes: what `bytes` would be if every history
    /// version were stored uncompressed. `1 - bytes/full_bytes` is the
    /// delta-encoding saving.
    pub full_bytes: u64,
}

/// Per-class footprint inside a [`MemoryReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassMemory {
    pub class: ClassId,
    pub name: String,
    pub kind: ClassKind,
    pub entities: u64,
    pub alive: u64,
    pub versions: u64,
    pub bytes: u64,
    /// What `bytes` would be without delta-encoded history.
    pub full_bytes: u64,
}

/// A point-in-time snapshot of the store's estimated memory footprint.
/// Produced incrementally by [`TemporalGraph::memory_report`] and by the
/// brute-force [`TemporalGraph::memory_recount`] walk (the two must agree
/// — see the churn proptest).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryReport {
    /// Classes with at least one entity, in class-id order.
    pub classes: Vec<ClassMemory>,
    /// Σ class bytes.
    pub entity_bytes: u64,
    /// Σ class full-equivalent bytes (entity bytes without delta-encoded
    /// history); `delta_savings_pct` derives the saving from this.
    pub entity_full_bytes: u64,
    /// Adjacency lists: headers, entry arrays, class-run buckets.
    pub adjacency_bytes: u64,
    /// Unique indexes: map headers plus key/uid payloads.
    pub unique_index_bytes: u64,
    /// Size in bytes of a full journal save (durability, not heap).
    pub journal_bytes: u64,
    /// entity + adjacency + unique-index bytes.
    pub total_bytes: u64,
    /// Version-chain length distribution as log₂ `(≤ bound, entities)`
    /// pairs over non-empty buckets.
    pub chain_histogram: Vec<(u64, u64)>,
}

impl MemoryReport {
    /// Percentage of version-history heap saved by delta encoding:
    /// `100 * (1 - entity_bytes / entity_full_bytes)`. Zero on an empty
    /// or delta-free store.
    pub fn delta_savings_pct(&self) -> f64 {
        if self.entity_full_bytes == 0 {
            return 0.0;
        }
        100.0 * (1.0 - self.entity_bytes as f64 / self.entity_full_bytes as f64)
    }
}

/// Per-kind storage totals (see [`TemporalGraph::counts`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounts {
    pub nodes: u64,
    pub edges: u64,
    /// Stored node versions, current + history.
    pub node_versions: u64,
    /// Stored edge versions, current + history.
    pub edge_versions: u64,
    /// Nodes whose latest version is still asserted.
    pub alive_nodes: u64,
    /// Edges whose latest version is still asserted.
    pub alive_edges: u64,
}

/// Per-class read-path access counters (the store heatmap): how often each
/// class partition is scanned, seeked, and how many version reads were
/// delta materializations vs. keyframe hits. Relaxed atomics so the
/// shared read path (`&self`) can maintain them; counts are *physical* —
/// parallel workers re-deriving a read each count it — which is the right
/// semantics for cumulative monitoring and the omni-index planner input.
#[derive(Debug, Default)]
pub struct ClassHeat {
    /// Extent scans over this exact class.
    pub scans: AtomicU64,
    /// Elements yielded by those extent scans.
    pub scan_rows: AtomicU64,
    /// Unique-index point lookups attributed to this class.
    pub seeks: AtomicU64,
    /// Version reads that had to materialize a delta-encoded version.
    pub materializations: AtomicU64,
    /// Version reads satisfied directly by a full (keyframe) version.
    pub keyframe_hits: AtomicU64,
    /// Field-slot bytes read (record width x slot size per version read).
    pub bytes_read: AtomicU64,
}

impl ClassHeat {
    #[inline]
    fn version_read(&self, is_delta: bool, width: usize) {
        if is_delta {
            self.materializations.fetch_add(1, Ordering::Relaxed);
        } else {
            self.keyframe_hits.fetch_add(1, Ordering::Relaxed);
        }
        self.bytes_read.fetch_add(width as u64 * VALUE_SLOT_BYTES, Ordering::Relaxed);
    }

    pub fn snapshot(&self) -> ClassHeatSnapshot {
        ClassHeatSnapshot {
            scans: self.scans.load(Ordering::Relaxed),
            scan_rows: self.scan_rows.load(Ordering::Relaxed),
            seeks: self.seeks.load(Ordering::Relaxed),
            materializations: self.materializations.load(Ordering::Relaxed),
            keyframe_hits: self.keyframe_hits.load(Ordering::Relaxed),
            bytes_read: self.bytes_read.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value copy of one class's [`ClassHeat`] counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassHeatSnapshot {
    pub scans: u64,
    pub scan_rows: u64,
    pub seeks: u64,
    pub materializations: u64,
    pub keyframe_hits: u64,
    pub bytes_read: u64,
}

impl ClassHeatSnapshot {
    /// Any read-path activity at all on this class?
    pub fn is_hot(&self) -> bool {
        self.scans > 0 || self.seeks > 0 || self.materializations > 0 || self.keyframe_hits > 0
    }
}

/// The temporal graph store.
pub struct TemporalGraph {
    schema: Arc<Schema>,
    entries: Vec<Entry>,
    /// uid → adjacency slot (nodes only; `u32::MAX` for edges).
    adj_slot: Vec<u32>,
    out_adj: Vec<AdjList>,
    in_adj: Vec<AdjList>,
    /// Per exact class: every uid ever created with that class.
    extents: Vec<Vec<Uid>>,
    /// Per exact class: number of currently asserted entities (statistics
    /// for the anchor-costing optimizer, §5.1).
    alive: Vec<u64>,
    /// Unique index: (declaring class, field index) → value → holder uid.
    unique: HashMap<(ClassId, usize), HashMap<Value, Uid>>,
    /// Total number of versions ever stored (history accounting, §6.1).
    version_count: u64,
    /// Per exact class: incremental entity/version/byte accounting.
    acct: Vec<ClassAccounting>,
    /// Incremental adjacency-structure bytes (lists, entries, buckets).
    adj_bytes: u64,
    /// Per exact class: read-path access heatmap (scans, seeks,
    /// materializations, bytes read) — input for the adaptive planner.
    heat: Vec<ClassHeat>,
}

impl TemporalGraph {
    pub fn new(schema: Arc<Schema>) -> TemporalGraph {
        let n = schema.num_classes();
        TemporalGraph {
            schema,
            entries: Vec::new(),
            adj_slot: Vec::new(),
            out_adj: Vec::new(),
            in_adj: Vec::new(),
            extents: vec![Vec::new(); n],
            alive: vec![0; n],
            unique: HashMap::new(),
            version_count: 0,
            acct: vec![ClassAccounting::default(); n],
            adj_bytes: 0,
            heat: std::iter::repeat_with(ClassHeat::default).take(n).collect(),
        }
    }

    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Total number of uids (nodes + edges) ever created.
    pub fn num_entities(&self) -> usize {
        self.entries.len()
    }

    /// Total number of stored versions (current + history).
    pub fn num_versions(&self) -> u64 {
        self.version_count
    }

    /// Per-kind storage totals, for metric export. O(classes), derived
    /// from the incrementally maintained per-class accounting — cheap
    /// enough to refresh per query, not just per scrape.
    pub fn counts(&self) -> StoreCounts {
        let mut c = StoreCounts::default();
        for (i, acct) in self.acct.iter().enumerate() {
            let class = ClassId(i as u32);
            match self.schema.kind(class) {
                ClassKind::Node => {
                    c.nodes += acct.entities;
                    c.node_versions += acct.versions;
                    c.alive_nodes += self.alive[i];
                }
                ClassKind::Edge => {
                    c.edges += acct.entities;
                    c.edge_versions += acct.versions;
                    c.alive_edges += self.alive[i];
                }
            }
        }
        c
    }

    /// The incrementally maintained per-class accounting, indexed by
    /// exact [`ClassId`]. O(1) access for pull-time gauges.
    pub fn class_accounting(&self) -> &[ClassAccounting] {
        &self.acct
    }

    /// The class that declares layout index `idx` for `class` (the ancestor
    /// whose own-field range contains `idx`). Unique indexes are keyed on
    /// the declaring class so all subclasses share the constraint.
    fn declaring_class(&self, class: ClassId, idx: usize) -> ClassId {
        let mut chain = self.schema.ancestors(class);
        chain.reverse(); // root → leaf
        let mut offset = 0usize;
        for c in chain {
            let own = self.schema.class(c).own_fields.len();
            if idx < offset + own {
                return c;
            }
            offset += own;
        }
        class
    }

    // ------------------------------------------------------------------
    // Mutation API
    // ------------------------------------------------------------------

    fn check_unique_free(&self, class: ClassId, fields: &[Value]) -> Result<()> {
        for idx in self.schema.unique_fields(class) {
            let v = &fields[idx];
            if v.is_null() {
                continue;
            }
            let key = (self.declaring_class(class, idx), idx);
            if let Some(m) = self.unique.get(&key) {
                if m.contains_key(v) {
                    return Err(GraphError::UniqueViolation {
                        class: self.schema.class(class).name.clone(),
                        field: self.schema.all_fields(class)[idx].name.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    fn index_unique(&mut self, class: ClassId, fields: &[Value], uid: Uid) {
        for idx in self.schema.unique_fields(class) {
            let v = &fields[idx];
            if v.is_null() {
                continue;
            }
            let key = (self.declaring_class(class, idx), idx);
            self.unique.entry(key).or_default().insert(v.clone(), uid);
        }
    }

    fn unindex_unique(&mut self, class: ClassId, fields: &[Value]) {
        for idx in self.schema.unique_fields(class) {
            let v = &fields[idx];
            if v.is_null() {
                continue;
            }
            let key = (self.declaring_class(class, idx), idx);
            if let Some(m) = self.unique.get_mut(&key) {
                m.remove(v);
            }
        }
    }

    /// Insert a node of `class` asserted from `ts`.
    pub fn insert_node(&mut self, class: ClassId, fields: Vec<Value>, ts: Ts) -> Result<Uid> {
        if self.schema.kind(class) != ClassKind::Node {
            return Err(GraphError::BadClass(self.schema.class(class).name.clone()));
        }
        self.schema.validate_record(class, &fields)?;
        self.check_unique_free(class, &fields)?;
        let uid = Uid(self.entries.len() as u64);
        self.index_unique(class, &fields, uid);
        let heap = ENTRY_OVERHEAD_BYTES + version_heap_bytes(&fields);
        self.entries.push(Entry::Node(NodeEntry {
            uid,
            class,
            versions: vec![Version::full(fields, Interval::since(ts))],
        }));
        let slot = self.out_adj.len() as u32;
        self.adj_slot.push(slot);
        self.out_adj.push(AdjList::default());
        self.in_adj.push(AdjList::default());
        self.extents[class.0 as usize].push(uid);
        self.alive[class.0 as usize] += 1;
        self.version_count += 1;
        let acct = &mut self.acct[class.0 as usize];
        acct.entities += 1;
        acct.versions += 1;
        acct.bytes += heap;
        acct.full_bytes += heap;
        self.adj_bytes += ADJ_NODE_BYTES;
        nepal_obs::flight::emit(nepal_obs::FlightKind::JournalMutation, uid.0, class.0 as u64, 0, "insert_node");
        Ok(uid)
    }

    /// Insert an edge of `class` from `src` to `dst`, asserted from `ts`.
    /// Both endpoints must be currently asserted and the schema's
    /// allowed-edge rules must permit the connection.
    pub fn insert_edge(&mut self, class: ClassId, src: Uid, dst: Uid, fields: Vec<Value>, ts: Ts) -> Result<Uid> {
        if self.schema.kind(class) != ClassKind::Edge {
            return Err(GraphError::BadClass(self.schema.class(class).name.clone()));
        }
        self.schema.validate_record(class, &fields)?;
        let src_class = self.node(src)?.class;
        let dst_class = self.node(dst)?.class;
        if self.current_version(src).is_none() {
            return Err(GraphError::Dead { uid: src, at: ts });
        }
        if self.current_version(dst).is_none() {
            return Err(GraphError::Dead { uid: dst, at: ts });
        }
        if !self.schema.edge_allowed(class, src_class, dst_class) {
            return Err(GraphError::EdgeNotAllowed {
                edge_class: self.schema.class(class).name.clone(),
                src_class: self.schema.class(src_class).name.clone(),
                dst_class: self.schema.class(dst_class).name.clone(),
            });
        }
        self.check_unique_free(class, &fields)?;
        let uid = Uid(self.entries.len() as u64);
        self.index_unique(class, &fields, uid);
        let heap = ENTRY_OVERHEAD_BYTES + version_heap_bytes(&fields);
        self.entries.push(Entry::Edge(EdgeEntry {
            uid,
            class,
            src,
            dst,
            versions: vec![Version::full(fields, Interval::since(ts))],
        }));
        self.adj_slot.push(u32::MAX);
        let (ss, ds) = (self.adj_slot[src.0 as usize] as usize, self.adj_slot[dst.0 as usize] as usize);
        let new_out = self.out_adj[ss].insert(AdjEntry { edge: uid, other: dst, class, out: true });
        let new_in = self.in_adj[ds].insert(AdjEntry { edge: uid, other: src, class, out: false });
        self.extents[class.0 as usize].push(uid);
        self.alive[class.0 as usize] += 1;
        self.version_count += 1;
        let acct = &mut self.acct[class.0 as usize];
        acct.entities += 1;
        acct.versions += 1;
        acct.bytes += heap;
        acct.full_bytes += heap;
        self.adj_bytes += 2 * ADJ_ENTRY_BYTES + (new_out as u64 + new_in as u64) * ADJ_BUCKET_BYTES;
        nepal_obs::flight::emit(nepal_obs::FlightKind::JournalMutation, uid.0, class.0 as u64, 0, "insert_edge");
        Ok(uid)
    }

    /// Update fields of a currently asserted entity: closes the current
    /// version at `ts` and opens a new one.
    pub fn update(&mut self, uid: Uid, changes: &[(usize, Value)], ts: Ts) -> Result<()> {
        let entry = self.entries.get(uid.0 as usize).ok_or(GraphError::UnknownUid(uid))?;
        let class = entry.class();
        let cur = entry.versions().last().filter(|v| v.span.is_current()).ok_or(GraphError::Dead { uid, at: ts })?;
        if ts < cur.span.from {
            return Err(GraphError::NonMonotonicTs { uid, last: cur.span.from, got: ts });
        }
        let mut new_fields = cur.fields().to_vec();
        for (idx, v) in changes {
            if *idx >= new_fields.len() {
                return Err(GraphError::Schema(nepal_schema::SchemaError::UnknownField {
                    class: self.schema.class(class).name.clone(),
                    field: format!("#{idx}"),
                }));
            }
            new_fields[*idx] = v.clone();
        }
        self.schema.validate_record(class, &new_fields)?;
        // Re-key unique index for changed unique fields.
        let old_fields = cur.fields().to_vec();
        for idx in self.schema.unique_fields(class) {
            if old_fields[idx] == new_fields[idx] {
                continue;
            }
            let key = (self.declaring_class(class, idx), idx);
            if !new_fields[idx].is_null() {
                if let Some(m) = self.unique.get(&key) {
                    if let Some(&holder) = m.get(&new_fields[idx]) {
                        if holder != uid {
                            return Err(GraphError::UniqueViolation {
                                class: self.schema.class(class).name.clone(),
                                field: self.schema.all_fields(class)[idx].name.clone(),
                            });
                        }
                    }
                }
            }
            let m = self.unique.entry(key).or_default();
            if !old_fields[idx].is_null() {
                m.remove(&old_fields[idx]);
            }
            if !new_fields[idx].is_null() {
                m.insert(new_fields[idx].clone(), uid);
            }
        }
        let new_heap = fields_heap_bytes(&new_fields);
        let entry = &mut self.entries[uid.0 as usize];
        let versions = entry.versions_mut();
        let same_instant = versions.last().unwrap().span.from == ts;
        let acct = &mut self.acct[class.0 as usize];
        if same_instant {
            // Same-instant update: replace in place (no zero-length version).
            let old_heap = fields_heap_bytes(&old_fields);
            acct.bytes = acct.bytes + new_heap - old_heap;
            acct.full_bytes = acct.full_bytes + new_heap - old_heap;
            // The head's values change, so the backward delta of the
            // previous version (encoded against the head) must be
            // recomputed or its materialization would silently pick up
            // the rewritten values.
            if versions.len() >= 2 {
                let prev_idx = versions.len() - 2;
                if !canonical_keep_full(prev_idx, versions.len()) {
                    let prev_values = materialize_version(versions, prev_idx).into_owned();
                    let old_stored = stored_version_bytes(&versions[prev_idx]);
                    versions[prev_idx].data = encode_history(prev_values, &new_fields);
                    acct.bytes = acct.bytes + stored_version_bytes(&versions[prev_idx]) - old_stored;
                }
            }
            let last = versions.last_mut().unwrap();
            last.data = VersionData::Full(new_fields);
        } else {
            // Close the head and demote it to a backward delta against the
            // incoming version (we hold both value vectors — no
            // materialization needed), unless it sits on a keyframe slot.
            let head_idx = versions.len() - 1;
            let last = versions.last_mut().unwrap();
            last.span = Interval::new(last.span.from, ts);
            if !head_idx.is_multiple_of(KEYFRAME_INTERVAL) {
                let old_stored = stored_version_bytes(last);
                last.data = encode_history(old_fields, &new_fields);
                acct.bytes = acct.bytes + stored_version_bytes(last) - old_stored;
            }
            versions.push(Version::full(new_fields, Interval::since(ts)));
            self.version_count += 1;
            acct.versions += 1;
            acct.bytes += VERSION_BYTES + new_heap;
            acct.full_bytes += VERSION_BYTES + new_heap;
        }
        nepal_obs::flight::emit(nepal_obs::FlightKind::JournalMutation, uid.0, class.0 as u64, 0, "update");
        Ok(())
    }

    /// Delete (close the assertion of) an entity at `ts`. Deleting a node
    /// cascades to all its currently asserted incident edges, mirroring the
    /// referential behaviour of inventory feeds.
    pub fn delete(&mut self, uid: Uid, ts: Ts) -> Result<()> {
        let entry = self.entries.get(uid.0 as usize).ok_or(GraphError::UnknownUid(uid))?;
        let is_node = matches!(entry, Entry::Node(_));
        if is_node {
            let slot = self.adj_slot[uid.0 as usize] as usize;
            let incident: Vec<Uid> =
                self.out_adj[slot].entries.iter().chain(self.in_adj[slot].entries.iter()).map(|a| a.edge).collect();
            for e in incident {
                if self.current_version(e).is_some() {
                    self.close_entry(e, ts)?;
                }
            }
        }
        self.close_entry(uid, ts)
    }

    fn close_entry(&mut self, uid: Uid, ts: Ts) -> Result<()> {
        let entry = &self.entries[uid.0 as usize];
        let class = entry.class();
        let cur = entry.versions().last().filter(|v| v.span.is_current()).ok_or(GraphError::Dead { uid, at: ts })?;
        if ts < cur.span.from {
            return Err(GraphError::NonMonotonicTs { uid, last: cur.span.from, got: ts });
        }
        let fields = cur.fields().to_vec();
        self.unindex_unique(class, &fields);
        let entry = &mut self.entries[uid.0 as usize];
        let versions = entry.versions_mut();
        let last = versions.last_mut().unwrap();
        if last.span.from == ts {
            // Inserted and deleted at the same instant: drop the version.
            let dropped = versions.pop().expect("current version exists");
            self.version_count -= 1;
            let acct = &mut self.acct[class.0 as usize];
            acct.versions -= 1;
            acct.bytes -= stored_version_bytes(&dropped);
            acct.full_bytes -= version_heap_bytes(dropped.fields());
            // The popped head was the delta base of the version below it;
            // that version is the new chain head and must go back to full
            // storage (the head-is-full invariant every reader relies on).
            if let Some(new_last) = versions.last_mut() {
                if let VersionData::Delta(d) = &new_last.data {
                    let mut values = dropped.fields().to_vec();
                    for (idx, v) in d.iter() {
                        values[*idx as usize] = v.clone();
                    }
                    let old_stored = stored_version_bytes(new_last);
                    new_last.data = VersionData::Full(values);
                    acct.bytes = acct.bytes + stored_version_bytes(new_last) - old_stored;
                }
            }
        } else {
            last.span = Interval::new(last.span.from, ts);
        }
        self.alive[class.0 as usize] = self.alive[class.0 as usize].saturating_sub(1);
        nepal_obs::flight::emit(nepal_obs::FlightKind::JournalMutation, uid.0, class.0 as u64, 0, "delete");
        Ok(())
    }

    // ------------------------------------------------------------------
    // Lookup API
    // ------------------------------------------------------------------

    pub fn is_node(&self, uid: Uid) -> bool {
        matches!(self.entries.get(uid.0 as usize), Some(Entry::Node(_)))
    }

    pub fn node(&self, uid: Uid) -> Result<&NodeEntry> {
        match self.entries.get(uid.0 as usize) {
            Some(Entry::Node(n)) => Ok(n),
            Some(Entry::Edge(_)) => Err(GraphError::WrongKind { uid, expected: "node" }),
            None => Err(GraphError::UnknownUid(uid)),
        }
    }

    pub fn edge(&self, uid: Uid) -> Result<&EdgeEntry> {
        match self.entries.get(uid.0 as usize) {
            Some(Entry::Edge(e)) => Ok(e),
            Some(Entry::Node(_)) => Err(GraphError::WrongKind { uid, expected: "edge" }),
            None => Err(GraphError::UnknownUid(uid)),
        }
    }

    pub fn class_of(&self, uid: Uid) -> Option<ClassId> {
        self.entries.get(uid.0 as usize).map(|e| e.class())
    }

    pub fn versions(&self, uid: Uid) -> &[Version] {
        self.entries.get(uid.0 as usize).map(|e| e.versions()).unwrap_or(&[])
    }

    /// The still-open version, if the entity is currently asserted.
    pub fn current_version(&self, uid: Uid) -> Option<&Version> {
        self.versions(uid).last().filter(|v| v.span.is_current())
    }

    /// The version asserted at time `ts`, if any. The returned version may
    /// be delta-encoded; read values via [`TemporalGraph::fields_at`].
    pub fn version_at(&self, uid: Uid, ts: Ts) -> Option<&Version> {
        self.version_index_at(uid, ts).map(|i| &self.versions(uid)[i])
    }

    /// Index into [`TemporalGraph::versions`] of the version asserted at
    /// `ts`, if any.
    pub fn version_index_at(&self, uid: Uid, ts: Ts) -> Option<usize> {
        let vs = self.versions(uid);
        // Versions are sorted by span.from; binary search.
        let idx = vs.partition_point(|v| v.span.from <= ts);
        if idx == 0 {
            return None;
        }
        vs[idx - 1].span.contains(ts).then(|| idx - 1)
    }

    /// Field values of the still-open version. Borrowed — the chain head
    /// is always stored full, so the hot current-snapshot path never
    /// materializes.
    pub fn current_fields(&self, uid: Uid) -> Option<&[Value]> {
        self.current_version(uid).map(|v| v.fields())
    }

    /// Materialized field values of the version asserted at `ts`:
    /// borrowed for full-stored versions, reconstructed (owned) for
    /// delta-encoded history versions.
    pub fn fields_at(&self, uid: Uid, ts: Ts) -> Option<Cow<'_, [Value]>> {
        let i = self.version_index_at(uid, ts)?;
        let vs = self.versions(uid);
        self.note_version_read(uid, vs[i].is_delta(), vs.last().map_or(0, |h| h.fields().len()));
        Some(materialize_version(vs, i))
    }

    /// Materialized field values of `versions(uid)[index]`.
    pub fn fields_of(&self, uid: Uid, index: usize) -> Cow<'_, [Value]> {
        let vs = self.versions(uid);
        self.note_version_read(uid, vs[index].is_delta(), vs.last().map_or(0, |h| h.fields().len()));
        materialize_version(vs, index)
    }

    /// Index range into [`TemporalGraph::versions`] of the versions whose
    /// span overlaps `iv`.
    pub fn overlap_range(&self, uid: Uid, iv: &Interval) -> std::ops::Range<usize> {
        let vs = self.versions(uid);
        let lo = vs.partition_point(|v| v.span.to <= iv.from);
        let hi = vs.partition_point(|v| v.span.from < iv.to);
        lo..hi
    }

    /// All versions whose span overlaps `iv`. Versions may be
    /// delta-encoded; use [`TemporalGraph::overlap_range`] +
    /// [`TemporalGraph::fields_of`] to read their values.
    pub fn versions_overlapping(&self, uid: Uid, iv: &Interval) -> &[Version] {
        &self.versions(uid)[self.overlap_range(uid, iv)]
    }

    /// The entity's full assertion set (union of version spans).
    pub fn alive_set(&self, uid: Uid) -> IntervalSet {
        let mut s = IntervalSet::empty();
        for v in self.versions(uid) {
            s.push(v.span);
        }
        s
    }

    /// Every uid ever created with *exactly* class `class`. Counts one
    /// scan (plus its yielded rows) on the class heatmap.
    pub fn extent_exact(&self, class: ClassId) -> &[Uid] {
        let ext = &self.extents[class.0 as usize];
        if let Some(h) = self.heat.get(class.0 as usize) {
            h.scans.fetch_add(1, Ordering::Relaxed);
            h.scan_rows.fetch_add(ext.len() as u64, Ordering::Relaxed);
        }
        ext
    }

    /// Iterate all uids of `class` and its subclasses.
    pub fn extent(&self, class: ClassId) -> impl Iterator<Item = Uid> + '_ {
        self.schema.descendants(class).into_iter().flat_map(|c| self.extent_exact(c).to_vec())
    }

    /// Number of currently asserted entities of `class` incl. subclasses —
    /// the optimizer's primary statistic.
    pub fn alive_count(&self, class: ClassId) -> u64 {
        self.schema.descendants(class).into_iter().map(|c| self.alive[c.0 as usize]).sum()
    }

    pub fn out_adj(&self, uid: Uid) -> &[AdjEntry] {
        self.out_adj_list(uid).entries()
    }

    pub fn in_adj(&self, uid: Uid) -> &[AdjEntry] {
        self.in_adj_list(uid).entries()
    }

    /// Out-adjacency of `uid` grouped by exact edge class.
    pub fn out_adj_list(&self, uid: Uid) -> &AdjList {
        match self.adj_slot.get(uid.0 as usize) {
            Some(&s) if s != u32::MAX => &self.out_adj[s as usize],
            _ => &EMPTY_ADJ,
        }
    }

    /// In-adjacency of `uid` grouped by exact edge class.
    pub fn in_adj_list(&self, uid: Uid) -> &AdjList {
        match self.adj_slot.get(uid.0 as usize) {
            Some(&s) if s != u32::MAX => &self.in_adj[s as usize],
            _ => &EMPTY_ADJ,
        }
    }

    /// Read-path heatmap hook: one version read on `uid`'s class. Width is
    /// the record's field count (the chain head is always full).
    #[inline]
    pub(crate) fn note_version_read(&self, uid: Uid, is_delta: bool, width: usize) {
        if let Some(h) = self.class_of(uid).and_then(|c| self.heat.get(c.0 as usize)) {
            h.version_read(is_delta, width);
        }
    }

    /// Per-class heatmap counters, indexed by exact [`ClassId`].
    pub fn heat_snapshot(&self) -> Vec<ClassHeatSnapshot> {
        self.heat.iter().map(|h| h.snapshot()).collect()
    }

    /// One class's heatmap counters.
    pub fn class_heat(&self, class: ClassId) -> ClassHeatSnapshot {
        self.heat.get(class.0 as usize).map(|h| h.snapshot()).unwrap_or_default()
    }

    /// Unique-index point lookup: the currently asserted entity of `class`
    /// (or a subclass) whose unique field `idx` equals `value`. Counts one
    /// seek on the queried class's heatmap.
    pub fn find_unique(&self, class: ClassId, idx: usize, value: &Value) -> Option<Uid> {
        if let Some(h) = self.heat.get(class.0 as usize) {
            h.seeks.fetch_add(1, Ordering::Relaxed);
        }
        let key = (self.declaring_class(class, idx), idx);
        let uid = *self.unique.get(&key)?.get(value)?;
        // The index only holds alive entities, but the hit might be of a
        // sibling subclass outside the queried concept; verify.
        let c = self.class_of(uid)?;
        self.schema.is_subclass(c, class).then_some(uid)
    }

    // ------------------------------------------------------------------
    // Bulk restore (journal loading)
    // ------------------------------------------------------------------

    /// Restore one entity during journal load. Entities must arrive in
    /// dense uid order; versions must be chronologically sorted and
    /// non-overlapping. Unique indexes are rebuilt afterwards via
    /// [`TemporalGraph::rebuild_unique_index`].
    pub(crate) fn restore_entity(
        &mut self,
        uid: Uid,
        is_node: bool,
        class: ClassId,
        src: Uid,
        dst: Uid,
        versions: Vec<(Ts, Ts, Vec<Value>)>,
    ) -> Result<()> {
        let mut raw = versions;
        let n = raw.len();
        let mut last_to = i64::MIN;
        for (from, to, fields) in raw.iter() {
            if *from >= *to || *from < last_to {
                return Err(GraphError::BadClass(format!(
                    "journal version span [{from},{to}) invalid for uid {}",
                    uid.0
                )));
            }
            last_to = *to;
            self.schema.validate_record(class, fields)?;
        }
        // Re-encode per the canonical keyframe/delta rule so a restored
        // store is byte-identical (accounting included) to the live one.
        let mut vs: Vec<Version> = Vec::with_capacity(n);
        let mut full_heap = 0u64;
        for i in 0..n {
            let fields = std::mem::take(&mut raw[i].2);
            full_heap += version_heap_bytes(&fields);
            let span = Interval::new(raw[i].0, raw[i].1);
            let data = if canonical_keep_full(i, n) {
                VersionData::Full(fields)
            } else {
                encode_history(fields, &raw[i + 1].2)
            };
            vs.push(Version { data, span });
        }
        let stored_heap = vs.iter().map(stored_version_bytes).sum::<u64>();
        self.restore_entity_encoded(uid, is_node, class, src, dst, vs, stored_heap, full_heap)
    }

    /// Shared tail of entity restore: push the already-encoded chain and
    /// maintain adjacency, extents, and accounting. `stored_heap` /
    /// `full_heap` are the chain's Σ per-version stored and
    /// full-equivalent bytes (entry overhead is added here). The binary
    /// snapshot loader calls this directly with pre-decoded chains.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn restore_entity_encoded(
        &mut self,
        uid: Uid,
        is_node: bool,
        class: ClassId,
        src: Uid,
        dst: Uid,
        vs: Vec<Version>,
        stored_heap: u64,
        full_heap: u64,
    ) -> Result<()> {
        if uid.0 as usize != self.entries.len() {
            return Err(GraphError::BadClass(format!(
                "journal uid {} out of order (expected {})",
                uid.0,
                self.entries.len()
            )));
        }
        if vs.last().is_some_and(|v| v.is_delta()) {
            return Err(GraphError::BadClass(format!("uid {} chain head is not a full version", uid.0)));
        }
        let alive = vs.last().is_some_and(|v| v.span.is_current());
        let heap = ENTRY_OVERHEAD_BYTES + stored_heap;
        let n_versions = vs.len() as u64;
        if is_node {
            self.entries.push(Entry::Node(NodeEntry { uid, class, versions: vs }));
            let slot = self.out_adj.len() as u32;
            self.adj_slot.push(slot);
            self.out_adj.push(AdjList::default());
            self.in_adj.push(AdjList::default());
            self.adj_bytes += ADJ_NODE_BYTES;
        } else {
            if src.0 >= uid.0 || dst.0 >= uid.0 {
                return Err(GraphError::BadClass(format!("edge {} references not-yet-restored endpoint", uid.0)));
            }
            self.node(src)?;
            self.node(dst)?;
            self.entries.push(Entry::Edge(EdgeEntry { uid, class, src, dst, versions: vs }));
            self.adj_slot.push(u32::MAX);
            let ss = self.adj_slot[src.0 as usize] as usize;
            let ds = self.adj_slot[dst.0 as usize] as usize;
            let new_out = self.out_adj[ss].insert(AdjEntry { edge: uid, other: dst, class, out: true });
            let new_in = self.in_adj[ds].insert(AdjEntry { edge: uid, other: src, class, out: false });
            self.adj_bytes += 2 * ADJ_ENTRY_BYTES + (new_out as u64 + new_in as u64) * ADJ_BUCKET_BYTES;
        }
        self.extents[class.0 as usize].push(uid);
        if alive {
            self.alive[class.0 as usize] += 1;
        }
        self.version_count += n_versions;
        let acct = &mut self.acct[class.0 as usize];
        acct.entities += 1;
        acct.versions += n_versions;
        acct.bytes += heap;
        acct.full_bytes += ENTRY_OVERHEAD_BYTES + full_heap;
        Ok(())
    }

    /// Rebuild the unique index from the currently asserted versions
    /// (journal loading), failing on constraint violations.
    pub(crate) fn rebuild_unique_index(&mut self) -> Result<()> {
        self.unique.clear();
        for raw in 0..self.entries.len() as u64 {
            let uid = Uid(raw);
            let class = self.entries[raw as usize].class();
            let Some(v) = self.current_version(uid) else { continue };
            let fields = v.fields().to_vec();
            self.check_unique_free(class, &fields)?;
            self.index_unique(class, &fields, uid);
        }
        Ok(())
    }

    /// Approximate heap bytes used by versioned storage — used by the
    /// storage-overhead experiment (§6.1) to compare against materializing
    /// daily snapshots.
    pub fn approx_version_bytes(&self) -> u64 {
        let mut total = 0u64;
        for e in &self.entries {
            // Uncompressed-equivalent estimate: every version priced at the
            // schema's field width for its class (delta versions included).
            let width = self.schema.all_fields(e.class()).len() as u64;
            total += e.versions().len() as u64 * (16 /* span */ + 24 /* vec hdr */ + 40 * width);
            total += 48; // entry overhead
        }
        total
    }

    /// Stored vs full-equivalent bytes of *history* versions — every
    /// version except each chain's head. This isolates the delta-encoding
    /// win: heads are always stored full, so the head bytes would dilute
    /// the ratio on graphs dominated by single-version entities.
    /// Returns `(stored, full_equivalent)`; O(versions).
    pub fn history_version_bytes(&self) -> (u64, u64) {
        let mut stored = 0u64;
        let mut full = 0u64;
        for e in &self.entries {
            let vs = e.versions();
            let n = vs.len();
            for (i, v) in vs.iter().take(n.saturating_sub(1)).enumerate() {
                stored += stored_version_bytes(v);
                full += version_heap_bytes(&materialize_version(vs, i));
            }
        }
        (stored, full)
    }

    // ------------------------------------------------------------------
    // Memory reporting
    // ------------------------------------------------------------------

    /// Estimated unique-index bytes: one map header per index plus each
    /// key's slot, heap, and uid payload. Computed on demand (indexes are
    /// small relative to version chains).
    fn unique_index_bytes(&self) -> u64 {
        MAP_HEADER_BYTES
            + self
                .unique
                .values()
                .map(|m| {
                    MAP_HEADER_BYTES
                        + m.keys()
                            .map(|k| VALUE_SLOT_BYTES + value_heap_bytes(k) + std::mem::size_of::<Uid>() as u64)
                            .sum::<u64>()
                })
                .sum::<u64>()
    }

    /// Version-chain length distribution in log₂ buckets, as
    /// `(≤ bound, entities)` over non-empty buckets. O(entities).
    fn chain_histogram(&self) -> Vec<(u64, u64)> {
        let mut counts = [0u64; 64];
        for e in &self.entries {
            let len = e.versions().len() as u64;
            // Same bucketing as the obs histogram: smallest i with len ≤ 2^i.
            let idx = ((64 - len.saturating_sub(1).leading_zeros()) as usize).min(63);
            counts[idx] += 1;
        }
        counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (if i >= 63 { u64::MAX } else { 1u64 << i }, n))
            .collect()
    }

    fn assemble_report(&self, classes: Vec<ClassMemory>, adjacency_bytes: u64) -> MemoryReport {
        let entity_bytes = classes.iter().map(|c| c.bytes).sum();
        let entity_full_bytes = classes.iter().map(|c| c.full_bytes).sum();
        let unique_index_bytes = self.unique_index_bytes();
        MemoryReport {
            total_bytes: entity_bytes + adjacency_bytes + unique_index_bytes,
            entity_bytes,
            entity_full_bytes,
            adjacency_bytes,
            unique_index_bytes,
            journal_bytes: crate::journal::journal_bytes(self),
            chain_histogram: self.chain_histogram(),
            classes,
        }
    }

    /// Cheap per-class memory rows straight from the incremental
    /// accounting — O(classes), no store walk. The fast path behind
    /// [`StoreGauges::refresh`](crate::metrics::StoreGauges::refresh).
    pub fn class_memory(&self) -> Vec<ClassMemory> {
        let mut classes = Vec::new();
        for (i, acct) in self.acct.iter().enumerate() {
            if acct.entities == 0 {
                continue;
            }
            let class = ClassId(i as u32);
            classes.push(ClassMemory {
                class,
                name: self.schema.class(class).name.clone(),
                kind: self.schema.kind(class),
                entities: acct.entities,
                alive: self.alive[i],
                versions: acct.versions,
                bytes: acct.bytes,
                full_bytes: acct.full_bytes,
            });
        }
        classes
    }

    /// Estimated adjacency-structure bytes, maintained incrementally.
    pub fn adjacency_bytes(&self) -> u64 {
        self.adj_bytes
    }

    /// Snapshot of the store's estimated memory footprint, assembled from
    /// the incrementally maintained per-class accounting. The per-class
    /// byte figures are O(classes); the chain histogram and journal size
    /// walk the store once.
    pub fn memory_report(&self) -> MemoryReport {
        self.assemble_report(self.class_memory(), self.adj_bytes)
    }

    /// Brute-force recount: rebuild the entire [`MemoryReport`] by walking
    /// every entry, version, and adjacency list, ignoring the incremental
    /// accounting. The churn proptest pins `memory_report` to this walk.
    pub fn memory_recount(&self) -> MemoryReport {
        let n = self.schema.num_classes();
        let mut per = vec![ClassAccounting::default(); n];
        let mut alive = vec![0u64; n];
        for e in &self.entries {
            let c = e.class().0 as usize;
            let vs = e.versions();
            per[c].entities += 1;
            per[c].versions += vs.len() as u64;
            per[c].bytes += ENTRY_OVERHEAD_BYTES + vs.iter().map(stored_version_bytes).sum::<u64>();
            // Full-equivalent cost: every version priced at its
            // materialized values (what an uncompressed store would hold).
            per[c].full_bytes += ENTRY_OVERHEAD_BYTES
                + (0..vs.len()).map(|i| version_heap_bytes(&materialize_version(vs, i))).sum::<u64>();
            alive[c] += vs.last().is_some_and(|v| v.span.is_current()) as u64;
        }
        let mut classes = Vec::new();
        for (i, acct) in per.iter().enumerate() {
            if acct.entities == 0 {
                continue;
            }
            let class = ClassId(i as u32);
            classes.push(ClassMemory {
                class,
                name: self.schema.class(class).name.clone(),
                kind: self.schema.kind(class),
                entities: acct.entities,
                alive: alive[i],
                versions: acct.versions,
                bytes: acct.bytes,
                full_bytes: acct.full_bytes,
            });
        }
        let adjacency_bytes = self
            .out_adj
            .iter()
            .chain(self.in_adj.iter())
            .map(|l| std::mem::size_of::<AdjList>() as u64 + l.heap_bytes())
            .sum();
        self.assemble_report(classes, adjacency_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nepal_schema::dsl::parse_schema;

    fn schema() -> Arc<Schema> {
        Arc::new(
            parse_schema(
                r#"
                node VM { vm_id: int unique, status: str }
                node Host { host_id: int unique }
                edge HostedOn { }
                allow HostedOn (VM -> Host)
                "#,
            )
            .unwrap(),
        )
    }

    fn vm(g: &mut TemporalGraph, id: i64, ts: Ts) -> Uid {
        let c = g.schema().class_by_name("VM").unwrap();
        g.insert_node(c, vec![Value::Int(id), Value::Str("Green".into())], ts).unwrap()
    }

    #[test]
    fn insert_update_delete_versioning() {
        let s = schema();
        let mut g = TemporalGraph::new(s);
        let u = vm(&mut g, 1, 100);
        assert!(g.current_version(u).is_some());
        g.update(u, &[(1, Value::Str("Red".into()))], 200).unwrap();
        assert_eq!(g.versions(u).len(), 2);
        // Time travel: at 150 the status is still Green.
        assert_eq!(g.fields_at(u, 150).unwrap()[1], Value::Str("Green".into()));
        assert_eq!(g.fields_at(u, 250).unwrap()[1], Value::Str("Red".into()));
        g.delete(u, 300).unwrap();
        assert!(g.current_version(u).is_none());
        assert!(g.version_at(u, 250).is_some());
        assert!(g.version_at(u, 300).is_none());
        assert_eq!(g.alive_set(u).intervals(), &[Interval::new(100, 300)]);
    }

    #[test]
    fn edge_rules_enforced_on_insert() {
        let s = schema();
        let mut g = TemporalGraph::new(s.clone());
        let v = vm(&mut g, 1, 0);
        let hc = s.class_by_name("Host").unwrap();
        let h = g.insert_node(hc, vec![Value::Int(7)], 0).unwrap();
        let ec = s.class_by_name("HostedOn").unwrap();
        g.insert_edge(ec, v, h, vec![], 10).unwrap();
        // Reverse direction forbidden by the allow rule.
        let err = g.insert_edge(ec, h, v, vec![], 10).unwrap_err();
        assert!(matches!(err, GraphError::EdgeNotAllowed { .. }));
    }

    #[test]
    fn delete_node_cascades_to_edges() {
        let s = schema();
        let mut g = TemporalGraph::new(s.clone());
        let v = vm(&mut g, 1, 0);
        let hc = s.class_by_name("Host").unwrap();
        let h = g.insert_node(hc, vec![Value::Int(7)], 0).unwrap();
        let ec = s.class_by_name("HostedOn").unwrap();
        let e = g.insert_edge(ec, v, h, vec![], 0).unwrap();
        g.delete(h, 50).unwrap();
        assert!(g.current_version(e).is_none());
        assert!(g.version_at(e, 25).is_some());
        // VM survives.
        assert!(g.current_version(v).is_some());
    }

    #[test]
    fn unique_constraint_blocks_garbage() {
        // "strong typing and uniqueness constraints ... prevented us from
        // loading garbage data into the graphs" (§6.1).
        let s = schema();
        let mut g = TemporalGraph::new(s);
        vm(&mut g, 1, 0);
        let c = g.schema().class_by_name("VM").unwrap();
        let err = g.insert_node(c, vec![Value::Int(1), Value::Str("Green".into())], 1).unwrap_err();
        assert!(matches!(err, GraphError::UniqueViolation { .. }));
    }

    #[test]
    fn unique_released_after_delete_and_rekeyed_on_update() {
        let s = schema();
        let mut g = TemporalGraph::new(s);
        let u = vm(&mut g, 1, 0);
        g.update(u, &[(0, Value::Int(2))], 10).unwrap();
        // id 1 free again.
        let u2 = vm(&mut g, 1, 20);
        g.delete(u2, 30).unwrap();
        let _u3 = vm(&mut g, 1, 40); // free after delete
        let c = g.schema().class_by_name("VM").unwrap();
        assert_eq!(g.find_unique(c, 0, &Value::Int(2)), Some(u));
    }

    #[test]
    fn alive_counts_track_mutations() {
        let s = schema();
        let mut g = TemporalGraph::new(s.clone());
        let c = s.class_by_name("VM").unwrap();
        let u1 = vm(&mut g, 1, 0);
        let _u2 = vm(&mut g, 2, 0);
        assert_eq!(g.alive_count(c), 2);
        g.delete(u1, 5).unwrap();
        assert_eq!(g.alive_count(c), 1);
        assert_eq!(g.alive_count(nepal_schema::NODE), 1);
    }

    #[test]
    fn type_errors_rejected_at_insert() {
        let s = schema();
        let mut g = TemporalGraph::new(s.clone());
        let c = s.class_by_name("VM").unwrap();
        assert!(g.insert_node(c, vec![Value::Str("oops".into()), Value::Str("x".into())], 0).is_err());
        // Edge class used as node class.
        let ec = s.class_by_name("HostedOn").unwrap();
        assert!(matches!(g.insert_node(ec, vec![], 0), Err(GraphError::BadClass(_))));
    }

    #[test]
    fn same_instant_update_replaces_version() {
        let s = schema();
        let mut g = TemporalGraph::new(s);
        let u = vm(&mut g, 1, 100);
        g.update(u, &[(1, Value::Str("Red".into()))], 100).unwrap();
        assert_eq!(g.versions(u).len(), 1);
        assert_eq!(g.current_version(u).unwrap().fields()[1], Value::Str("Red".into()));
    }

    #[test]
    fn adjacency_buckets_group_by_exact_edge_class() {
        let s = Arc::new(
            parse_schema(
                r#"
                node VM { vm_id: int unique, status: str }
                node Host { host_id: int unique }
                edge HostedOn { }
                edge Linked : HostedOn { }
                allow HostedOn (VM -> Host)
                "#,
            )
            .unwrap(),
        );
        let mut g = TemporalGraph::new(s.clone());
        let v = vm(&mut g, 1, 0);
        let hc = s.class_by_name("Host").unwrap();
        let hosted = s.class_by_name("HostedOn").unwrap();
        let linked = s.class_by_name("Linked").unwrap();
        let hosts: Vec<Uid> = (0..4).map(|i| g.insert_node(hc, vec![Value::Int(i)], 0).unwrap()).collect();
        // Interleave the two edge classes; buckets must re-group them.
        let e0 = g.insert_edge(hosted, v, hosts[0], vec![], 1).unwrap();
        let e1 = g.insert_edge(linked, v, hosts[1], vec![], 2).unwrap();
        let e2 = g.insert_edge(hosted, v, hosts[2], vec![], 3).unwrap();
        let e3 = g.insert_edge(linked, v, hosts[3], vec![], 4).unwrap();

        let list = g.out_adj_list(v);
        let runs: Vec<(ClassId, Vec<Uid>)> =
            list.buckets().map(|(c, es)| (c, es.iter().map(|a| a.edge).collect())).collect();
        assert_eq!(runs, vec![(hosted, vec![e0, e2]), (linked, vec![e1, e3])]);
        // The flat view covers the same entries, grouped.
        assert_eq!(list.entries().len(), 4);
        assert!(list.entries().iter().all(|a| a.out && a.class == g.edge(a.edge).unwrap().class));
        // In-adjacency carries direction = false and the same denormalized class.
        let in0 = g.in_adj(hosts[0]);
        assert_eq!(in0.len(), 1);
        assert!(!in0[0].out);
        assert_eq!(in0[0].class, hosted);
        assert_eq!(in0[0].other, v);
    }

    #[test]
    fn versions_overlapping_range() {
        let s = schema();
        let mut g = TemporalGraph::new(s);
        let u = vm(&mut g, 1, 0);
        g.update(u, &[(1, Value::Str("A".into()))], 10).unwrap();
        g.update(u, &[(1, Value::Str("B".into()))], 20).unwrap();
        let vs = g.versions_overlapping(u, &Interval::new(5, 15));
        assert_eq!(vs.len(), 2); // [0,10) and [10,20)
        let vs = g.versions_overlapping(u, &Interval::new(25, 30));
        assert_eq!(vs.len(), 1); // [20, ∞)
    }

    fn assert_report_matches_recount(g: &TemporalGraph) {
        let report = g.memory_report();
        let recount = g.memory_recount();
        assert_eq!(report.entity_bytes, recount.entity_bytes, "entity bytes drifted from recount");
        assert_eq!(report.entity_full_bytes, recount.entity_full_bytes, "full-equivalent bytes drifted from recount");
        assert_eq!(report.adjacency_bytes, recount.adjacency_bytes, "adjacency bytes drifted");
        assert_eq!(report.unique_index_bytes, recount.unique_index_bytes);
        assert_eq!(report.total_bytes, recount.total_bytes);
        assert_eq!(report.chain_histogram, recount.chain_histogram);
        assert_eq!(report.classes.len(), recount.classes.len());
        for (a, b) in report.classes.iter().zip(recount.classes.iter()) {
            assert_eq!(
                (a.class, a.entities, a.alive, a.versions, a.bytes, a.full_bytes),
                (b.class, b.entities, b.alive, b.versions, b.bytes, b.full_bytes),
                "class {} accounting drifted",
                a.name
            );
        }
    }

    #[test]
    fn accounting_tracks_every_mutation_path() {
        let s = schema();
        let mut g = TemporalGraph::new(s.clone());
        assert_eq!(g.memory_report().entity_bytes, 0);

        // Inserts: nodes, then an edge (adjacency bytes appear).
        let v = vm(&mut g, 1, 0);
        let hc = s.class_by_name("Host").unwrap();
        let h = g.insert_node(hc, vec![Value::Int(7)], 0).unwrap();
        let ec = s.class_by_name("HostedOn").unwrap();
        let e = g.insert_edge(ec, v, h, vec![], 10).unwrap();
        assert_report_matches_recount(&g);
        let after_edges = g.memory_report();
        assert!(after_edges.adjacency_bytes > 0);
        assert!(after_edges.journal_bytes > 0);

        // Update grows the chain; a longer string grows the payload bytes.
        let before = g.memory_report().entity_bytes;
        g.update(v, &[(1, Value::Str("a much longer status string".into()))], 20).unwrap();
        assert!(g.memory_report().entity_bytes > before);
        assert_report_matches_recount(&g);

        // Same-instant update rewrites in place (no extra version).
        g.update(v, &[(1, Value::Str("Red".into()))], 20).unwrap();
        assert_report_matches_recount(&g);

        // Deletes close version chains (cascade closes the edge too).
        g.delete(h, 50).unwrap();
        assert!(g.current_version(e).is_none());
        assert_report_matches_recount(&g);

        // Same-instant insert+delete pops the version entirely.
        let v2 = vm(&mut g, 2, 100);
        g.delete(v2, 100).unwrap();
        assert_report_matches_recount(&g);

        // Per-class split: VM vs Host vs HostedOn all present.
        let report = g.memory_report();
        let names: Vec<&str> = report.classes.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"VM") && names.contains(&"Host") && names.contains(&"HostedOn"));
        let vm_row = report.classes.iter().find(|c| c.name == "VM").unwrap();
        assert_eq!(vm_row.kind, ClassKind::Node);
        assert_eq!(vm_row.entities, 2);
        assert_eq!(vm_row.alive, 1);
    }

    #[test]
    fn accounting_survives_journal_round_trip() {
        let s = schema();
        let mut g = TemporalGraph::new(s.clone());
        let v = vm(&mut g, 1, 0);
        let hc = s.class_by_name("Host").unwrap();
        let h = g.insert_node(hc, vec![Value::Int(7)], 0).unwrap();
        let ec = s.class_by_name("HostedOn").unwrap();
        g.insert_edge(ec, v, h, vec![], 10).unwrap();
        g.update(v, &[(1, Value::Str("Red".into()))], 20).unwrap();

        let mut buf = Vec::new();
        crate::journal::save_graph(&g, &mut buf).unwrap();
        assert_eq!(crate::journal::journal_bytes(&g), buf.len() as u64);
        let restored = crate::journal::load_graph(s, &mut buf.as_slice()).unwrap();
        // restore_entity must maintain the same incremental accounting.
        assert_report_matches_recount(&restored);
        assert_eq!(restored.memory_report().total_bytes, g.memory_report().total_bytes);
    }

    #[test]
    fn delta_chains_materialize_exactly_and_save_bytes() {
        let s = schema();
        let mut g = TemporalGraph::new(s);
        let u = vm(&mut g, 1, 0);
        // 40 single-field updates: crosses two keyframe boundaries.
        for i in 1..=40i64 {
            g.update(u, &[(1, Value::Str(format!("status-{i}")))], i * 10).unwrap();
        }
        let vs = g.versions(u);
        assert_eq!(vs.len(), 41);
        assert!(!vs.last().unwrap().is_delta(), "head must stay full");
        assert!(!vs[0].is_delta() && !vs[16].is_delta() && !vs[32].is_delta(), "keyframes must stay full");
        assert!(vs[1].is_delta() && vs[17].is_delta(), "between-keyframe history must delta-encode");
        // Every historical read reconstructs the exact values.
        assert_eq!(g.fields_at(u, 5).unwrap()[1], Value::Str("Green".into()));
        for i in 1..=40i64 {
            let f = g.fields_at(u, i * 10).unwrap();
            assert_eq!(f[1], Value::Str(format!("status-{i}")), "at ts {}", i * 10);
            assert_eq!(f[0], Value::Int(1), "unchanged field must survive delta chains");
        }
        // The saving is real and the incremental accounting stays exact.
        let report = g.memory_report();
        assert!(report.entity_bytes < report.entity_full_bytes);
        // Only two fields here, so the per-version delta win is modest;
        // the ≥30% bench gate runs against the wide ONAP classes.
        assert!(report.delta_savings_pct() > 15.0, "saving was {:.1}%", report.delta_savings_pct());
        assert_report_matches_recount(&g);
    }

    #[test]
    fn same_instant_rewrite_reencodes_previous_delta() {
        let s = schema();
        let mut g = TemporalGraph::new(s);
        let u = vm(&mut g, 1, 0);
        for i in 1..=3i64 {
            g.update(u, &[(1, Value::Str(format!("v{i}")))], i * 10).unwrap();
        }
        // Rewrite the head in place at its own open instant: the delta of
        // the previous version was encoded against the old head values.
        g.update(u, &[(1, Value::Str("v2".into()))], 30).unwrap();
        assert_eq!(g.fields_at(u, 25).unwrap()[1], Value::Str("v2".into()));
        assert_eq!(g.fields_at(u, 15).unwrap()[1], Value::Str("v1".into()));
        assert_eq!(g.current_version(u).unwrap().fields()[1], Value::Str("v2".into()));
        assert_report_matches_recount(&g);
    }

    #[test]
    fn same_instant_pop_promotes_new_head_to_full() {
        let s = schema();
        let mut g = TemporalGraph::new(s);
        let u = vm(&mut g, 1, 10);
        g.update(u, &[(1, Value::Str("mid".into()))], 20).unwrap();
        g.update(u, &[(1, Value::Str("last".into()))], 30).unwrap();
        assert!(g.versions(u)[1].is_delta());
        // Deleting at the head's own open instant pops it; the version
        // below (a delta against the popped head) becomes the chain head.
        g.delete(u, 30).unwrap();
        let vs = g.versions(u);
        assert_eq!(vs.len(), 2);
        assert!(!vs.last().unwrap().is_delta(), "promoted head must be full");
        assert_eq!(g.fields_at(u, 25).unwrap()[1], Value::Str("mid".into()));
        assert_report_matches_recount(&g);
    }

    #[test]
    fn value_heap_bytes_covers_nested_containers() {
        assert_eq!(value_heap_bytes(&Value::Int(7)), 0);
        assert_eq!(value_heap_bytes(&Value::Str("abcd".into())), 4);
        let list = Value::List(vec![Value::Str("ab".into()), Value::Int(1)]);
        assert_eq!(value_heap_bytes(&list), 2 * VALUE_SLOT_BYTES + 2);
        let nested = Value::List(vec![list.clone()]);
        assert_eq!(value_heap_bytes(&nested), VALUE_SLOT_BYTES + value_heap_bytes(&list));
    }
}
