//! The native temporal graph store.
//!
//! A transaction-time graph database (§4, §5.3): every node and edge carries
//! a sequence of *versions*, each with its field values and a half-open
//! system-time interval. The current snapshot is simply the set of versions
//! whose interval is still open — so history queries and snapshot queries
//! run against the same structure, and storing 60 days of history costs a
//! few percent rather than 60 full copies (§6.1).
//!
//! Storage is **class-partitioned**: every class keeps its own extent list,
//! which is what makes anchored scans over `VM()` ignore the millions of
//! irrelevant legacy entities (the paper's Table-3 partitioning win).

use std::collections::HashMap;
use std::sync::Arc;

use nepal_schema::{ClassId, ClassKind, Schema, Ts, Value};

use crate::error::{GraphError, Result};
use crate::interval::{Interval, IntervalSet};

/// Unique identifier of a node or edge. Uids are dense indices assigned by
/// the store; nodes and edges share one uid space (as in the paper's
/// `uid_list` path representation, which mixes both).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Uid(pub u64);

/// One version of an entity: field values asserted during `span`.
#[derive(Debug, Clone)]
pub struct Version {
    pub fields: Vec<Value>,
    pub span: Interval,
}

/// A stored node.
#[derive(Debug, Clone)]
pub struct NodeEntry {
    pub uid: Uid,
    pub class: ClassId,
    /// Versions in chronological order; spans never overlap.
    pub versions: Vec<Version>,
}

/// A stored edge. Endpoints are immutable for the lifetime of the uid
/// (a moved connection is a delete + insert, as in real inventory feeds).
#[derive(Debug, Clone)]
pub struct EdgeEntry {
    pub uid: Uid,
    pub class: ClassId,
    pub src: Uid,
    pub dst: Uid,
    pub versions: Vec<Version>,
}

#[derive(Debug, Clone)]
enum Entry {
    Node(NodeEntry),
    Edge(EdgeEntry),
}

impl Entry {
    fn versions(&self) -> &[Version] {
        match self {
            Entry::Node(n) => &n.versions,
            Entry::Edge(e) => &e.versions,
        }
    }

    fn versions_mut(&mut self) -> &mut Vec<Version> {
        match self {
            Entry::Node(n) => &mut n.versions,
            Entry::Edge(e) => &mut e.versions,
        }
    }

    fn class(&self) -> ClassId {
        match self {
            Entry::Node(n) => n.class,
            Entry::Edge(e) => e.class,
        }
    }
}

/// An adjacency record: the connecting edge, the opposite endpoint, and —
/// denormalized for the evaluator's hot path — the edge's exact class and
/// direction, so `Extend` can match a neighbor without an `edge()` lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdjEntry {
    pub edge: Uid,
    pub other: Uid,
    /// Exact class of `edge` (classes are immutable per entity).
    pub class: ClassId,
    /// `true` when this entry sits in an out-adjacency list (edge leaves
    /// the owning node), `false` for in-adjacency.
    pub out: bool,
}

/// One class run inside an [`AdjList`]: entries `[start, start+len)` all
/// have exactly `class`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AdjBucket {
    class: ClassId,
    start: u32,
    len: u32,
}

/// A node's adjacency list, kept grouped by exact edge class so the
/// evaluator can skip whole classes that no NFA transition can match
/// (two array reads instead of a per-neighbor lookup).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AdjList {
    entries: Vec<AdjEntry>,
    buckets: Vec<AdjBucket>,
}

/// Shared empty list for uids without an adjacency slot.
static EMPTY_ADJ: AdjList = AdjList { entries: Vec::new(), buckets: Vec::new() };

impl AdjList {
    /// All entries, grouped by exact edge class (insertion order within a
    /// class, classes in first-seen order).
    pub fn entries(&self) -> &[AdjEntry] {
        &self.entries
    }

    /// Iterate `(exact edge class, entries of that class)` runs.
    pub fn buckets(&self) -> impl Iterator<Item = (ClassId, &[AdjEntry])> {
        self.buckets.iter().map(|b| (b.class, &self.entries[b.start as usize..(b.start + b.len) as usize]))
    }

    /// Insert an entry, returning whether a new class bucket was created
    /// (the accounting hook charges bucket overhead on first use).
    fn insert(&mut self, e: AdjEntry) -> bool {
        if let Some(i) = self.buckets.iter().position(|b| b.class == e.class) {
            let at = (self.buckets[i].start + self.buckets[i].len) as usize;
            self.entries.insert(at, e);
            self.buckets[i].len += 1;
            for b in &mut self.buckets[i + 1..] {
                b.start += 1;
            }
            false
        } else {
            self.buckets.push(AdjBucket { class: e.class, start: self.entries.len() as u32, len: 1 });
            self.entries.push(e);
            true
        }
    }

    /// Estimated heap bytes of this list under the accounting model:
    /// entry array + bucket array (the `AdjList` header itself is charged
    /// by the owner).
    fn heap_bytes(&self) -> u64 {
        self.entries.len() as u64 * ADJ_ENTRY_BYTES + self.buckets.len() as u64 * ADJ_BUCKET_BYTES
    }
}

// ----------------------------------------------------------------------
// Resource accounting (estimated heap bytes)
// ----------------------------------------------------------------------

/// Inline size of one [`Value`] slot (vector element / field cell).
const VALUE_SLOT_BYTES: u64 = std::mem::size_of::<Value>() as u64;
/// Inline size of one [`Version`] inside an entity's version vector.
const VERSION_BYTES: u64 = std::mem::size_of::<Version>() as u64;
/// Per-entity overhead: the `Entry` slot in the entry table, the
/// adjacency-slot index, and the extent-list uid.
const ENTRY_OVERHEAD_BYTES: u64 =
    (std::mem::size_of::<Entry>() + std::mem::size_of::<u32>() + std::mem::size_of::<Uid>()) as u64;
const ADJ_ENTRY_BYTES: u64 = std::mem::size_of::<AdjEntry>() as u64;
const ADJ_BUCKET_BYTES: u64 = std::mem::size_of::<AdjBucket>() as u64;
/// Per-node adjacency base: one out and one in `AdjList` header.
const ADJ_NODE_BYTES: u64 = 2 * std::mem::size_of::<AdjList>() as u64;
/// Flat estimate for a hash-map header (unique-index accounting).
const MAP_HEADER_BYTES: u64 = 48;

/// Estimated heap bytes owned by `v` beyond its inline enum slot.
/// Strings are charged at `len` (capacity is unobservable), containers at
/// one slot per element plus their elements' own heap.
pub fn value_heap_bytes(v: &Value) -> u64 {
    match v {
        Value::Str(s) => s.len() as u64,
        Value::List(vs) | Value::Set(vs) | Value::Composite(vs) => {
            vs.len() as u64 * VALUE_SLOT_BYTES + vs.iter().map(value_heap_bytes).sum::<u64>()
        }
        Value::Map(m) => {
            m.iter().map(|(k, val)| 2 * VALUE_SLOT_BYTES + value_heap_bytes(k) + value_heap_bytes(val)).sum()
        }
        _ => 0,
    }
}

/// Heap owned by one field vector: the slots plus each value's own heap.
fn fields_heap_bytes(fields: &[Value]) -> u64 {
    fields.len() as u64 * VALUE_SLOT_BYTES + fields.iter().map(value_heap_bytes).sum::<u64>()
}

/// Bytes one stored version contributes: its slot in the version vector
/// plus its field payload.
fn version_heap_bytes(fields: &[Value]) -> u64 {
    VERSION_BYTES + fields_heap_bytes(fields)
}

/// Incrementally maintained per-class accounting (one entry per exact
/// class; future partitions split along the same axis).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ClassAccounting {
    /// Uids ever created with this exact class.
    pub entities: u64,
    /// Stored versions, current + history.
    pub versions: u64,
    /// Estimated heap bytes: entry slots, version chains, field payloads.
    pub bytes: u64,
}

/// Per-class footprint inside a [`MemoryReport`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassMemory {
    pub class: ClassId,
    pub name: String,
    pub kind: ClassKind,
    pub entities: u64,
    pub alive: u64,
    pub versions: u64,
    pub bytes: u64,
}

/// A point-in-time snapshot of the store's estimated memory footprint.
/// Produced incrementally by [`TemporalGraph::memory_report`] and by the
/// brute-force [`TemporalGraph::memory_recount`] walk (the two must agree
/// — see the churn proptest).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct MemoryReport {
    /// Classes with at least one entity, in class-id order.
    pub classes: Vec<ClassMemory>,
    /// Σ class bytes.
    pub entity_bytes: u64,
    /// Adjacency lists: headers, entry arrays, class-run buckets.
    pub adjacency_bytes: u64,
    /// Unique indexes: map headers plus key/uid payloads.
    pub unique_index_bytes: u64,
    /// Size in bytes of a full journal save (durability, not heap).
    pub journal_bytes: u64,
    /// entity + adjacency + unique-index bytes.
    pub total_bytes: u64,
    /// Version-chain length distribution as log₂ `(≤ bound, entities)`
    /// pairs over non-empty buckets.
    pub chain_histogram: Vec<(u64, u64)>,
}

/// Per-kind storage totals (see [`TemporalGraph::counts`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreCounts {
    pub nodes: u64,
    pub edges: u64,
    /// Stored node versions, current + history.
    pub node_versions: u64,
    /// Stored edge versions, current + history.
    pub edge_versions: u64,
    /// Nodes whose latest version is still asserted.
    pub alive_nodes: u64,
    /// Edges whose latest version is still asserted.
    pub alive_edges: u64,
}

/// The temporal graph store.
pub struct TemporalGraph {
    schema: Arc<Schema>,
    entries: Vec<Entry>,
    /// uid → adjacency slot (nodes only; `u32::MAX` for edges).
    adj_slot: Vec<u32>,
    out_adj: Vec<AdjList>,
    in_adj: Vec<AdjList>,
    /// Per exact class: every uid ever created with that class.
    extents: Vec<Vec<Uid>>,
    /// Per exact class: number of currently asserted entities (statistics
    /// for the anchor-costing optimizer, §5.1).
    alive: Vec<u64>,
    /// Unique index: (declaring class, field index) → value → holder uid.
    unique: HashMap<(ClassId, usize), HashMap<Value, Uid>>,
    /// Total number of versions ever stored (history accounting, §6.1).
    version_count: u64,
    /// Per exact class: incremental entity/version/byte accounting.
    acct: Vec<ClassAccounting>,
    /// Incremental adjacency-structure bytes (lists, entries, buckets).
    adj_bytes: u64,
}

impl TemporalGraph {
    pub fn new(schema: Arc<Schema>) -> TemporalGraph {
        let n = schema.num_classes();
        TemporalGraph {
            schema,
            entries: Vec::new(),
            adj_slot: Vec::new(),
            out_adj: Vec::new(),
            in_adj: Vec::new(),
            extents: vec![Vec::new(); n],
            alive: vec![0; n],
            unique: HashMap::new(),
            version_count: 0,
            acct: vec![ClassAccounting::default(); n],
            adj_bytes: 0,
        }
    }

    pub fn schema(&self) -> &Arc<Schema> {
        &self.schema
    }

    /// Total number of uids (nodes + edges) ever created.
    pub fn num_entities(&self) -> usize {
        self.entries.len()
    }

    /// Total number of stored versions (current + history).
    pub fn num_versions(&self) -> u64 {
        self.version_count
    }

    /// Per-kind storage totals, for metric export. O(classes), derived
    /// from the incrementally maintained per-class accounting — cheap
    /// enough to refresh per query, not just per scrape.
    pub fn counts(&self) -> StoreCounts {
        let mut c = StoreCounts::default();
        for (i, acct) in self.acct.iter().enumerate() {
            let class = ClassId(i as u32);
            match self.schema.kind(class) {
                ClassKind::Node => {
                    c.nodes += acct.entities;
                    c.node_versions += acct.versions;
                    c.alive_nodes += self.alive[i];
                }
                ClassKind::Edge => {
                    c.edges += acct.entities;
                    c.edge_versions += acct.versions;
                    c.alive_edges += self.alive[i];
                }
            }
        }
        c
    }

    /// The incrementally maintained per-class accounting, indexed by
    /// exact [`ClassId`]. O(1) access for pull-time gauges.
    pub fn class_accounting(&self) -> &[ClassAccounting] {
        &self.acct
    }

    /// The class that declares layout index `idx` for `class` (the ancestor
    /// whose own-field range contains `idx`). Unique indexes are keyed on
    /// the declaring class so all subclasses share the constraint.
    fn declaring_class(&self, class: ClassId, idx: usize) -> ClassId {
        let mut chain = self.schema.ancestors(class);
        chain.reverse(); // root → leaf
        let mut offset = 0usize;
        for c in chain {
            let own = self.schema.class(c).own_fields.len();
            if idx < offset + own {
                return c;
            }
            offset += own;
        }
        class
    }

    // ------------------------------------------------------------------
    // Mutation API
    // ------------------------------------------------------------------

    fn check_unique_free(&self, class: ClassId, fields: &[Value]) -> Result<()> {
        for idx in self.schema.unique_fields(class) {
            let v = &fields[idx];
            if v.is_null() {
                continue;
            }
            let key = (self.declaring_class(class, idx), idx);
            if let Some(m) = self.unique.get(&key) {
                if m.contains_key(v) {
                    return Err(GraphError::UniqueViolation {
                        class: self.schema.class(class).name.clone(),
                        field: self.schema.all_fields(class)[idx].name.clone(),
                    });
                }
            }
        }
        Ok(())
    }

    fn index_unique(&mut self, class: ClassId, fields: &[Value], uid: Uid) {
        for idx in self.schema.unique_fields(class) {
            let v = &fields[idx];
            if v.is_null() {
                continue;
            }
            let key = (self.declaring_class(class, idx), idx);
            self.unique.entry(key).or_default().insert(v.clone(), uid);
        }
    }

    fn unindex_unique(&mut self, class: ClassId, fields: &[Value]) {
        for idx in self.schema.unique_fields(class) {
            let v = &fields[idx];
            if v.is_null() {
                continue;
            }
            let key = (self.declaring_class(class, idx), idx);
            if let Some(m) = self.unique.get_mut(&key) {
                m.remove(v);
            }
        }
    }

    /// Insert a node of `class` asserted from `ts`.
    pub fn insert_node(&mut self, class: ClassId, fields: Vec<Value>, ts: Ts) -> Result<Uid> {
        if self.schema.kind(class) != ClassKind::Node {
            return Err(GraphError::BadClass(self.schema.class(class).name.clone()));
        }
        self.schema.validate_record(class, &fields)?;
        self.check_unique_free(class, &fields)?;
        let uid = Uid(self.entries.len() as u64);
        self.index_unique(class, &fields, uid);
        let heap = ENTRY_OVERHEAD_BYTES + version_heap_bytes(&fields);
        self.entries.push(Entry::Node(NodeEntry {
            uid,
            class,
            versions: vec![Version { fields, span: Interval::since(ts) }],
        }));
        let slot = self.out_adj.len() as u32;
        self.adj_slot.push(slot);
        self.out_adj.push(AdjList::default());
        self.in_adj.push(AdjList::default());
        self.extents[class.0 as usize].push(uid);
        self.alive[class.0 as usize] += 1;
        self.version_count += 1;
        let acct = &mut self.acct[class.0 as usize];
        acct.entities += 1;
        acct.versions += 1;
        acct.bytes += heap;
        self.adj_bytes += ADJ_NODE_BYTES;
        nepal_obs::flight::emit(nepal_obs::FlightKind::JournalMutation, uid.0, class.0 as u64, 0, "insert_node");
        Ok(uid)
    }

    /// Insert an edge of `class` from `src` to `dst`, asserted from `ts`.
    /// Both endpoints must be currently asserted and the schema's
    /// allowed-edge rules must permit the connection.
    pub fn insert_edge(&mut self, class: ClassId, src: Uid, dst: Uid, fields: Vec<Value>, ts: Ts) -> Result<Uid> {
        if self.schema.kind(class) != ClassKind::Edge {
            return Err(GraphError::BadClass(self.schema.class(class).name.clone()));
        }
        self.schema.validate_record(class, &fields)?;
        let src_class = self.node(src)?.class;
        let dst_class = self.node(dst)?.class;
        if self.current_version(src).is_none() {
            return Err(GraphError::Dead { uid: src, at: ts });
        }
        if self.current_version(dst).is_none() {
            return Err(GraphError::Dead { uid: dst, at: ts });
        }
        if !self.schema.edge_allowed(class, src_class, dst_class) {
            return Err(GraphError::EdgeNotAllowed {
                edge_class: self.schema.class(class).name.clone(),
                src_class: self.schema.class(src_class).name.clone(),
                dst_class: self.schema.class(dst_class).name.clone(),
            });
        }
        self.check_unique_free(class, &fields)?;
        let uid = Uid(self.entries.len() as u64);
        self.index_unique(class, &fields, uid);
        let heap = ENTRY_OVERHEAD_BYTES + version_heap_bytes(&fields);
        self.entries.push(Entry::Edge(EdgeEntry {
            uid,
            class,
            src,
            dst,
            versions: vec![Version { fields, span: Interval::since(ts) }],
        }));
        self.adj_slot.push(u32::MAX);
        let (ss, ds) = (self.adj_slot[src.0 as usize] as usize, self.adj_slot[dst.0 as usize] as usize);
        let new_out = self.out_adj[ss].insert(AdjEntry { edge: uid, other: dst, class, out: true });
        let new_in = self.in_adj[ds].insert(AdjEntry { edge: uid, other: src, class, out: false });
        self.extents[class.0 as usize].push(uid);
        self.alive[class.0 as usize] += 1;
        self.version_count += 1;
        let acct = &mut self.acct[class.0 as usize];
        acct.entities += 1;
        acct.versions += 1;
        acct.bytes += heap;
        self.adj_bytes += 2 * ADJ_ENTRY_BYTES + (new_out as u64 + new_in as u64) * ADJ_BUCKET_BYTES;
        nepal_obs::flight::emit(nepal_obs::FlightKind::JournalMutation, uid.0, class.0 as u64, 0, "insert_edge");
        Ok(uid)
    }

    /// Update fields of a currently asserted entity: closes the current
    /// version at `ts` and opens a new one.
    pub fn update(&mut self, uid: Uid, changes: &[(usize, Value)], ts: Ts) -> Result<()> {
        let entry = self.entries.get(uid.0 as usize).ok_or(GraphError::UnknownUid(uid))?;
        let class = entry.class();
        let cur = entry.versions().last().filter(|v| v.span.is_current()).ok_or(GraphError::Dead { uid, at: ts })?;
        if ts < cur.span.from {
            return Err(GraphError::NonMonotonicTs { uid, last: cur.span.from, got: ts });
        }
        let mut new_fields = cur.fields.clone();
        for (idx, v) in changes {
            if *idx >= new_fields.len() {
                return Err(GraphError::Schema(nepal_schema::SchemaError::UnknownField {
                    class: self.schema.class(class).name.clone(),
                    field: format!("#{idx}"),
                }));
            }
            new_fields[*idx] = v.clone();
        }
        self.schema.validate_record(class, &new_fields)?;
        // Re-key unique index for changed unique fields.
        let old_fields = cur.fields.clone();
        for idx in self.schema.unique_fields(class) {
            if old_fields[idx] == new_fields[idx] {
                continue;
            }
            let key = (self.declaring_class(class, idx), idx);
            if !new_fields[idx].is_null() {
                if let Some(m) = self.unique.get(&key) {
                    if let Some(&holder) = m.get(&new_fields[idx]) {
                        if holder != uid {
                            return Err(GraphError::UniqueViolation {
                                class: self.schema.class(class).name.clone(),
                                field: self.schema.all_fields(class)[idx].name.clone(),
                            });
                        }
                    }
                }
            }
            let m = self.unique.entry(key).or_default();
            if !old_fields[idx].is_null() {
                m.remove(&old_fields[idx]);
            }
            if !new_fields[idx].is_null() {
                m.insert(new_fields[idx].clone(), uid);
            }
        }
        let new_heap = fields_heap_bytes(&new_fields);
        let entry = &mut self.entries[uid.0 as usize];
        let versions = entry.versions_mut();
        let last = versions.last_mut().unwrap();
        let acct = &mut self.acct[class.0 as usize];
        if last.span.from == ts {
            // Same-instant update: replace in place (no zero-length version).
            acct.bytes = acct.bytes + new_heap - fields_heap_bytes(&last.fields);
            last.fields = new_fields;
        } else {
            last.span = Interval::new(last.span.from, ts);
            versions.push(Version { fields: new_fields, span: Interval::since(ts) });
            self.version_count += 1;
            acct.versions += 1;
            acct.bytes += VERSION_BYTES + new_heap;
        }
        nepal_obs::flight::emit(nepal_obs::FlightKind::JournalMutation, uid.0, class.0 as u64, 0, "update");
        Ok(())
    }

    /// Delete (close the assertion of) an entity at `ts`. Deleting a node
    /// cascades to all its currently asserted incident edges, mirroring the
    /// referential behaviour of inventory feeds.
    pub fn delete(&mut self, uid: Uid, ts: Ts) -> Result<()> {
        let entry = self.entries.get(uid.0 as usize).ok_or(GraphError::UnknownUid(uid))?;
        let is_node = matches!(entry, Entry::Node(_));
        if is_node {
            let slot = self.adj_slot[uid.0 as usize] as usize;
            let incident: Vec<Uid> =
                self.out_adj[slot].entries.iter().chain(self.in_adj[slot].entries.iter()).map(|a| a.edge).collect();
            for e in incident {
                if self.current_version(e).is_some() {
                    self.close_entry(e, ts)?;
                }
            }
        }
        self.close_entry(uid, ts)
    }

    fn close_entry(&mut self, uid: Uid, ts: Ts) -> Result<()> {
        let entry = &self.entries[uid.0 as usize];
        let class = entry.class();
        let cur = entry.versions().last().filter(|v| v.span.is_current()).ok_or(GraphError::Dead { uid, at: ts })?;
        if ts < cur.span.from {
            return Err(GraphError::NonMonotonicTs { uid, last: cur.span.from, got: ts });
        }
        let fields = cur.fields.clone();
        self.unindex_unique(class, &fields);
        let entry = &mut self.entries[uid.0 as usize];
        let versions = entry.versions_mut();
        let last = versions.last_mut().unwrap();
        if last.span.from == ts {
            // Inserted and deleted at the same instant: drop the version.
            let dropped = versions.pop().expect("current version exists");
            self.version_count -= 1;
            let acct = &mut self.acct[class.0 as usize];
            acct.versions -= 1;
            acct.bytes -= version_heap_bytes(&dropped.fields);
            if versions.is_empty() {
                // Entity never observable; keep the tombstone entry.
            }
        } else {
            last.span = Interval::new(last.span.from, ts);
        }
        self.alive[class.0 as usize] = self.alive[class.0 as usize].saturating_sub(1);
        nepal_obs::flight::emit(nepal_obs::FlightKind::JournalMutation, uid.0, class.0 as u64, 0, "delete");
        Ok(())
    }

    // ------------------------------------------------------------------
    // Lookup API
    // ------------------------------------------------------------------

    pub fn is_node(&self, uid: Uid) -> bool {
        matches!(self.entries.get(uid.0 as usize), Some(Entry::Node(_)))
    }

    pub fn node(&self, uid: Uid) -> Result<&NodeEntry> {
        match self.entries.get(uid.0 as usize) {
            Some(Entry::Node(n)) => Ok(n),
            Some(Entry::Edge(_)) => Err(GraphError::WrongKind { uid, expected: "node" }),
            None => Err(GraphError::UnknownUid(uid)),
        }
    }

    pub fn edge(&self, uid: Uid) -> Result<&EdgeEntry> {
        match self.entries.get(uid.0 as usize) {
            Some(Entry::Edge(e)) => Ok(e),
            Some(Entry::Node(_)) => Err(GraphError::WrongKind { uid, expected: "edge" }),
            None => Err(GraphError::UnknownUid(uid)),
        }
    }

    pub fn class_of(&self, uid: Uid) -> Option<ClassId> {
        self.entries.get(uid.0 as usize).map(|e| e.class())
    }

    pub fn versions(&self, uid: Uid) -> &[Version] {
        self.entries.get(uid.0 as usize).map(|e| e.versions()).unwrap_or(&[])
    }

    /// The still-open version, if the entity is currently asserted.
    pub fn current_version(&self, uid: Uid) -> Option<&Version> {
        self.versions(uid).last().filter(|v| v.span.is_current())
    }

    /// The version asserted at time `ts`, if any.
    pub fn version_at(&self, uid: Uid, ts: Ts) -> Option<&Version> {
        let vs = self.versions(uid);
        // Versions are sorted by span.from; binary search.
        let idx = vs.partition_point(|v| v.span.from <= ts);
        if idx == 0 {
            return None;
        }
        let v = &vs[idx - 1];
        v.span.contains(ts).then_some(v)
    }

    /// All versions whose span overlaps `iv`.
    pub fn versions_overlapping(&self, uid: Uid, iv: &Interval) -> &[Version] {
        let vs = self.versions(uid);
        let lo = vs.partition_point(|v| v.span.to <= iv.from);
        let hi = vs.partition_point(|v| v.span.from < iv.to);
        &vs[lo..hi]
    }

    /// The entity's full assertion set (union of version spans).
    pub fn alive_set(&self, uid: Uid) -> IntervalSet {
        let mut s = IntervalSet::empty();
        for v in self.versions(uid) {
            s.push(v.span);
        }
        s
    }

    /// Every uid ever created with *exactly* class `class`.
    pub fn extent_exact(&self, class: ClassId) -> &[Uid] {
        &self.extents[class.0 as usize]
    }

    /// Iterate all uids of `class` and its subclasses.
    pub fn extent(&self, class: ClassId) -> impl Iterator<Item = Uid> + '_ {
        self.schema.descendants(class).into_iter().flat_map(|c| self.extents[c.0 as usize].to_vec())
    }

    /// Number of currently asserted entities of `class` incl. subclasses —
    /// the optimizer's primary statistic.
    pub fn alive_count(&self, class: ClassId) -> u64 {
        self.schema.descendants(class).into_iter().map(|c| self.alive[c.0 as usize]).sum()
    }

    pub fn out_adj(&self, uid: Uid) -> &[AdjEntry] {
        self.out_adj_list(uid).entries()
    }

    pub fn in_adj(&self, uid: Uid) -> &[AdjEntry] {
        self.in_adj_list(uid).entries()
    }

    /// Out-adjacency of `uid` grouped by exact edge class.
    pub fn out_adj_list(&self, uid: Uid) -> &AdjList {
        match self.adj_slot.get(uid.0 as usize) {
            Some(&s) if s != u32::MAX => &self.out_adj[s as usize],
            _ => &EMPTY_ADJ,
        }
    }

    /// In-adjacency of `uid` grouped by exact edge class.
    pub fn in_adj_list(&self, uid: Uid) -> &AdjList {
        match self.adj_slot.get(uid.0 as usize) {
            Some(&s) if s != u32::MAX => &self.in_adj[s as usize],
            _ => &EMPTY_ADJ,
        }
    }

    /// Unique-index point lookup: the currently asserted entity of `class`
    /// (or a subclass) whose unique field `idx` equals `value`.
    pub fn find_unique(&self, class: ClassId, idx: usize, value: &Value) -> Option<Uid> {
        let key = (self.declaring_class(class, idx), idx);
        let uid = *self.unique.get(&key)?.get(value)?;
        // The index only holds alive entities, but the hit might be of a
        // sibling subclass outside the queried concept; verify.
        let c = self.class_of(uid)?;
        self.schema.is_subclass(c, class).then_some(uid)
    }

    // ------------------------------------------------------------------
    // Bulk restore (journal loading)
    // ------------------------------------------------------------------

    /// Restore one entity during journal load. Entities must arrive in
    /// dense uid order; versions must be chronologically sorted and
    /// non-overlapping. Unique indexes are rebuilt afterwards via
    /// [`TemporalGraph::rebuild_unique_index`].
    pub(crate) fn restore_entity(
        &mut self,
        uid: Uid,
        is_node: bool,
        class: ClassId,
        src: Uid,
        dst: Uid,
        versions: Vec<(Ts, Ts, Vec<Value>)>,
    ) -> Result<()> {
        if uid.0 as usize != self.entries.len() {
            return Err(GraphError::BadClass(format!(
                "journal uid {} out of order (expected {})",
                uid.0,
                self.entries.len()
            )));
        }
        let mut vs: Vec<Version> = Vec::with_capacity(versions.len());
        let mut last_to = i64::MIN;
        for (from, to, fields) in versions {
            if from >= to || from < last_to {
                return Err(GraphError::BadClass(format!(
                    "journal version span [{from},{to}) invalid for uid {}",
                    uid.0
                )));
            }
            last_to = to;
            self.schema.validate_record(class, &fields)?;
            vs.push(Version { fields, span: Interval::new(from, to) });
        }
        let alive = vs.last().is_some_and(|v| v.span.is_current());
        let heap = ENTRY_OVERHEAD_BYTES + vs.iter().map(|v| version_heap_bytes(&v.fields)).sum::<u64>();
        if is_node {
            self.entries.push(Entry::Node(NodeEntry { uid, class, versions: vs.clone() }));
            let slot = self.out_adj.len() as u32;
            self.adj_slot.push(slot);
            self.out_adj.push(AdjList::default());
            self.in_adj.push(AdjList::default());
            self.adj_bytes += ADJ_NODE_BYTES;
        } else {
            if src.0 >= uid.0 || dst.0 >= uid.0 {
                return Err(GraphError::BadClass(format!("edge {} references not-yet-restored endpoint", uid.0)));
            }
            self.node(src)?;
            self.node(dst)?;
            self.entries.push(Entry::Edge(EdgeEntry { uid, class, src, dst, versions: vs.clone() }));
            self.adj_slot.push(u32::MAX);
            let ss = self.adj_slot[src.0 as usize] as usize;
            let ds = self.adj_slot[dst.0 as usize] as usize;
            let new_out = self.out_adj[ss].insert(AdjEntry { edge: uid, other: dst, class, out: true });
            let new_in = self.in_adj[ds].insert(AdjEntry { edge: uid, other: src, class, out: false });
            self.adj_bytes += 2 * ADJ_ENTRY_BYTES + (new_out as u64 + new_in as u64) * ADJ_BUCKET_BYTES;
        }
        self.extents[class.0 as usize].push(uid);
        if alive {
            self.alive[class.0 as usize] += 1;
        }
        self.version_count += vs.len() as u64;
        let acct = &mut self.acct[class.0 as usize];
        acct.entities += 1;
        acct.versions += vs.len() as u64;
        acct.bytes += heap;
        Ok(())
    }

    /// Rebuild the unique index from the currently asserted versions
    /// (journal loading), failing on constraint violations.
    pub(crate) fn rebuild_unique_index(&mut self) -> Result<()> {
        self.unique.clear();
        for raw in 0..self.entries.len() as u64 {
            let uid = Uid(raw);
            let class = self.entries[raw as usize].class();
            let Some(v) = self.current_version(uid) else { continue };
            let fields = v.fields.clone();
            self.check_unique_free(class, &fields)?;
            self.index_unique(class, &fields, uid);
        }
        Ok(())
    }

    /// Approximate heap bytes used by versioned storage — used by the
    /// storage-overhead experiment (§6.1) to compare against materializing
    /// daily snapshots.
    pub fn approx_version_bytes(&self) -> u64 {
        let mut total = 0u64;
        for e in &self.entries {
            for v in e.versions() {
                total += 16 /* span */ + 24 /* vec hdr */ + 40 * v.fields.len() as u64;
            }
            total += 48; // entry overhead
        }
        total
    }

    // ------------------------------------------------------------------
    // Memory reporting
    // ------------------------------------------------------------------

    /// Estimated unique-index bytes: one map header per index plus each
    /// key's slot, heap, and uid payload. Computed on demand (indexes are
    /// small relative to version chains).
    fn unique_index_bytes(&self) -> u64 {
        MAP_HEADER_BYTES
            + self
                .unique
                .values()
                .map(|m| {
                    MAP_HEADER_BYTES
                        + m.keys()
                            .map(|k| VALUE_SLOT_BYTES + value_heap_bytes(k) + std::mem::size_of::<Uid>() as u64)
                            .sum::<u64>()
                })
                .sum::<u64>()
    }

    /// Version-chain length distribution in log₂ buckets, as
    /// `(≤ bound, entities)` over non-empty buckets. O(entities).
    fn chain_histogram(&self) -> Vec<(u64, u64)> {
        let mut counts = [0u64; 64];
        for e in &self.entries {
            let len = e.versions().len() as u64;
            // Same bucketing as the obs histogram: smallest i with len ≤ 2^i.
            let idx = ((64 - len.saturating_sub(1).leading_zeros()) as usize).min(63);
            counts[idx] += 1;
        }
        counts
            .iter()
            .enumerate()
            .filter(|(_, &n)| n > 0)
            .map(|(i, &n)| (if i >= 63 { u64::MAX } else { 1u64 << i }, n))
            .collect()
    }

    fn assemble_report(&self, classes: Vec<ClassMemory>, adjacency_bytes: u64) -> MemoryReport {
        let entity_bytes = classes.iter().map(|c| c.bytes).sum();
        let unique_index_bytes = self.unique_index_bytes();
        MemoryReport {
            total_bytes: entity_bytes + adjacency_bytes + unique_index_bytes,
            entity_bytes,
            adjacency_bytes,
            unique_index_bytes,
            journal_bytes: crate::journal::journal_bytes(self),
            chain_histogram: self.chain_histogram(),
            classes,
        }
    }

    /// Cheap per-class memory rows straight from the incremental
    /// accounting — O(classes), no store walk. The fast path behind
    /// [`StoreGauges::refresh`](crate::metrics::StoreGauges::refresh).
    pub fn class_memory(&self) -> Vec<ClassMemory> {
        let mut classes = Vec::new();
        for (i, acct) in self.acct.iter().enumerate() {
            if acct.entities == 0 {
                continue;
            }
            let class = ClassId(i as u32);
            classes.push(ClassMemory {
                class,
                name: self.schema.class(class).name.clone(),
                kind: self.schema.kind(class),
                entities: acct.entities,
                alive: self.alive[i],
                versions: acct.versions,
                bytes: acct.bytes,
            });
        }
        classes
    }

    /// Estimated adjacency-structure bytes, maintained incrementally.
    pub fn adjacency_bytes(&self) -> u64 {
        self.adj_bytes
    }

    /// Snapshot of the store's estimated memory footprint, assembled from
    /// the incrementally maintained per-class accounting. The per-class
    /// byte figures are O(classes); the chain histogram and journal size
    /// walk the store once.
    pub fn memory_report(&self) -> MemoryReport {
        self.assemble_report(self.class_memory(), self.adj_bytes)
    }

    /// Brute-force recount: rebuild the entire [`MemoryReport`] by walking
    /// every entry, version, and adjacency list, ignoring the incremental
    /// accounting. The churn proptest pins `memory_report` to this walk.
    pub fn memory_recount(&self) -> MemoryReport {
        let n = self.schema.num_classes();
        let mut per = vec![ClassAccounting::default(); n];
        let mut alive = vec![0u64; n];
        for e in &self.entries {
            let c = e.class().0 as usize;
            per[c].entities += 1;
            per[c].versions += e.versions().len() as u64;
            per[c].bytes +=
                ENTRY_OVERHEAD_BYTES + e.versions().iter().map(|v| version_heap_bytes(&v.fields)).sum::<u64>();
            alive[c] += e.versions().last().is_some_and(|v| v.span.is_current()) as u64;
        }
        let mut classes = Vec::new();
        for (i, acct) in per.iter().enumerate() {
            if acct.entities == 0 {
                continue;
            }
            let class = ClassId(i as u32);
            classes.push(ClassMemory {
                class,
                name: self.schema.class(class).name.clone(),
                kind: self.schema.kind(class),
                entities: acct.entities,
                alive: alive[i],
                versions: acct.versions,
                bytes: acct.bytes,
            });
        }
        let adjacency_bytes = self
            .out_adj
            .iter()
            .chain(self.in_adj.iter())
            .map(|l| std::mem::size_of::<AdjList>() as u64 + l.heap_bytes())
            .sum();
        self.assemble_report(classes, adjacency_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nepal_schema::dsl::parse_schema;

    fn schema() -> Arc<Schema> {
        Arc::new(
            parse_schema(
                r#"
                node VM { vm_id: int unique, status: str }
                node Host { host_id: int unique }
                edge HostedOn { }
                allow HostedOn (VM -> Host)
                "#,
            )
            .unwrap(),
        )
    }

    fn vm(g: &mut TemporalGraph, id: i64, ts: Ts) -> Uid {
        let c = g.schema().class_by_name("VM").unwrap();
        g.insert_node(c, vec![Value::Int(id), Value::Str("Green".into())], ts).unwrap()
    }

    #[test]
    fn insert_update_delete_versioning() {
        let s = schema();
        let mut g = TemporalGraph::new(s);
        let u = vm(&mut g, 1, 100);
        assert!(g.current_version(u).is_some());
        g.update(u, &[(1, Value::Str("Red".into()))], 200).unwrap();
        assert_eq!(g.versions(u).len(), 2);
        // Time travel: at 150 the status is still Green.
        assert_eq!(g.version_at(u, 150).unwrap().fields[1], Value::Str("Green".into()));
        assert_eq!(g.version_at(u, 250).unwrap().fields[1], Value::Str("Red".into()));
        g.delete(u, 300).unwrap();
        assert!(g.current_version(u).is_none());
        assert!(g.version_at(u, 250).is_some());
        assert!(g.version_at(u, 300).is_none());
        assert_eq!(g.alive_set(u).intervals(), &[Interval::new(100, 300)]);
    }

    #[test]
    fn edge_rules_enforced_on_insert() {
        let s = schema();
        let mut g = TemporalGraph::new(s.clone());
        let v = vm(&mut g, 1, 0);
        let hc = s.class_by_name("Host").unwrap();
        let h = g.insert_node(hc, vec![Value::Int(7)], 0).unwrap();
        let ec = s.class_by_name("HostedOn").unwrap();
        g.insert_edge(ec, v, h, vec![], 10).unwrap();
        // Reverse direction forbidden by the allow rule.
        let err = g.insert_edge(ec, h, v, vec![], 10).unwrap_err();
        assert!(matches!(err, GraphError::EdgeNotAllowed { .. }));
    }

    #[test]
    fn delete_node_cascades_to_edges() {
        let s = schema();
        let mut g = TemporalGraph::new(s.clone());
        let v = vm(&mut g, 1, 0);
        let hc = s.class_by_name("Host").unwrap();
        let h = g.insert_node(hc, vec![Value::Int(7)], 0).unwrap();
        let ec = s.class_by_name("HostedOn").unwrap();
        let e = g.insert_edge(ec, v, h, vec![], 0).unwrap();
        g.delete(h, 50).unwrap();
        assert!(g.current_version(e).is_none());
        assert!(g.version_at(e, 25).is_some());
        // VM survives.
        assert!(g.current_version(v).is_some());
    }

    #[test]
    fn unique_constraint_blocks_garbage() {
        // "strong typing and uniqueness constraints ... prevented us from
        // loading garbage data into the graphs" (§6.1).
        let s = schema();
        let mut g = TemporalGraph::new(s);
        vm(&mut g, 1, 0);
        let c = g.schema().class_by_name("VM").unwrap();
        let err = g.insert_node(c, vec![Value::Int(1), Value::Str("Green".into())], 1).unwrap_err();
        assert!(matches!(err, GraphError::UniqueViolation { .. }));
    }

    #[test]
    fn unique_released_after_delete_and_rekeyed_on_update() {
        let s = schema();
        let mut g = TemporalGraph::new(s);
        let u = vm(&mut g, 1, 0);
        g.update(u, &[(0, Value::Int(2))], 10).unwrap();
        // id 1 free again.
        let u2 = vm(&mut g, 1, 20);
        g.delete(u2, 30).unwrap();
        let _u3 = vm(&mut g, 1, 40); // free after delete
        let c = g.schema().class_by_name("VM").unwrap();
        assert_eq!(g.find_unique(c, 0, &Value::Int(2)), Some(u));
    }

    #[test]
    fn alive_counts_track_mutations() {
        let s = schema();
        let mut g = TemporalGraph::new(s.clone());
        let c = s.class_by_name("VM").unwrap();
        let u1 = vm(&mut g, 1, 0);
        let _u2 = vm(&mut g, 2, 0);
        assert_eq!(g.alive_count(c), 2);
        g.delete(u1, 5).unwrap();
        assert_eq!(g.alive_count(c), 1);
        assert_eq!(g.alive_count(nepal_schema::NODE), 1);
    }

    #[test]
    fn type_errors_rejected_at_insert() {
        let s = schema();
        let mut g = TemporalGraph::new(s.clone());
        let c = s.class_by_name("VM").unwrap();
        assert!(g.insert_node(c, vec![Value::Str("oops".into()), Value::Str("x".into())], 0).is_err());
        // Edge class used as node class.
        let ec = s.class_by_name("HostedOn").unwrap();
        assert!(matches!(g.insert_node(ec, vec![], 0), Err(GraphError::BadClass(_))));
    }

    #[test]
    fn same_instant_update_replaces_version() {
        let s = schema();
        let mut g = TemporalGraph::new(s);
        let u = vm(&mut g, 1, 100);
        g.update(u, &[(1, Value::Str("Red".into()))], 100).unwrap();
        assert_eq!(g.versions(u).len(), 1);
        assert_eq!(g.current_version(u).unwrap().fields[1], Value::Str("Red".into()));
    }

    #[test]
    fn adjacency_buckets_group_by_exact_edge_class() {
        let s = Arc::new(
            parse_schema(
                r#"
                node VM { vm_id: int unique, status: str }
                node Host { host_id: int unique }
                edge HostedOn { }
                edge Linked : HostedOn { }
                allow HostedOn (VM -> Host)
                "#,
            )
            .unwrap(),
        );
        let mut g = TemporalGraph::new(s.clone());
        let v = vm(&mut g, 1, 0);
        let hc = s.class_by_name("Host").unwrap();
        let hosted = s.class_by_name("HostedOn").unwrap();
        let linked = s.class_by_name("Linked").unwrap();
        let hosts: Vec<Uid> = (0..4).map(|i| g.insert_node(hc, vec![Value::Int(i)], 0).unwrap()).collect();
        // Interleave the two edge classes; buckets must re-group them.
        let e0 = g.insert_edge(hosted, v, hosts[0], vec![], 1).unwrap();
        let e1 = g.insert_edge(linked, v, hosts[1], vec![], 2).unwrap();
        let e2 = g.insert_edge(hosted, v, hosts[2], vec![], 3).unwrap();
        let e3 = g.insert_edge(linked, v, hosts[3], vec![], 4).unwrap();

        let list = g.out_adj_list(v);
        let runs: Vec<(ClassId, Vec<Uid>)> =
            list.buckets().map(|(c, es)| (c, es.iter().map(|a| a.edge).collect())).collect();
        assert_eq!(runs, vec![(hosted, vec![e0, e2]), (linked, vec![e1, e3])]);
        // The flat view covers the same entries, grouped.
        assert_eq!(list.entries().len(), 4);
        assert!(list.entries().iter().all(|a| a.out && a.class == g.edge(a.edge).unwrap().class));
        // In-adjacency carries direction = false and the same denormalized class.
        let in0 = g.in_adj(hosts[0]);
        assert_eq!(in0.len(), 1);
        assert!(!in0[0].out);
        assert_eq!(in0[0].class, hosted);
        assert_eq!(in0[0].other, v);
    }

    #[test]
    fn versions_overlapping_range() {
        let s = schema();
        let mut g = TemporalGraph::new(s);
        let u = vm(&mut g, 1, 0);
        g.update(u, &[(1, Value::Str("A".into()))], 10).unwrap();
        g.update(u, &[(1, Value::Str("B".into()))], 20).unwrap();
        let vs = g.versions_overlapping(u, &Interval::new(5, 15));
        assert_eq!(vs.len(), 2); // [0,10) and [10,20)
        let vs = g.versions_overlapping(u, &Interval::new(25, 30));
        assert_eq!(vs.len(), 1); // [20, ∞)
    }

    fn assert_report_matches_recount(g: &TemporalGraph) {
        let report = g.memory_report();
        let recount = g.memory_recount();
        assert_eq!(report.entity_bytes, recount.entity_bytes, "entity bytes drifted from recount");
        assert_eq!(report.adjacency_bytes, recount.adjacency_bytes, "adjacency bytes drifted");
        assert_eq!(report.unique_index_bytes, recount.unique_index_bytes);
        assert_eq!(report.total_bytes, recount.total_bytes);
        assert_eq!(report.chain_histogram, recount.chain_histogram);
        assert_eq!(report.classes.len(), recount.classes.len());
        for (a, b) in report.classes.iter().zip(recount.classes.iter()) {
            assert_eq!(
                (a.class, a.entities, a.alive, a.versions, a.bytes),
                (b.class, b.entities, b.alive, b.versions, b.bytes),
                "class {} accounting drifted",
                a.name
            );
        }
    }

    #[test]
    fn accounting_tracks_every_mutation_path() {
        let s = schema();
        let mut g = TemporalGraph::new(s.clone());
        assert_eq!(g.memory_report().entity_bytes, 0);

        // Inserts: nodes, then an edge (adjacency bytes appear).
        let v = vm(&mut g, 1, 0);
        let hc = s.class_by_name("Host").unwrap();
        let h = g.insert_node(hc, vec![Value::Int(7)], 0).unwrap();
        let ec = s.class_by_name("HostedOn").unwrap();
        let e = g.insert_edge(ec, v, h, vec![], 10).unwrap();
        assert_report_matches_recount(&g);
        let after_edges = g.memory_report();
        assert!(after_edges.adjacency_bytes > 0);
        assert!(after_edges.journal_bytes > 0);

        // Update grows the chain; a longer string grows the payload bytes.
        let before = g.memory_report().entity_bytes;
        g.update(v, &[(1, Value::Str("a much longer status string".into()))], 20).unwrap();
        assert!(g.memory_report().entity_bytes > before);
        assert_report_matches_recount(&g);

        // Same-instant update rewrites in place (no extra version).
        g.update(v, &[(1, Value::Str("Red".into()))], 20).unwrap();
        assert_report_matches_recount(&g);

        // Deletes close version chains (cascade closes the edge too).
        g.delete(h, 50).unwrap();
        assert!(g.current_version(e).is_none());
        assert_report_matches_recount(&g);

        // Same-instant insert+delete pops the version entirely.
        let v2 = vm(&mut g, 2, 100);
        g.delete(v2, 100).unwrap();
        assert_report_matches_recount(&g);

        // Per-class split: VM vs Host vs HostedOn all present.
        let report = g.memory_report();
        let names: Vec<&str> = report.classes.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"VM") && names.contains(&"Host") && names.contains(&"HostedOn"));
        let vm_row = report.classes.iter().find(|c| c.name == "VM").unwrap();
        assert_eq!(vm_row.kind, ClassKind::Node);
        assert_eq!(vm_row.entities, 2);
        assert_eq!(vm_row.alive, 1);
    }

    #[test]
    fn accounting_survives_journal_round_trip() {
        let s = schema();
        let mut g = TemporalGraph::new(s.clone());
        let v = vm(&mut g, 1, 0);
        let hc = s.class_by_name("Host").unwrap();
        let h = g.insert_node(hc, vec![Value::Int(7)], 0).unwrap();
        let ec = s.class_by_name("HostedOn").unwrap();
        g.insert_edge(ec, v, h, vec![], 10).unwrap();
        g.update(v, &[(1, Value::Str("Red".into()))], 20).unwrap();

        let mut buf = Vec::new();
        crate::journal::save_graph(&g, &mut buf).unwrap();
        assert_eq!(crate::journal::journal_bytes(&g), buf.len() as u64);
        let restored = crate::journal::load_graph(s, &mut buf.as_slice()).unwrap();
        // restore_entity must maintain the same incremental accounting.
        assert_report_matches_recount(&restored);
        assert_eq!(restored.memory_report().total_bytes, g.memory_report().total_bytes);
    }

    #[test]
    fn value_heap_bytes_covers_nested_containers() {
        assert_eq!(value_heap_bytes(&Value::Int(7)), 0);
        assert_eq!(value_heap_bytes(&Value::Str("abcd".into())), 4);
        let list = Value::List(vec![Value::Str("ab".into()), Value::Int(1)]);
        assert_eq!(value_heap_bytes(&list), 2 * VALUE_SLOT_BYTES + 2);
        let nested = Value::List(vec![list.clone()]);
        assert_eq!(value_heap_bytes(&nested), VALUE_SLOT_BYTES + value_heap_bytes(&list));
    }
}
