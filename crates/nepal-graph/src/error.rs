//! Error types for the temporal graph store.

use std::fmt;

use nepal_schema::{SchemaError, Ts};

use crate::store::Uid;

/// Errors raised by graph mutations and lookups.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// The uid does not exist in the store.
    UnknownUid(Uid),
    /// A node operation was applied to an edge, or vice versa.
    WrongKind { uid: Uid, expected: &'static str },
    /// The entity is not asserted (alive) at the given time.
    Dead { uid: Uid, at: Ts },
    /// The schema's allowed-edge rules forbid this connection.
    EdgeNotAllowed { edge_class: String, src_class: String, dst_class: String },
    /// A unique-field constraint would be violated.
    UniqueViolation { class: String, field: String },
    /// Transaction times must be non-decreasing per entity.
    NonMonotonicTs { uid: Uid, last: Ts, got: Ts },
    /// Schema-level validation failure.
    Schema(SchemaError),
    /// The class is not a node (resp. edge) class.
    BadClass(String),
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::UnknownUid(u) => write!(f, "unknown uid {}", u.0),
            GraphError::WrongKind { uid, expected } => {
                write!(f, "uid {} is not a {expected}", uid.0)
            }
            GraphError::Dead { uid, at } => write!(f, "entity {} is not asserted at {at}", uid.0),
            GraphError::EdgeNotAllowed { edge_class, src_class, dst_class } => {
                write!(f, "schema forbids edge `{edge_class}` from `{src_class}` to `{dst_class}`")
            }
            GraphError::UniqueViolation { class, field } => {
                write!(f, "unique violation on `{class}.{field}`")
            }
            GraphError::NonMonotonicTs { uid, last, got } => {
                write!(f, "non-monotonic transaction time for uid {}: last {last}, got {got}", uid.0)
            }
            GraphError::Schema(e) => write!(f, "schema error: {e}"),
            GraphError::BadClass(c) => write!(f, "bad class for operation: `{c}`"),
        }
    }
}

impl std::error::Error for GraphError {}

impl From<SchemaError> for GraphError {
    fn from(e: SchemaError) -> Self {
        GraphError::Schema(e)
    }
}

/// Result alias for graph operations.
pub type Result<T> = std::result::Result<T, GraphError>;
