//! Std-only FxHash-style hasher for hot-path maps.
//!
//! The default `std::collections::HashMap` hasher (SipHash-1-3) is
//! DoS-resistant but costs ~1ns/byte; the evaluator's memo keys and the
//! engine's join keys are small fixed-width integers hashed millions of
//! times per query, where a multiply-rotate mix in the style of rustc's
//! FxHasher is several times faster and collision behaviour on dense
//! integer keys is fine. Keys never come from untrusted input, so the
//! DoS property is not needed on these paths.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// Multiply-rotate hasher (rustc-hash style). Word-at-a-time, std-only.
#[derive(Default, Clone, Copy)]
pub struct FxHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add_to_hash(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.add_to_hash(u64::from_le_bytes(c.try_into().unwrap()));
        }
        let rest = chunks.remainder();
        if !rest.is_empty() {
            let mut buf = [0u8; 8];
            buf[..rest.len()].copy_from_slice(rest);
            self.add_to_hash(u64::from_le_bytes(buf) | (rest.len() as u64) << 56);
        }
    }

    #[inline]
    fn write_u8(&mut self, n: u8) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add_to_hash(n);
    }

    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add_to_hash(n as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// `BuildHasher` for [`FxHasher`].
pub type FxBuildHasher = BuildHasherDefault<FxHasher>;

/// Drop-in `HashMap` with the fast hasher.
pub type FxHashMap<K, V> = HashMap<K, V, FxBuildHasher>;

/// Drop-in `HashSet` with the fast hasher.
pub type FxHashSet<T> = HashSet<T, FxBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_basic_ops_work() {
        let mut m: FxHashMap<(u64, u32), u64> = FxHashMap::default();
        for i in 0..1000u64 {
            m.insert((i, (i % 7) as u32), i * 3);
        }
        assert_eq!(m.len(), 1000);
        for i in 0..1000u64 {
            assert_eq!(m.get(&(i, (i % 7) as u32)), Some(&(i * 3)));
        }
    }

    #[test]
    fn hash_differs_across_nearby_keys() {
        use std::hash::BuildHasher;
        let b = FxBuildHasher::default();
        let h = |k: u64| b.hash_one(k);
        // Not a quality test, just a sanity check that the mix is not the
        // identity on dense integers.
        assert_ne!(h(1), h(2));
        assert_ne!(h(1) & 0xff, h(2) & 0xff);
    }

    #[test]
    fn set_and_string_keys_work() {
        let mut s: FxHashSet<String> = FxHashSet::default();
        s.insert("abcdefghi".into()); // exercises the partial-word path
        s.insert("abcdefgh".into()); // exact 8-byte chunk
        assert!(s.contains("abcdefghi"));
        assert_eq!(s.len(), 2);
    }
}
