//! Graph persistence: a line-oriented journal that captures every version
//! of every entity, losslessly, for save/load across process restarts.
//!
//! Format (one record per line, values in the canonical
//! [`nepal_schema::codec`] encoding):
//!
//! ```text
//! NEPALJ1
//! N <uid> <class-path> <n-versions>
//! E <uid> <class-path> <src> <dst> <n-versions>
//! V <from> <to> <n-fields> <value> <value> …
//! ```
//!
//! Entities are written in uid order (uids are dense store indexes), so
//! loading reconstructs an identical store: same uids, same versions, same
//! indexes. The schema itself is not persisted — callers keep it in the
//! schema DSL — and the loader verifies every class path against the
//! provided schema.

use std::io::{BufRead, Write};
use std::sync::Arc;

use nepal_schema::codec::{decode_value, value_to_text};
use nepal_schema::{ClassKind, Schema, Value};

use crate::error::{GraphError, Result};
use crate::interval::FOREVER;
use crate::store::{TemporalGraph, Uid};

const MAGIC: &str = "NEPALJ1";

fn io_err(e: std::io::Error) -> GraphError {
    GraphError::BadClass(format!("journal io error: {e}"))
}

fn format_err(line: usize, msg: &str) -> GraphError {
    GraphError::BadClass(format!("journal format error at line {line}: {msg}"))
}

/// Number of lines [`save_graph`] would emit for `g` — one header, one per
/// entity, one per version. A cheap persistence-size gauge.
pub fn journal_lines(g: &TemporalGraph) -> u64 {
    1 + g.num_entities() as u64 + g.num_versions()
}

/// Exact size in bytes of the journal [`save_graph`] would produce, via a
/// counting-writer pass over the full serialization (no allocation beyond
/// per-line formatting).
pub fn journal_bytes(g: &TemporalGraph) -> u64 {
    struct CountWriter(u64);
    impl Write for CountWriter {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0 += buf.len() as u64;
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }
    let mut w = CountWriter(0);
    save_graph(g, &mut w).expect("counting writer cannot fail");
    w.0
}

/// Write the complete graph to `w`.
pub fn save_graph<W: Write>(g: &TemporalGraph, w: &mut W) -> Result<()> {
    let schema = g.schema();
    writeln!(w, "{MAGIC}").map_err(io_err)?;
    for raw in 0..g.num_entities() as u64 {
        let uid = Uid(raw);
        let class = g.class_of(uid).expect("dense uids");
        let path = schema.path_name(class);
        let versions = g.versions(uid);
        if g.is_node(uid) {
            writeln!(w, "N {raw} {path} {}", versions.len()).map_err(io_err)?;
        } else {
            let e = g.edge(uid)?;
            writeln!(w, "E {raw} {path} {} {} {}", e.src.0, e.dst.0, versions.len()).map_err(io_err)?;
        }
        for (i, v) in versions.iter().enumerate() {
            // Journal lines always carry full values; delta-encoded
            // history versions are materialized on the way out (the
            // loader re-encodes them canonically, so accounting
            // round-trips byte-exactly).
            let fields = crate::store::materialize_version(versions, i);
            write!(w, "V {} {} {}", v.span.from, v.span.to, fields.len()).map_err(io_err)?;
            for f in fields.iter() {
                write!(w, " {}", value_to_text(f)).map_err(io_err)?;
            }
            writeln!(w).map_err(io_err)?;
        }
    }
    Ok(())
}

/// A torn (partially written) journal tail dropped by lenient recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TornTail {
    /// 1-based line where the tear was detected.
    pub line: usize,
    /// Why that line failed to parse.
    pub reason: String,
    /// Lines dropped (the torn line plus any incomplete entity block it
    /// belongs to).
    pub dropped_lines: usize,
    /// Byte length of the intact journal prefix — truncate the file to
    /// this length to repair it in place.
    pub keep_bytes: u64,
}

/// Load a graph saved by [`save_graph`], validating against `schema`.
pub fn load_graph<R: BufRead>(schema: Arc<Schema>, r: &mut R) -> Result<TemporalGraph> {
    load_graph_inner(schema, r, false).map(|(g, _)| g)
}

/// [`load_graph`] tolerating a torn tail: a crash mid-append leaves a
/// partial final record, which strict loading rejects wholesale. Lenient
/// loading recovers every complete entity before the tear and reports the
/// dropped tail (so the caller can warn and truncate). Corruption that is
/// *followed* by valid records is still a hard error — only a trailing
/// tear is recoverable.
pub fn load_graph_lenient<R: BufRead>(schema: Arc<Schema>, r: &mut R) -> Result<(TemporalGraph, Option<TornTail>)> {
    let (g, torn) = load_graph_inner(schema, r, true)?;
    if let Some(t) = &torn {
        // Recovery is an operational event, not just a warning: bump the
        // process counter behind `nepal_journal_torn_tail_total` and leave
        // a wide event in the flight recorder.
        nepal_obs::flight::note_journal_torn_tail(t.line as u64, t.dropped_lines as u64);
    }
    Ok((g, torn))
}

fn load_graph_inner<R: BufRead>(
    schema: Arc<Schema>,
    r: &mut R,
    lenient: bool,
) -> Result<(TemporalGraph, Option<TornTail>)> {
    let all: Vec<String> = r.lines().collect::<std::io::Result<_>>().map_err(io_err)?;
    if all.is_empty() {
        return Err(format_err(1, "empty journal"));
    }
    if all[0].trim() != MAGIC {
        return Err(format_err(1, "bad magic"));
    }
    // Byte offset of each line start (journal lines are `\n`-terminated).
    let offset_of = |idx: usize| -> u64 { all[..idx].iter().map(|l| l.len() as u64 + 1).sum() };
    let mut g = TemporalGraph::new(schema.clone());
    let mut pending: Option<(bool, u64, nepal_schema::ClassId, u64, u64, usize)> = None;
    // Line index of the pending entity's header — the start of the block
    // a torn version line belongs to.
    let mut pending_start: usize = 0;
    let mut versions: Vec<(i64, i64, Vec<Value>)> = Vec::new();
    let mut torn: Option<TornTail> = None;
    let flush = |g: &mut TemporalGraph,
                 pending: &mut Option<(bool, u64, nepal_schema::ClassId, u64, u64, usize)>,
                 versions: &mut Vec<(i64, i64, Vec<Value>)>,
                 lineno: usize|
     -> Result<()> {
        if let Some((is_node, uid, class, src, dst, n)) = pending.take() {
            if versions.len() != n {
                return Err(format_err(lineno, "version count mismatch"));
            }
            g.restore_entity(Uid(uid), is_node, class, Uid(src), Uid(dst), std::mem::take(versions))?;
        }
        Ok(())
    };
    // A parse error is a recoverable tear only if nothing meaningful
    // follows it.
    let tail_is_blank = |from: usize| all[from..].iter().all(|l| l.trim().is_empty());
    let mut idx = 1;
    'parse: while idx < all.len() {
        let lineno = idx + 1;
        let line = all[idx].trim_end();
        if line.is_empty() {
            idx += 1;
            continue;
        }
        // Run one line; on a tail tear in lenient mode, drop the torn
        // entity block instead of failing.
        let step = |g: &mut TemporalGraph,
                    pending: &mut Option<(bool, u64, nepal_schema::ClassId, u64, u64, usize)>,
                    pending_start: &mut usize,
                    versions: &mut Vec<(i64, i64, Vec<Value>)>|
         -> Result<()> {
            parse_line(&schema, g, line, lineno, idx, pending, pending_start, versions, &flush)
        };
        if let Err(e) = step(&mut g, &mut pending, &mut pending_start, &mut versions) {
            if lenient && tail_is_blank(idx + 1) {
                let drop_start = if pending.is_some() { pending_start } else { idx };
                torn = Some(TornTail {
                    line: lineno,
                    reason: e.to_string(),
                    dropped_lines: all.len() - drop_start,
                    keep_bytes: offset_of(drop_start),
                });
                pending = None;
                versions.clear();
                break 'parse;
            }
            return Err(e);
        }
        idx += 1;
    }
    if torn.is_none() {
        if let Err(e) = flush(&mut g, &mut pending, &mut versions, usize::MAX) {
            // EOF mid-entity: the file ends before the declared version
            // count was reached — the canonical torn tail.
            if !lenient {
                return Err(e);
            }
            torn = Some(TornTail {
                line: all.len(),
                reason: e.to_string(),
                dropped_lines: all.len() - pending_start,
                keep_bytes: offset_of(pending_start),
            });
        }
    }
    g.rebuild_unique_index()?;
    Ok((g, torn))
}

/// Parse one journal line, updating the in-progress entity block.
#[allow(clippy::too_many_arguments)]
fn parse_line(
    schema: &Arc<Schema>,
    g: &mut TemporalGraph,
    line: &str,
    lineno: usize,
    idx: usize,
    pending: &mut Option<(bool, u64, nepal_schema::ClassId, u64, u64, usize)>,
    pending_start: &mut usize,
    versions: &mut Vec<(i64, i64, Vec<Value>)>,
    flush: &impl Fn(
        &mut TemporalGraph,
        &mut Option<(bool, u64, nepal_schema::ClassId, u64, u64, usize)>,
        &mut Vec<(i64, i64, Vec<Value>)>,
        usize,
    ) -> Result<()>,
) -> Result<()> {
    {
        let mut parts = line.split(' ');
        match parts.next() {
            Some("N") | Some("E") => {
                flush(g, pending, versions, lineno)?;
                let is_node = line.starts_with('N');
                let uid: u64 =
                    parts.next().and_then(|s| s.parse().ok()).ok_or_else(|| format_err(lineno, "bad uid"))?;
                let path = parts.next().ok_or_else(|| format_err(lineno, "missing class"))?;
                let class =
                    schema.class_by_name(path).ok_or_else(|| format_err(lineno, &format!("unknown class `{path}`")))?;
                let expected_kind = if is_node { ClassKind::Node } else { ClassKind::Edge };
                if schema.kind(class) != expected_kind {
                    return Err(format_err(lineno, "class kind mismatch"));
                }
                let (src, dst) = if is_node {
                    (0, 0)
                } else {
                    let s: u64 =
                        parts.next().and_then(|x| x.parse().ok()).ok_or_else(|| format_err(lineno, "bad src"))?;
                    let d: u64 =
                        parts.next().and_then(|x| x.parse().ok()).ok_or_else(|| format_err(lineno, "bad dst"))?;
                    (s, d)
                };
                let n: usize =
                    parts.next().and_then(|x| x.parse().ok()).ok_or_else(|| format_err(lineno, "bad version count"))?;
                *pending = Some((is_node, uid, class, src, dst, n));
                *pending_start = idx;
            }
            Some("V") => {
                let from: i64 =
                    parts.next().and_then(|x| x.parse().ok()).ok_or_else(|| format_err(lineno, "bad from"))?;
                let to: i64 = parts.next().and_then(|x| x.parse().ok()).ok_or_else(|| format_err(lineno, "bad to"))?;
                let n: usize =
                    parts.next().and_then(|x| x.parse().ok()).ok_or_else(|| format_err(lineno, "bad field count"))?;
                // The rest of the line holds the encoded values, after the
                // fourth space-separated token (`V from to n`).
                let mut rest = if n == 0 {
                    ""
                } else {
                    let rest_start = line
                        .match_indices(' ')
                        .nth(2)
                        .map(|(i, _)| i + 1)
                        .ok_or_else(|| format_err(lineno, "missing fields"))?;
                    // Skip the field-count token itself.
                    let tail = &line[rest_start..];
                    match tail.find(' ') {
                        Some(sp) => &tail[sp + 1..],
                        None => return Err(format_err(lineno, "missing field values")),
                    }
                };
                let mut fields = Vec::with_capacity(n);
                for _ in 0..n {
                    rest = rest.trim_start();
                    let (v, used) = decode_value(rest).map_err(|e| format_err(lineno, &format!("bad value: {e}")))?;
                    fields.push(v);
                    rest = &rest[used..];
                }
                if !rest.trim().is_empty() {
                    return Err(format_err(lineno, "trailing value data"));
                }
                versions.push((from, to, fields));
            }
            other => return Err(format_err(lineno, &format!("unknown record {other:?}"))),
        }
    }
    Ok(())
}

/// Save to a file path.
pub fn save_to_file(g: &TemporalGraph, path: &std::path::Path) -> Result<()> {
    let mut f = std::io::BufWriter::new(std::fs::File::create(path).map_err(io_err)?);
    save_graph(g, &mut f)?;
    f.flush().map_err(io_err)
}

/// Load from a file path.
pub fn load_from_file(schema: Arc<Schema>, path: &std::path::Path) -> Result<TemporalGraph> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path).map_err(io_err)?);
    load_graph(schema, &mut f)
}

/// Load from a file path, repairing a torn tail in place: every complete
/// entity before the tear is recovered, a warning is printed to stderr,
/// and the file is truncated back to its intact prefix so the next append
/// starts from a clean boundary. Returns the recovered graph and the tear
/// description (if any).
pub fn load_from_file_lenient(
    schema: Arc<Schema>,
    path: &std::path::Path,
) -> Result<(TemporalGraph, Option<TornTail>)> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path).map_err(io_err)?);
    let (g, torn) = load_graph_lenient(schema, &mut f)?;
    drop(f);
    if let Some(t) = &torn {
        eprintln!(
            "warning: journal `{}` has a torn tail at line {} ({}); dropping {} line(s), truncating to {} bytes",
            path.display(),
            t.line,
            t.reason,
            t.dropped_lines,
            t.keep_bytes
        );
        let file = std::fs::OpenOptions::new().write(true).open(path).map_err(io_err)?;
        file.set_len(t.keep_bytes).map_err(io_err)?;
    }
    Ok((g, torn))
}

const _: () = {
    // FOREVER is serialized as its literal i64 value; assert it's stable.
    assert!(FOREVER == i64::MAX);
};

#[cfg(test)]
mod tests {
    use super::*;
    use nepal_schema::dsl::parse_schema;

    fn fixture() -> TemporalGraph {
        let s = Arc::new(
            parse_schema(
                r#"
                data geo { region: str }
                node VM { vm_id: int unique, status: str, loc: geo optional }
                node Host { host_id: int unique }
                edge HostedOn { }
                "#,
            )
            .unwrap(),
        );
        let mut g = TemporalGraph::new(s.clone());
        let vm = s.class_by_name("VM").unwrap();
        let host = s.class_by_name("Host").unwrap();
        let ho = s.class_by_name("HostedOn").unwrap();
        let v1 = g
            .insert_node(
                vm,
                vec![Value::Int(1), Value::Str("Green".into()), Value::Composite(vec![Value::Str("east".into())])],
                100,
            )
            .unwrap();
        let h1 = g.insert_node(host, vec![Value::Int(7)], 100).unwrap();
        let e = g.insert_edge(ho, v1, h1, vec![], 110).unwrap();
        g.update(v1, &[(1, Value::Str("Red".into()))], 200).unwrap();
        g.delete(e, 300).unwrap();
        let v2 = g.insert_node(vm, vec![Value::Int(2), Value::Str("Green".into()), Value::Null], 150).unwrap();
        g.delete(v2, 400).unwrap();
        g
    }

    #[test]
    fn save_load_round_trip_is_exact() {
        let g = fixture();
        let mut buf = Vec::new();
        save_graph(&g, &mut buf).unwrap();
        let mut cursor = std::io::Cursor::new(&buf);
        let g2 = load_graph(g.schema().clone(), &mut cursor).unwrap();

        assert_eq!(g.num_entities(), g2.num_entities());
        assert_eq!(g.num_versions(), g2.num_versions());
        for raw in 0..g.num_entities() as u64 {
            let uid = Uid(raw);
            assert_eq!(g.class_of(uid), g2.class_of(uid));
            assert_eq!(g.is_node(uid), g2.is_node(uid));
            let (va, vb) = (g.versions(uid), g2.versions(uid));
            assert_eq!(va.len(), vb.len(), "uid {raw}");
            for (i, (a, b)) in va.iter().zip(vb).enumerate() {
                assert_eq!(a.span, b.span);
                assert_eq!(g.fields_of(uid, i), g2.fields_of(uid, i));
            }
            if !g.is_node(uid) {
                assert_eq!(g.edge(uid).unwrap().src, g2.edge(uid).unwrap().src);
                assert_eq!(g.edge(uid).unwrap().dst, g2.edge(uid).unwrap().dst);
            } else {
                assert_eq!(g.out_adj(uid), g2.out_adj(uid));
                assert_eq!(g.in_adj(uid), g2.in_adj(uid));
            }
        }
        // Unique index works after restore: inserting a duplicate vm_id of
        // a still-alive entity fails, of a dead one succeeds.
        let mut g2 = g2;
        let vm = g.schema().class_by_name("VM").unwrap();
        assert!(g2.insert_node(vm, vec![Value::Int(1), Value::Str("x".into()), Value::Null], 500).is_err());
        assert!(g2.insert_node(vm, vec![Value::Int(2), Value::Str("x".into()), Value::Null], 500).is_ok());
    }

    #[test]
    fn queries_agree_after_reload() {
        use crate::view::{GraphView, TimeFilter};
        let g = fixture();
        let mut buf = Vec::new();
        save_graph(&g, &mut buf).unwrap();
        let g2 = load_graph(g.schema().clone(), &mut std::io::Cursor::new(&buf)).unwrap();
        for t in [50i64, 120, 250, 350, 500] {
            for raw in 0..g.num_entities() as u64 {
                let uid = Uid(raw);
                let a = GraphView::new(&g, TimeFilter::AsOf(t)).alive(uid);
                let b = GraphView::new(&g2, TimeFilter::AsOf(t)).alive(uid);
                assert_eq!(a, b, "uid {raw} at {t}");
            }
        }
    }

    #[test]
    fn malformed_journals_rejected() {
        let s = fixture().schema().clone();
        let try_load = |text: &str| load_graph(s.clone(), &mut std::io::Cursor::new(text.as_bytes().to_vec()));
        assert!(try_load("").is_err());
        assert!(try_load("WRONGMAGIC\n").is_err());
        assert!(try_load("NEPALJ1\nX 0 VM 1\n").is_err());
        assert!(try_load("NEPALJ1\nN 0 NoSuchClass 0\n").is_err());
        assert!(try_load("NEPALJ1\nN 0 Node:VM 2\nV 0 100 0\n").is_err()); // count mismatch
        assert!(try_load("NEPALJ1\nN 0 Node:VM 1\nV 0 100 1 zz\n").is_err()); // bad value
    }

    #[test]
    fn lenient_load_recovers_before_a_torn_tail() {
        let g = fixture();
        let mut buf = Vec::new();
        save_graph(&g, &mut buf).unwrap();
        let text = String::from_utf8(buf).unwrap();
        // Tear the journal mid-final-line, as a crash during append would.
        // (Cutting just the trailing newline is still a valid journal, so
        // every cut here slices into the final line's content.)
        for cut in [2usize, 5, 12] {
            let torn_text = &text[..text.len() - cut];
            let mut cursor = std::io::Cursor::new(torn_text.as_bytes().to_vec());
            // Strict load rejects it…
            assert!(load_graph(g.schema().clone(), &mut std::io::Cursor::new(torn_text.as_bytes().to_vec())).is_err());
            // …lenient load recovers the intact prefix and reports the tear.
            let (g2, torn) = load_graph_lenient(g.schema().clone(), &mut cursor).unwrap();
            let torn = torn.expect("tear must be reported");
            assert!(torn.dropped_lines >= 1);
            assert!(g2.num_entities() < g.num_entities(), "the torn entity must be dropped");
            // Everything recovered matches the original exactly.
            for raw in 0..g2.num_entities() as u64 {
                let uid = Uid(raw);
                assert_eq!(g.class_of(uid), g2.class_of(uid));
                assert_eq!(g.versions(uid).len(), g2.versions(uid).len());
            }
            // keep_bytes points at an intact prefix: reloading it strictly works.
            let intact = &text.as_bytes()[..torn.keep_bytes as usize];
            load_graph(g.schema().clone(), &mut std::io::Cursor::new(intact.to_vec())).unwrap();
        }
    }

    #[test]
    fn lenient_load_still_rejects_mid_file_corruption() {
        let s = fixture().schema().clone();
        // Garbage followed by a valid record is NOT a torn tail.
        let text = "NEPALJ1\nX garbage here\nN 0 Node:Host 1\nV 100 200 1 i7\n";
        assert!(load_graph_lenient(s.clone(), &mut std::io::Cursor::new(text.as_bytes().to_vec())).is_err());
        // An intact journal reports no tear.
        let g = fixture();
        let mut buf = Vec::new();
        save_graph(&g, &mut buf).unwrap();
        let (_, torn) = load_graph_lenient(g.schema().clone(), &mut std::io::Cursor::new(buf)).unwrap();
        assert!(torn.is_none());
    }

    #[test]
    fn lenient_file_load_truncates_and_appends_cleanly() {
        let g = fixture();
        let dir = std::env::temp_dir().join(format!("nepal-journal-torn-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("torn.nj");
        save_to_file(&g, &path).unwrap();
        let full = std::fs::read(&path).unwrap();
        std::fs::write(&path, &full[..full.len() - 7]).unwrap(); // torn tail
        let (g2, torn) = load_from_file_lenient(g.schema().clone(), &path).unwrap();
        let torn = torn.expect("tear must be reported");
        assert_eq!(std::fs::metadata(&path).unwrap().len(), torn.keep_bytes, "file must be truncated in place");
        // The repaired file now loads strictly and matches the recovery.
        let g3 = load_from_file(g.schema().clone(), &path).unwrap();
        assert_eq!(g2.num_entities(), g3.num_entities());
        assert_eq!(g2.num_versions(), g3.num_versions());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn file_round_trip() {
        let g = fixture();
        let dir = std::env::temp_dir().join(format!("nepal-journal-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("graph.nj");
        save_to_file(&g, &path).unwrap();
        let g2 = load_from_file(g.schema().clone(), &path).unwrap();
        assert_eq!(g.num_versions(), g2.num_versions());
        std::fs::remove_dir_all(&dir).ok();
    }
}
