//! Time-filtered views over the temporal graph.
//!
//! The three query temporalities of §4:
//! - [`TimeFilter::Current`] — the current snapshot (default).
//! - [`TimeFilter::AsOf`] — a timeslice query (`AT '2017-02-15 10:00:00'`).
//! - [`TimeFilter::Range`] — a time-range query (`AT 't1' : 't2'`), whose
//!   results carry maximal assertion intervals.

use std::borrow::Cow;

use nepal_schema::{ClassId, Ts, Value};

use crate::interval::{Interval, IntervalSet};
use crate::store::{materialize_version, AdjEntry, TemporalGraph, Uid, Version};

/// The temporal scope a query (or one range variable) executes under.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimeFilter {
    /// The current snapshot.
    Current,
    /// A past snapshot at one time point.
    AsOf(Ts),
    /// A closed time range `[from, to]` (both ends inclusive, per the
    /// paper's `AT 't1' : 't2'` syntax).
    Range(Ts, Ts),
}

impl TimeFilter {
    /// The filter as an interval for overlap testing. `Current` and `AsOf`
    /// become degenerate one-microsecond probes.
    pub fn probe(&self) -> Interval {
        match self {
            TimeFilter::Current => Interval::since(crate::interval::FOREVER - 1),
            TimeFilter::AsOf(t) => Interval::new(*t, t + 1),
            TimeFilter::Range(a, b) => Interval::new(*a, b.saturating_add(1)),
        }
    }

    /// Is this a range filter (results must carry interval sets)?
    pub fn is_range(&self) -> bool {
        matches!(self, TimeFilter::Range(_, _))
    }
}

/// How an element satisfies an atom under a time filter.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MatchTime {
    /// Point filters: the element matches at the probe point.
    Point,
    /// Range filters: the (maximal, un-clamped) assertion intervals of the
    /// versions that satisfy the predicate and overlap the range.
    Intervals(IntervalSet),
}

/// Deterministic store-access cost of reading one element under a view:
/// how many version reads the filter implies, split into delta-chain
/// materializations vs. keyframe hits, plus the field-slot bytes touched.
///
/// Unlike the physical per-class heatmap (which counts every actual read,
/// including re-derivations by parallel workers), this is a *pure function
/// of store state* — the same element under the same filter always costs
/// the same — which is what makes per-query resource meters identical
/// between sequential and parallel execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessCost {
    pub materializations: u64,
    pub keyframe_hits: u64,
    pub bytes: u64,
}

impl AccessCost {
    pub fn add(&mut self, other: AccessCost) {
        self.materializations += other.materializations;
        self.keyframe_hits += other.keyframe_hits;
        self.bytes += other.bytes;
    }
}

/// A read-only, time-scoped view of a [`TemporalGraph`].
#[derive(Clone, Copy)]
pub struct GraphView<'g> {
    pub graph: &'g TemporalGraph,
    pub filter: TimeFilter,
}

impl<'g> GraphView<'g> {
    pub fn new(graph: &'g TemporalGraph, filter: TimeFilter) -> Self {
        GraphView { graph, filter }
    }

    /// Field values of `uid` under this view (for point filters: the single
    /// relevant version; for range filters: the *latest* version overlapping
    /// the range — selection expressions on range queries are evaluated per
    /// pathway result via [`GraphView::matching`]).
    ///
    /// Borrowed for full-stored versions (the current snapshot always is);
    /// owned when a delta-encoded history version had to be materialized.
    pub fn fields(&self, uid: Uid) -> Option<Cow<'g, [Value]>> {
        match self.filter {
            TimeFilter::Current => self.graph.current_version(uid).map(|v| {
                self.graph.note_version_read(uid, false, v.fields().len());
                Cow::Borrowed(v.fields())
            }),
            TimeFilter::AsOf(t) => {
                let i = self.graph.version_index_at(uid, t)?;
                let vs = self.graph.versions(uid);
                self.graph.note_version_read(uid, vs[i].is_delta(), record_width(vs));
                Some(materialize_version(vs, i))
            }
            TimeFilter::Range(a, b) => {
                let probe = Interval::new(a, b.saturating_add(1));
                let range = self.graph.overlap_range(uid, &probe);
                let i = range.end.checked_sub(1).filter(|i| range.contains(i))?;
                let vs = self.graph.versions(uid);
                self.graph.note_version_read(uid, vs[i].is_delta(), record_width(vs));
                Some(materialize_version(vs, i))
            }
        }
    }

    /// The deterministic access cost of reading `uid` under this view —
    /// see [`AccessCost`]. Zero-cost for elements not asserted within the
    /// filter (only the binary search over spans touches them).
    pub fn access_cost(&self, uid: Uid) -> AccessCost {
        let vs = self.graph.versions(uid);
        let Some(head) = vs.last() else { return AccessCost::default() };
        let bytes_per = head.fields().len() as u64 * crate::store::VALUE_SLOT_BYTES;
        let mut cost = AccessCost::default();
        let mut note = |is_delta: bool| {
            if is_delta {
                cost.materializations += 1;
            } else {
                cost.keyframe_hits += 1;
            }
            cost.bytes += bytes_per;
        };
        match self.filter {
            TimeFilter::Current => {
                if head.span.is_current() {
                    note(false); // the chain head is always stored full
                }
            }
            TimeFilter::AsOf(t) => {
                if let Some(i) = self.graph.version_index_at(uid, t) {
                    note(vs[i].is_delta());
                }
            }
            TimeFilter::Range(a, b) => {
                let probe = Interval::new(a, b.saturating_add(1));
                for i in self.graph.overlap_range(uid, &probe) {
                    note(vs[i].is_delta());
                }
            }
        }
        cost
    }

    /// Test `uid` against a field predicate under this view.
    ///
    /// Returns `None` if the element does not satisfy the predicate within
    /// the filter; otherwise how/when it matches.
    pub fn matching<F>(&self, uid: Uid, pred: F) -> Option<MatchTime>
    where
        F: Fn(&[Value]) -> bool,
    {
        match self.filter {
            TimeFilter::Current => {
                // Hot path: the chain head is always stored full.
                let v = self.graph.current_version(uid)?;
                self.graph.note_version_read(uid, false, v.fields().len());
                pred(v.fields()).then_some(MatchTime::Point)
            }
            TimeFilter::AsOf(t) => {
                let i = self.graph.version_index_at(uid, t)?;
                let vs = self.graph.versions(uid);
                self.graph.note_version_read(uid, vs[i].is_delta(), record_width(vs));
                pred(&materialize_version(vs, i)).then_some(MatchTime::Point)
            }
            TimeFilter::Range(a, b) => {
                let probe = Interval::new(a, b.saturating_add(1));
                let vs = self.graph.versions(uid);
                let width = record_width(vs);
                let mut set = IntervalSet::empty();
                for i in self.graph.overlap_range(uid, &probe) {
                    self.graph.note_version_read(uid, vs[i].is_delta(), width);
                    if pred(&materialize_version(vs, i)) {
                        set.push(vs[i].span);
                    }
                }
                if set.is_empty() {
                    None
                } else {
                    // Maximal assertion ranges: extend each satisfying run
                    // beyond the probe window. Versions outside the window
                    // with the same satisfying predicate extend the run.
                    Some(MatchTime::Intervals(self.extend_maximal(uid, set, &pred)))
                }
            }
        }
    }

    /// Extend satisfying runs to their maximal extent outside the probe
    /// window (the paper reports e.g. a 06:30 start for a 09:00 window).
    fn extend_maximal<F>(&self, uid: Uid, set: IntervalSet, pred: &F) -> IntervalSet
    where
        F: Fn(&[Value]) -> bool,
    {
        let mut all = IntervalSet::empty();
        let vs = self.graph.versions(uid);
        for i in 0..vs.len() {
            if pred(&materialize_version(vs, i)) {
                all.push(vs[i].span);
            }
        }
        // Keep the maximal components that contain any satisfying-in-window
        // interval.
        let comps: Vec<Interval> =
            all.intervals().iter().filter(|c| set.intervals().iter().any(|s| c.overlaps(s))).copied().collect();
        IntervalSet::from_intervals(comps)
    }

    /// Is the element asserted (any version) under this view, ignoring
    /// predicates?
    pub fn alive(&self, uid: Uid) -> bool {
        match self.filter {
            TimeFilter::Current => self.graph.current_version(uid).is_some(),
            TimeFilter::AsOf(t) => self.graph.version_at(uid, t).is_some(),
            TimeFilter::Range(a, b) => {
                !self.graph.versions_overlapping(uid, &Interval::new(a, b.saturating_add(1))).is_empty()
            }
        }
    }

    /// Outgoing adjacency of a node, filtered to edges alive under the view.
    pub fn out_edges(&self, uid: Uid) -> impl Iterator<Item = AdjEntry> + '_ {
        let me = *self;
        self.graph.out_adj(uid).iter().copied().filter(move |a| me.alive(a.edge))
    }

    /// Incoming adjacency of a node, filtered to edges alive under the view.
    pub fn in_edges(&self, uid: Uid) -> impl Iterator<Item = AdjEntry> + '_ {
        let me = *self;
        self.graph.in_adj(uid).iter().copied().filter(move |a| me.alive(a.edge))
    }

    /// All uids of `class` (and subclasses) alive under this view.
    pub fn scan_class(&self, class: ClassId) -> Vec<Uid> {
        let mut out = Vec::new();
        for c in self.graph.schema().descendants(class) {
            for &u in self.graph.extent_exact(c) {
                if self.alive(u) {
                    out.push(u);
                }
            }
        }
        out
    }
}

/// Field count of an entity's record: the chain head is always stored
/// full, so its field vector gives the width without materializing.
fn record_width(vs: &[Version]) -> usize {
    vs.last().map_or(0, |h| h.fields().len())
}

#[cfg(test)]
mod tests {
    use super::*;
    use nepal_schema::dsl::parse_schema;
    use std::sync::Arc;

    fn setup() -> (TemporalGraph, Uid) {
        let s = Arc::new(parse_schema("node VM { vm_id: int unique, status: str }").unwrap());
        let mut g = TemporalGraph::new(s.clone());
        let c = s.class_by_name("VM").unwrap();
        let u = g.insert_node(c, vec![Value::Int(1), Value::Str("Green".into())], 100).unwrap();
        g.update(u, &[(1, Value::Str("Red".into()))], 200).unwrap();
        g.update(u, &[(1, Value::Str("Green".into()))], 300).unwrap();
        (g, u)
    }

    #[test]
    fn point_filters_pick_the_right_version() {
        let (g, u) = setup();
        let green = |f: &[Value]| f[1] == Value::Str("Green".into());
        assert!(GraphView::new(&g, TimeFilter::AsOf(150)).matching(u, green).is_some());
        assert!(GraphView::new(&g, TimeFilter::AsOf(250)).matching(u, green).is_none());
        assert!(GraphView::new(&g, TimeFilter::Current).matching(u, green).is_some());
        assert!(GraphView::new(&g, TimeFilter::AsOf(50)).matching(u, green).is_none());
        // before birth
    }

    #[test]
    fn range_filter_returns_maximal_intervals() {
        let (g, u) = setup();
        let green = |f: &[Value]| f[1] == Value::Str("Green".into());
        let v = GraphView::new(&g, TimeFilter::Range(150, 180));
        match v.matching(u, green).unwrap() {
            MatchTime::Intervals(set) => {
                // The maximal Green run is [100, 200), not clamped to window.
                assert_eq!(set.intervals(), &[Interval::new(100, 200)]);
            }
            other => panic!("unexpected {other:?}"),
        }
        // A window spanning both green runs reports both maximal components.
        let v = GraphView::new(&g, TimeFilter::Range(150, 350));
        match v.matching(u, green).unwrap() {
            MatchTime::Intervals(set) => assert_eq!(set.intervals().len(), 2),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn range_filter_outside_assertion_is_none() {
        let (g, u) = setup();
        let v = GraphView::new(&g, TimeFilter::Range(0, 50));
        assert!(v.matching(u, |_| true).is_none());
    }

    #[test]
    fn access_cost_is_deterministic_per_filter() {
        let (g, u) = setup();
        let cur = GraphView::new(&g, TimeFilter::Current).access_cost(u);
        // The chain head is always a full keyframe.
        assert_eq!(cur.keyframe_hits, 1);
        assert_eq!(cur.materializations, 0);
        assert!(cur.bytes > 0);
        // Pure function of store state: same call, same answer.
        assert_eq!(cur, GraphView::new(&g, TimeFilter::Current).access_cost(u));
        // One version read for a timeslice, however it is encoded.
        let asof = GraphView::new(&g, TimeFilter::AsOf(150)).access_cost(u);
        assert_eq!(asof.keyframe_hits + asof.materializations, 1);
        // A range covering the whole history reads all three versions.
        let range = GraphView::new(&g, TimeFilter::Range(0, 400)).access_cost(u);
        assert_eq!(range.keyframe_hits + range.materializations, 3);
        assert_eq!(range.bytes, 3 * cur.bytes);
        // Before birth: nothing is read.
        assert_eq!(GraphView::new(&g, TimeFilter::AsOf(50)).access_cost(u), AccessCost::default());
    }

    #[test]
    fn read_path_maintains_class_heatmap() {
        let (g, u) = setup();
        let class = g.class_of(u).unwrap();
        let before = g.class_heat(class);
        let v = GraphView::new(&g, TimeFilter::Current);
        let _ = v.matching(u, |_| true);
        let after = g.class_heat(class);
        assert_eq!(after.keyframe_hits, before.keyframe_hits + 1);
        assert!(after.bytes_read > before.bytes_read);
        let _ = v.scan_class(class);
        let scanned = g.class_heat(class);
        assert!(scanned.scans > after.scans);
        assert!(scanned.scan_rows > after.scan_rows);
        assert!(scanned.is_hot());
    }
}
