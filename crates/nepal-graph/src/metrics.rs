//! Store-level gauges: the temporal store's size, churn, and estimated
//! memory footprint, exported through a [`MetricsRegistry`] so the
//! telemetry endpoint can serve them alongside the engine's query metrics.

use std::collections::HashMap;
use std::sync::{Arc, Mutex};

use nepal_obs::{Gauge, MetricsRegistry, ResourceClass, ResourceSummary};
use nepal_schema::ClassId;

use crate::journal::journal_lines;
use crate::snapshot::SnapshotLoader;
use nepal_schema::ClassKind;

use crate::store::{MemoryReport, TemporalGraph};

/// Gauges describing one [`TemporalGraph`]. Register once, then call
/// [`StoreGauges::refresh`] whenever current values are wanted (e.g. from a
/// telemetry refresher hook before rendering `/metrics`).
///
/// [`refresh`](StoreGauges::refresh) is the cheap path — O(classes) reads
/// of the incremental accounting, safe to run per scrape or even per
/// query. [`refresh_deep`](StoreGauges::refresh_deep) additionally walks
/// the store for the version-chain length distribution and the journal /
/// unique-index sizes; run it on scrape, not per query.
pub struct StoreGauges {
    metrics: Arc<MetricsRegistry>,
    nodes: Arc<Gauge>,
    edges: Arc<Gauge>,
    node_versions: Arc<Gauge>,
    edge_versions: Arc<Gauge>,
    alive_nodes: Arc<Gauge>,
    alive_edges: Arc<Gauge>,
    journal_lines: Arc<Gauge>,
    total_bytes: Arc<Gauge>,
    entity_bytes: Arc<Gauge>,
    adjacency_bytes: Arc<Gauge>,
    unique_index_bytes: Arc<Gauge>,
    journal_bytes: Arc<Gauge>,
    snapshot_hits: Arc<Gauge>,
    snapshot_misses: Arc<Gauge>,
    binsnap_full: Arc<Gauge>,
    binsnap_delta: Arc<Gauge>,
    /// Labeled-series handles resolved once per class: registry lookups
    /// allocate and take the registry lock, so the per-query-safe
    /// [`refresh`](Self::refresh) path must not repeat them.
    per_class: Mutex<HashMap<ClassId, ClassSeries>>,
}

struct ClassSeries {
    bytes: Arc<Gauge>,
    alive_ratio: Arc<Gauge>,
    heat_scans: Arc<Gauge>,
    heat_scan_rows: Arc<Gauge>,
    heat_seeks: Arc<Gauge>,
    heat_materializations: Arc<Gauge>,
    heat_keyframe_hits: Arc<Gauge>,
    heat_bytes_read: Arc<Gauge>,
}

const BYTES_HELP: &str = "Estimated heap bytes per class (version chains + property payloads)";
const ALIVE_HELP: &str = "Currently-asserted entities per thousand ever created, per class";
const CHAIN_HELP: &str = "Entities whose version chain is at most `le` versions long";
const HEAT_SCANS_HELP: &str = "Extent scans over this class since process start";
const HEAT_SCAN_ROWS_HELP: &str = "Entity uids yielded by extent scans of this class";
const HEAT_SEEKS_HELP: &str = "Unique-index point lookups against this class";
const HEAT_MAT_HELP: &str = "Historical versions materialized by replaying delta chains, per class";
const HEAT_KF_HELP: &str = "Version reads satisfied directly by a keyframe (no delta replay), per class";
const HEAT_BYTES_HELP: &str = "Estimated property-value bytes read from this class";

impl StoreGauges {
    /// Create the gauge family inside `metrics`. Keeps a handle on the
    /// registry: per-class series are created lazily as classes first
    /// appear in the store.
    pub fn register(metrics: &Arc<MetricsRegistry>) -> StoreGauges {
        StoreGauges {
            metrics: metrics.clone(),
            nodes: metrics.gauge("nepal_store_nodes", "Node uids ever created"),
            edges: metrics.gauge("nepal_store_edges", "Edge uids ever created"),
            node_versions: metrics.gauge("nepal_store_node_versions", "Stored node versions, current + history"),
            edge_versions: metrics.gauge("nepal_store_edge_versions", "Stored edge versions, current + history"),
            alive_nodes: metrics.gauge("nepal_store_alive_nodes", "Nodes currently asserted"),
            alive_edges: metrics.gauge("nepal_store_alive_edges", "Edges currently asserted"),
            journal_lines: metrics.gauge("nepal_store_journal_lines", "Lines a full journal save would emit"),
            total_bytes: metrics
                .gauge("nepal_store_total_bytes", "Estimated store heap bytes (entities + adjacency + indexes)"),
            entity_bytes: metrics
                .gauge("nepal_store_entity_bytes", "Estimated heap bytes across all version chains and payloads"),
            adjacency_bytes: metrics.gauge("nepal_store_adjacency_bytes", "Estimated adjacency-structure heap bytes"),
            unique_index_bytes: metrics.gauge("nepal_store_unique_index_bytes", "Estimated unique-index heap bytes"),
            journal_bytes: metrics.gauge("nepal_store_journal_bytes", "Bytes a full journal save would write"),
            snapshot_hits: metrics.gauge("nepal_snapshot_cache_hits", "Snapshot upserts resolved to live entities"),
            snapshot_misses: metrics.gauge("nepal_snapshot_cache_misses", "Snapshot upserts that inserted fresh"),
            binsnap_full: metrics
                .gauge("nepal_binsnap_decoded_full", "Full (keyframe) versions decoded from binary snapshots"),
            binsnap_delta: metrics.gauge("nepal_binsnap_decoded_delta", "Delta versions decoded from binary snapshots"),
            per_class: Mutex::new(HashMap::new()),
        }
    }

    /// Update the cheap store gauges from the incremental accounting:
    /// totals, per-class `nepal_store_bytes{class=...}`, and per-class
    /// alive ratios. O(classes) — no walk over entities.
    pub fn refresh(&self, g: &TemporalGraph) {
        let c = g.counts();
        self.nodes.set(c.nodes as i64);
        self.edges.set(c.edges as i64);
        self.node_versions.set(c.node_versions as i64);
        self.edge_versions.set(c.edge_versions as i64);
        self.alive_nodes.set(c.alive_nodes as i64);
        self.alive_edges.set(c.alive_edges as i64);
        self.journal_lines.set(journal_lines(g) as i64);

        let mut entity_bytes = 0u64;
        let mut series = self.per_class.lock().unwrap_or_else(|e| e.into_inner());
        for row in g.class_memory() {
            entity_bytes += row.bytes;
            let s = series.entry(row.class).or_insert_with(|| {
                let labels = [("class", row.name.as_str())];
                ClassSeries {
                    bytes: self.metrics.gauge_labeled("nepal_store_bytes", &labels, BYTES_HELP),
                    alive_ratio: self.metrics.gauge_labeled("nepal_store_alive_ratio_x1000", &labels, ALIVE_HELP),
                    heat_scans: self.metrics.gauge_labeled("nepal_heat_scans", &labels, HEAT_SCANS_HELP),
                    heat_scan_rows: self.metrics.gauge_labeled("nepal_heat_scan_rows", &labels, HEAT_SCAN_ROWS_HELP),
                    heat_seeks: self.metrics.gauge_labeled("nepal_heat_seeks", &labels, HEAT_SEEKS_HELP),
                    heat_materializations: self.metrics.gauge_labeled(
                        "nepal_heat_materializations",
                        &labels,
                        HEAT_MAT_HELP,
                    ),
                    heat_keyframe_hits: self.metrics.gauge_labeled("nepal_heat_keyframe_hits", &labels, HEAT_KF_HELP),
                    heat_bytes_read: self.metrics.gauge_labeled("nepal_heat_bytes_read", &labels, HEAT_BYTES_HELP),
                }
            });
            s.bytes.set(row.bytes as i64);
            let ratio = (row.alive * 1000).checked_div(row.entities).unwrap_or(0);
            s.alive_ratio.set(ratio as i64);
            let heat = g.class_heat(row.class);
            s.heat_scans.set(heat.scans as i64);
            s.heat_scan_rows.set(heat.scan_rows as i64);
            s.heat_seeks.set(heat.seeks as i64);
            s.heat_materializations.set(heat.materializations as i64);
            s.heat_keyframe_hits.set(heat.keyframe_hits as i64);
            s.heat_bytes_read.set(heat.bytes_read as i64);
        }
        drop(series);
        self.entity_bytes.set(entity_bytes as i64);
        self.adjacency_bytes.set(g.adjacency_bytes() as i64);
        let (full, delta) = crate::binsnap::decode_stats();
        self.binsnap_full.set(full as i64);
        self.binsnap_delta.set(delta as i64);
        // Keep `nepal_store_total_bytes` live on the cheap path too
        // (satellite of the deep-scrape split): entity + adjacency move per
        // mutation; unique-index and journal bytes reuse the last deep walk.
        let total = entity_bytes
            + g.adjacency_bytes()
            + self.unique_index_bytes.get().max(0) as u64
            + self.journal_bytes.get().max(0) as u64;
        self.total_bytes.set(total as i64);
    }

    /// [`refresh`](Self::refresh), plus the store-walking figures: total /
    /// unique-index / journal bytes and the version-chain length
    /// distribution (`nepal_store_chain_entities{le=...}`).
    pub fn refresh_deep(&self, g: &TemporalGraph) -> MemoryReport {
        self.refresh(g);
        let report = g.memory_report();
        self.total_bytes.set(report.total_bytes as i64);
        self.unique_index_bytes.set(report.unique_index_bytes as i64);
        self.journal_bytes.set(report.journal_bytes as i64);
        for (bound, count) in &report.chain_histogram {
            let le = if *bound == u64::MAX { "+Inf".to_string() } else { bound.to_string() };
            self.metrics
                .gauge_labeled("nepal_store_chain_entities", &[("le", le.as_str())], CHAIN_HELP)
                .set(*count as i64);
        }
        report
    }

    /// Update the snapshot-cache gauges from a loader's counters.
    pub fn observe_snapshot(&self, loader: &SnapshotLoader) {
        self.snapshot_hits.set(loader.cache_hits() as i64);
        self.snapshot_misses.set(loader.cache_misses() as i64);
    }
}

/// Convert a store [`MemoryReport`] into the store-agnostic
/// [`ResourceSummary`] the telemetry endpoint serves on `/healthz` and
/// `/dashboard` (via [`Telemetry::set_resources`]).
///
/// [`Telemetry::set_resources`]: nepal_obs::Telemetry::set_resources
pub fn resource_summary(report: &MemoryReport) -> ResourceSummary {
    ResourceSummary {
        classes: report
            .classes
            .iter()
            .map(|c| ResourceClass {
                name: c.name.clone(),
                kind: match c.kind {
                    ClassKind::Node => "node",
                    ClassKind::Edge => "edge",
                },
                entities: c.entities,
                alive: c.alive,
                versions: c.versions,
                bytes: c.bytes,
            })
            .collect(),
        entity_bytes: report.entity_bytes,
        adjacency_bytes: report.adjacency_bytes,
        unique_index_bytes: report.unique_index_bytes,
        journal_bytes: report.journal_bytes,
        total_bytes: report.total_bytes,
        chain_histogram: report.chain_histogram.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nepal_schema::dsl::parse_schema;
    use nepal_schema::Value;

    #[test]
    fn gauges_track_store_and_snapshot_state() {
        let schema = Arc::new(parse_schema("node VM { status: str }").unwrap());
        let vm = schema.class_by_name("VM").unwrap();
        let mut g = TemporalGraph::new(schema);
        let a = g.insert_node(vm, vec![Value::Str("Green".into())], 100).unwrap();
        g.update(a, &[(0, Value::Str("Red".into()))], 200).unwrap();
        let b = g.insert_node(vm, vec![Value::Str("Green".into())], 100).unwrap();
        g.delete(b, 300).unwrap();

        let metrics = Arc::new(MetricsRegistry::new());
        let gauges = StoreGauges::register(&metrics);
        gauges.refresh(&g);
        let text = metrics.render_prometheus();
        assert!(text.contains("nepal_store_nodes 2"), "{text}");
        assert!(text.contains("nepal_store_node_versions 3"), "{text}");
        assert!(text.contains("nepal_store_alive_nodes 1"), "{text}");
        // 1 header + 2 entities + 3 versions.
        assert!(text.contains("nepal_store_journal_lines 6"), "{text}");
        // Per-class byte + alive-ratio series (1 of 2 VMs alive = 500).
        assert!(text.contains("nepal_store_bytes{class=\"VM\"}"), "{text}");
        assert!(text.contains("nepal_store_alive_ratio_x1000{class=\"VM\"} 500"), "{text}");

        // Access-heatmap series follow the read path: one extent scan over
        // two uids, then a refresh re-exports the counters.
        assert_eq!(g.extent_exact(vm).len(), 2);
        gauges.refresh(&g);
        let text = metrics.render_prometheus();
        assert!(text.contains("nepal_heat_scans{class=\"VM\"} 1"), "{text}");
        assert!(text.contains("nepal_heat_scan_rows{class=\"VM\"} 2"), "{text}");
        assert!(text.contains("nepal_heat_seeks{class=\"VM\"} 0"), "{text}");
        assert!(text.contains("nepal_binsnap_decoded_full"), "{text}");

        let mut loader = SnapshotLoader::new();
        let node =
            crate::snapshot::SnapshotNode { ext_id: "x".into(), class: vm, fields: vec![Value::Str("Green".into())] };
        loader.apply(&mut g, 400, std::slice::from_ref(&node), &[]).unwrap();
        loader.apply(&mut g, 500, &[node], &[]).unwrap();
        gauges.observe_snapshot(&loader);
        let text = metrics.render_prometheus();
        assert!(text.contains("nepal_snapshot_cache_hits 1"), "{text}");
        assert!(text.contains("nepal_snapshot_cache_misses 1"), "{text}");
    }

    #[test]
    fn deep_refresh_exports_footprint_and_chain_distribution() {
        let schema = Arc::new(parse_schema("node VM { status: str }").unwrap());
        let vm = schema.class_by_name("VM").unwrap();
        let mut g = TemporalGraph::new(schema);
        let a = g.insert_node(vm, vec![Value::Str("Green".into())], 0).unwrap();
        for ts in 1..=5 {
            g.update(a, &[(0, Value::Str(format!("v{ts}")))], ts).unwrap();
        }
        g.insert_node(vm, vec![Value::Str("Green".into())], 0).unwrap();

        let metrics = Arc::new(MetricsRegistry::new());
        let gauges = StoreGauges::register(&metrics);
        let report = gauges.refresh_deep(&g);
        assert_eq!(report.total_bytes, g.memory_recount().total_bytes);

        let text = metrics.render_prometheus();
        assert!(text.contains("nepal_store_total_bytes"), "{text}");
        assert!(text.contains("nepal_store_journal_bytes"), "{text}");
        // One entity with a 6-long chain (≤8 bucket), one with 1 (≤1).
        assert!(text.contains("nepal_store_chain_entities{le=\"1\"} 1"), "{text}");
        assert!(text.contains("nepal_store_chain_entities{le=\"8\"} 1"), "{text}");

        let summary = resource_summary(&report);
        assert_eq!(summary.total_bytes, report.total_bytes);
        assert_eq!(summary.classes.len(), 1);
        assert_eq!(summary.classes[0].kind, "node");
        assert_eq!(summary.chain_histogram, report.chain_histogram);
    }
}
