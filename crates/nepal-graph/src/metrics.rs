//! Store-level gauges: the temporal store's size and churn, exported
//! through a [`MetricsRegistry`] so the telemetry endpoint can serve them
//! alongside the engine's query metrics.

use std::sync::Arc;

use nepal_obs::{Gauge, MetricsRegistry};

use crate::journal::journal_lines;
use crate::snapshot::SnapshotLoader;
use crate::store::TemporalGraph;

/// Gauges describing one [`TemporalGraph`]. Register once, then call
/// [`StoreGauges::refresh`] whenever current values are wanted (e.g. from a
/// telemetry refresher hook before rendering `/metrics`).
pub struct StoreGauges {
    nodes: Arc<Gauge>,
    edges: Arc<Gauge>,
    node_versions: Arc<Gauge>,
    edge_versions: Arc<Gauge>,
    alive_nodes: Arc<Gauge>,
    alive_edges: Arc<Gauge>,
    journal_lines: Arc<Gauge>,
    snapshot_hits: Arc<Gauge>,
    snapshot_misses: Arc<Gauge>,
}

impl StoreGauges {
    /// Create the gauge family inside `metrics`.
    pub fn register(metrics: &MetricsRegistry) -> StoreGauges {
        StoreGauges {
            nodes: metrics.gauge("nepal_store_nodes", "Node uids ever created"),
            edges: metrics.gauge("nepal_store_edges", "Edge uids ever created"),
            node_versions: metrics.gauge("nepal_store_node_versions", "Stored node versions, current + history"),
            edge_versions: metrics.gauge("nepal_store_edge_versions", "Stored edge versions, current + history"),
            alive_nodes: metrics.gauge("nepal_store_alive_nodes", "Nodes currently asserted"),
            alive_edges: metrics.gauge("nepal_store_alive_edges", "Edges currently asserted"),
            journal_lines: metrics.gauge("nepal_store_journal_lines", "Lines a full journal save would emit"),
            snapshot_hits: metrics.gauge("nepal_snapshot_cache_hits", "Snapshot upserts resolved to live entities"),
            snapshot_misses: metrics.gauge("nepal_snapshot_cache_misses", "Snapshot upserts that inserted fresh"),
        }
    }

    /// Update the store gauges from the graph's current state.
    pub fn refresh(&self, g: &TemporalGraph) {
        let c = g.counts();
        self.nodes.set(c.nodes as i64);
        self.edges.set(c.edges as i64);
        self.node_versions.set(c.node_versions as i64);
        self.edge_versions.set(c.edge_versions as i64);
        self.alive_nodes.set(c.alive_nodes as i64);
        self.alive_edges.set(c.alive_edges as i64);
        self.journal_lines.set(journal_lines(g) as i64);
    }

    /// Update the snapshot-cache gauges from a loader's counters.
    pub fn observe_snapshot(&self, loader: &SnapshotLoader) {
        self.snapshot_hits.set(loader.cache_hits() as i64);
        self.snapshot_misses.set(loader.cache_misses() as i64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nepal_schema::dsl::parse_schema;
    use nepal_schema::Value;

    #[test]
    fn gauges_track_store_and_snapshot_state() {
        let schema = Arc::new(parse_schema("node VM { status: str }").unwrap());
        let vm = schema.class_by_name("VM").unwrap();
        let mut g = TemporalGraph::new(schema);
        let a = g.insert_node(vm, vec![Value::Str("Green".into())], 100).unwrap();
        g.update(a, &[(0, Value::Str("Red".into()))], 200).unwrap();
        let b = g.insert_node(vm, vec![Value::Str("Green".into())], 100).unwrap();
        g.delete(b, 300).unwrap();

        let metrics = MetricsRegistry::new();
        let gauges = StoreGauges::register(&metrics);
        gauges.refresh(&g);
        let text = metrics.render_prometheus();
        assert!(text.contains("nepal_store_nodes 2"), "{text}");
        assert!(text.contains("nepal_store_node_versions 3"), "{text}");
        assert!(text.contains("nepal_store_alive_nodes 1"), "{text}");
        // 1 header + 2 entities + 3 versions.
        assert!(text.contains("nepal_store_journal_lines 6"), "{text}");

        let mut loader = SnapshotLoader::new();
        let node =
            crate::snapshot::SnapshotNode { ext_id: "x".into(), class: vm, fields: vec![Value::Str("Green".into())] };
        loader.apply(&mut g, 400, std::slice::from_ref(&node), &[]).unwrap();
        loader.apply(&mut g, 500, &[node], &[]).unwrap();
        gauges.observe_snapshot(&loader);
        let text = metrics.render_prometheus();
        assert!(text.contains("nepal_snapshot_cache_hits 1"), "{text}");
        assert!(text.contains("nepal_snapshot_cache_misses 1"), "{text}");
    }
}
