//! # Nepal — a path-first temporal graph database for virtualized network
//! # inventory
//!
//! A from-scratch Rust reproduction of *"A Graph Database for a
//! Virtualized Network Infrastructure"* (SIGMOD 2018): the **Nepal**
//! (NEtwork PAth query Language) system built at AT&T Labs for the
//! ECOMP/ONAP network-automation platform.
//!
//! This facade crate re-exports the full stack:
//!
//! | crate | contents |
//! |---|---|
//! | [`schema`] | strongly-typed node/edge class hierarchies, TOSCA-style DSL |
//! | [`graph`] | native transaction-time temporal graph store |
//! | [`rpe`] | Regular Pathway Expressions: parser, anchors, NFA, evaluator |
//! | [`relational`] | the Postgres-style backend substrate (SQL-emitting) |
//! | [`gremlin`] | property graph + traversal machine + wire protocol |
//! | [`core`] | the query language, engine, backends, federation |
//! | [`obs`] | metrics registry, query profiles, slow-query log |
//! | [`workload`] | evaluation topology & churn generators |
//!
//! ## Quickstart
//!
//! ```
//! use std::sync::Arc;
//! use nepal::core::engine_over;
//! use nepal::graph::TemporalGraph;
//! use nepal::schema::dsl::parse_schema;
//! use nepal::schema::Value;
//!
//! let schema = Arc::new(parse_schema(r#"
//!     node VM { vm_id: int unique }
//!     node Host { host_id: int unique }
//!     edge HostedOn { }
//!     allow HostedOn (VM -> Host)
//! "#).unwrap());
//! let mut g = TemporalGraph::new(schema.clone());
//! let vm = g.insert_node(schema.class_by_name("VM").unwrap(), vec![Value::Int(55)], 0).unwrap();
//! let host = g.insert_node(schema.class_by_name("Host").unwrap(), vec![Value::Int(7)], 0).unwrap();
//! g.insert_edge(schema.class_by_name("HostedOn").unwrap(), vm, host, vec![], 0).unwrap();
//!
//! let mut engine = engine_over(Arc::new(g));
//! let result = engine
//!     .query("Retrieve P From PATHS P Where P MATCHES VM(vm_id=55)->HostedOn()->Host()")
//!     .unwrap();
//! assert_eq!(result.rows.len(), 1);
//! ```

pub use nepal_core as core;
pub use nepal_graph as graph;
pub use nepal_gremlin as gremlin;
pub use nepal_obs as obs;
pub use nepal_relational as relational;
pub use nepal_rpe as rpe;
pub use nepal_schema as schema;
pub use nepal_workload as workload;
