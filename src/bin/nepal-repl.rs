//! Interactive Nepal shell.
//!
//! ```text
//! cargo run --release --bin nepal-repl            # virtualized demo inventory
//! cargo run --release --bin nepal-repl -- legacy  # legacy topology
//! ```
//!
//! Commands:
//! ```text
//! :help                  this help
//! :schema                list node/edge classes
//! :plan <rpe>            show the Select/Extend/Union plan for an RPE
//! :sql <query>           run on the relational backend and show its SQL
//! :profile <query>       run with profiling and print the operator trace
//! :metrics               engine metrics in Prometheus text format
//! :slow                  recent slow queries (ring buffer)
//! :qlog                  query-log status and worst-estimated fingerprints
//! :qlog on [file]        enable the durable query log (default nepal-qlog.jsonl)
//! :qlog off              disable the durable query log
//! :qlog top N            N worst q-error fingerprints, chosen vs hindsight anchor
//! :top [N] [cpu|rows|bytes|calls|wall]   costliest statement fingerprints
//! :trace                 tracing status and buffered traces
//! :trace on|off          enable/disable hierarchical span tracing
//! :trace export <file>   write the latest trace as Chrome trace-event JSON
//! :health                deep health: SLO alert states over the standard rules
//! :mem                   store memory report: per-class bytes, chains, indexes
//! :flight                recent flight-recorder wide events (per-thread rings)
//! :snapshot              write a diagnostics bundle to nepal-snapshots/
//! :stats                 graph statistics
//! :threads [N]           show or set evaluator worker threads (0 = auto)
//! :timeout [ms|off]      show or set the per-query deadline
//! :cancel                trip the session cancel token (Ctrl-C does this
//!                        mid-query); the running/next query aborts with a
//!                        typed error and the token re-arms automatically
//! :quit                  exit
//! EXPLAIN ANALYZE <q>    execute <q> and print its profile
//! <anything else>        executed as a Nepal query
//! ```

use std::io::{BufRead, Write};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Duration;

use nepal::core::{
    parse_statement, BackendRegistry, Engine, NativeBackend, RelationalBackend, StandardSlos, Statement,
};
use nepal::graph::{StoreGauges, TemporalGraph};
use nepal::obs::{alerts_text, fmt_bytes, fmt_ns, SnapshotConfig, Telemetry};
use nepal::rpe::{parse_rpe, plan_rpe, CancelToken, GraphEstimator};
use nepal::workload::{generate_legacy, generate_virtualized, LegacyParams, VirtParams};

/// Ctrl-C lands here; a watcher thread trips the session cancel token so
/// the query running on the main thread aborts at its next checkpoint
/// instead of the whole REPL dying.
static INTERRUPTED: AtomicBool = AtomicBool::new(false);

extern "C" fn on_sigint(_sig: i32) {
    INTERRUPTED.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
fn install_sigint_handler() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    unsafe {
        signal(2 /* SIGINT */, on_sigint);
    }
}

#[cfg(not(unix))]
fn install_sigint_handler() {}

/// Replace a tripped session token with a fresh one (tokens are sticky by
/// design, so cancellation would otherwise outlive the query it aimed at).
fn rearm_cancel(engine: &mut Engine, holder: &Arc<Mutex<CancelToken>>) {
    let fresh = CancelToken::new();
    *holder.lock().unwrap() = fresh.clone();
    engine.eval_options.cancel = Some(fresh);
    INTERRUPTED.store(false, Ordering::SeqCst);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let graph: Arc<TemporalGraph> = if args.iter().any(|a| a == "legacy") {
        eprintln!("loading legacy topology (20k nodes)…");
        Arc::new(generate_legacy(LegacyParams { nodes: 20_000, edges: 90_000, ..Default::default() }).graph)
    } else {
        eprintln!("loading virtualized service inventory (~2k nodes / ~11k edges)…");
        Arc::new(generate_virtualized(VirtParams::default()).graph)
    };
    let mut registry = BackendRegistry::new("native", Box::new(NativeBackend::new(graph.clone())));
    match RelationalBackend::from_graph(&graph) {
        Ok(pg) => registry.add("pg", Box::new(pg)),
        Err(e) => eprintln!("warning: relational backend unavailable ({e}); :sql disabled"),
    }
    let mut engine = Engine::new(registry);
    // Standard SLO rules + store gauges back :health / :mem; the gauge
    // refresh keeps the memory-watermark rule reading current bytes.
    let slo = engine.install_standard_slos(&StandardSlos::default());
    let gauges = StoreGauges::register(&engine.metrics);
    // Per-fingerprint cost attribution backing :top (and bundle snapshots).
    let stmt = engine.enable_stmt(256);

    // Flight recorder on for the session (queries, cancellations, journal
    // mutations land in the per-thread rings); :snapshot composes the same
    // diagnostics bundle the server writes on a panic or firing alert.
    nepal::obs::flight::recorder().set_enabled(true);
    let telemetry = Arc::new(Telemetry::new(engine.metrics.clone(), engine.slow_log.clone(), engine.tracer.clone()));
    telemetry.set_slo(slo.clone());
    telemetry.set_stmt(stmt.clone());
    telemetry.set_flight(nepal::obs::flight::recorder().clone());
    telemetry.set_snapshots(SnapshotConfig::default());
    telemetry.set_build_info(vec![
        ("bin".to_string(), "nepal-repl".to_string()),
        ("version".to_string(), env!("CARGO_PKG_VERSION").to_string()),
    ]);

    // Session cancellation: every query runs as a child of this token
    // (plus the :timeout deadline, if set). Ctrl-C sets a flag; the
    // watcher thread trips the current token within ~20 ms.
    let session_cancel = Arc::new(Mutex::new(CancelToken::new()));
    engine.eval_options.cancel = Some(session_cancel.lock().unwrap().clone());
    install_sigint_handler();
    {
        let holder = session_cancel.clone();
        std::thread::spawn(move || loop {
            if INTERRUPTED.load(Ordering::SeqCst) {
                holder.lock().unwrap().cancel();
            }
            std::thread::sleep(Duration::from_millis(20));
        });
    }
    eprintln!("ready. :help for commands.\n");

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("nepal> ");
        out.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":quit" || line == ":q" {
            break;
        }
        if line == ":help" {
            println!(
                ":schema | :stats | :plan <rpe> | :sql <query> | :profile <query> | :metrics | :slow | :quit\n\
                 :threads [N]              show or set evaluator worker threads (0 = auto from NEPAL_THREADS/cores)\n\
                 :timeout [ms|off]         show or set the per-query deadline (typed error on expiry)\n\
                 :cancel                   trip the session cancel token (Ctrl-C does this mid-query)\n\
                 :trace | :trace on|off | :trace export <file>   span tracing / Chrome trace-event export\n\
                 :qlog | :qlog on [file] | :qlog off | :qlog top N   durable query log + planner q-error feedback\n\
                 :top [N] [cpu|rows|bytes|calls|wall]   costliest statement fingerprints (cpu, rows, bytes, …)\n\
                 :health | :mem            SLO alert states / store memory report\n\
                 :flight | :snapshot       recent wide events / write a diagnostics bundle\n\
                 EXPLAIN ANALYZE <query>   execute and print phase/operator timings\n\
                 <anything else>           executed as a Nepal query\n\
                 example: Retrieve P From PATHS P Where P MATCHES VNF()->[Vertical()]{{1,6}}->Host(host_id=1015)\n\
                 example: EXPLAIN ANALYZE Retrieve P From PATHS P Where P MATCHES VM()->[Vertical()]{{1,4}}->Host()"
            );
            continue;
        }
        if line == ":schema" {
            let s = graph.schema();
            println!("node classes:");
            for c in s.node_classes() {
                if c != nepal::schema::NODE {
                    println!("  {}", s.path_name(c));
                }
            }
            println!("edge classes:");
            for c in s.edge_classes() {
                if c != nepal::schema::EDGE {
                    println!("  {}", s.path_name(c));
                }
            }
            continue;
        }
        if line == ":stats" {
            println!(
                "entities: {}  versions: {}  nodes alive: {}  edges alive: {}",
                graph.num_entities(),
                graph.num_versions(),
                graph.alive_count(nepal::schema::NODE),
                graph.alive_count(nepal::schema::EDGE)
            );
            continue;
        }
        if line == ":threads" || line.starts_with(":threads ") {
            let arg = line.strip_prefix(":threads").unwrap_or("").trim();
            if arg.is_empty() {
                let setting = engine.eval_options.threads;
                println!(
                    "threads: {} (resolved: {})",
                    if setting == 0 { "auto".to_string() } else { setting.to_string() },
                    nepal::rpe::resolved_threads(setting)
                );
            } else {
                match arg.parse::<usize>() {
                    Ok(n) => {
                        engine.eval_options.threads = n;
                        println!("threads set to {} (resolved: {})", n, nepal::rpe::resolved_threads(n));
                    }
                    Err(_) => println!("usage: :threads [N]   (0 = auto)"),
                }
            }
            continue;
        }
        if line == ":timeout" || line.starts_with(":timeout ") {
            let arg = line.strip_prefix(":timeout").unwrap_or("").trim();
            if arg.is_empty() {
                match engine.default_deadline {
                    Some(d) => println!("timeout: {} ms", d.as_millis()),
                    None => println!("timeout: off (:timeout <ms> to set)"),
                }
            } else if arg == "off" || arg == "0" {
                engine.default_deadline = None;
                println!("timeout off");
            } else {
                match arg.parse::<u64>() {
                    Ok(ms) => {
                        engine.default_deadline = Some(Duration::from_millis(ms));
                        println!("timeout set to {ms} ms (queries exceeding it return a typed error)");
                    }
                    Err(_) => println!("usage: :timeout [ms|off]"),
                }
            }
            continue;
        }
        if line == ":cancel" {
            session_cancel.lock().unwrap().cancel();
            println!("session cancel token tripped; the next query aborts with a typed error");
            continue;
        }
        if line == ":metrics" {
            gauges.refresh_deep(&graph);
            print!("{}", engine.metrics.render_prometheus());
            continue;
        }
        if line == ":health" {
            gauges.refresh_deep(&graph);
            let statuses = slo.evaluate();
            let firing = statuses.iter().filter(|s| s.state.is_firing()).count();
            println!("{}", if firing == 0 { "healthy" } else { "DEGRADED" });
            print!("{}", alerts_text(&statuses));
            continue;
        }
        if line == ":mem" {
            let report = gauges.refresh_deep(&graph);
            println!(
                "total {}  (entities {}  adjacency {}  unique indexes {})  journal {}",
                fmt_bytes(report.total_bytes),
                fmt_bytes(report.entity_bytes),
                fmt_bytes(report.adjacency_bytes),
                fmt_bytes(report.unique_index_bytes),
                fmt_bytes(report.journal_bytes),
            );
            let mut rows = report.classes.clone();
            rows.sort_by_key(|r| std::cmp::Reverse(r.bytes));
            println!(
                "{:<24} {:>5} {:>9} {:>9} {:>9} {:>10}",
                "class", "kind", "entities", "alive", "versions", "bytes"
            );
            for c in &rows {
                println!(
                    "{:<24} {:>5} {:>9} {:>9} {:>9} {:>10}",
                    c.name,
                    format!("{:?}", c.kind).to_lowercase(),
                    c.entities,
                    c.alive,
                    c.versions,
                    fmt_bytes(c.bytes)
                );
            }
            let chain: Vec<String> = report
                .chain_histogram
                .iter()
                .map(|(b, n)| format!("≤{}:{n}", if *b == u64::MAX { "∞".to_string() } else { b.to_string() }))
                .collect();
            println!("version-chain lengths: {}", chain.join("  "));
            continue;
        }
        if line == ":flight" {
            let rec = nepal::obs::flight::recorder();
            let stats = rec.stats();
            let (written, dropped) = (stats.total_written, stats.total_dropped);
            println!(
                "flight recorder: {} ring(s), {written} event(s) written, {dropped} overwritten",
                stats.rings.len()
            );
            let events = rec.events();
            let now = rec.now_us();
            for e in events.iter().rev().take(20).rev() {
                println!(
                    "{:>8}  {:>9.3}s ago  [{}] {:<16} {}",
                    e.seq,
                    now.saturating_sub(e.ts_us) as f64 / 1e6,
                    e.thread,
                    e.kind.name(),
                    e.describe()
                );
            }
            continue;
        }
        if line == ":snapshot" {
            match telemetry.snapshot("repl") {
                Ok(path) => println!("diagnostics bundle written: {}", path.display()),
                Err(e) => println!("snapshot failed: {e}"),
            }
            continue;
        }
        if line == ":slow" {
            if engine.slow_log.is_empty() {
                println!("no queries above {} yet", fmt_ns(engine.slow_log.threshold_ns()));
            } else {
                for e in engine.slow_log.entries() {
                    let trace = e.trace_id.map(|t| format!("trace #{t}")).unwrap_or_else(|| "-".to_string());
                    println!("{:>10}  {:>6} row(s)  {:>10}  {}", fmt_ns(e.total_ns), e.result_rows, trace, e.query);
                }
            }
            continue;
        }
        if line == ":qlog" || line.starts_with(":qlog ") {
            run_qlog_command(&mut engine, line.strip_prefix(":qlog").unwrap_or("").trim());
            continue;
        }
        if line == ":top" || line.starts_with(":top ") {
            let mut n = 10usize;
            let mut sort = nepal::obs::StmtSort::default();
            let mut ok = true;
            for tok in line.strip_prefix(":top").unwrap_or("").split_whitespace() {
                if let Ok(v) = tok.parse::<usize>() {
                    n = v;
                } else if let Some(s) = nepal::obs::StmtSort::parse(tok) {
                    sort = s;
                } else {
                    ok = false;
                }
            }
            if ok {
                print!("{}", stmt.render_text(n, sort));
            } else {
                println!("usage: :top [N] [cpu|rows|bytes|calls|wall]");
            }
            continue;
        }
        if line == ":trace" || line.starts_with(":trace ") {
            run_trace_command(&engine, line.strip_prefix(":trace").unwrap_or("").trim());
            continue;
        }
        if let Some(q) = line.strip_prefix(":profile ") {
            if let Err(e) = run_profiled(&mut engine, &graph, q) {
                println!("error: {e}");
            }
            continue;
        }
        if let Some(rpe_text) = line.strip_prefix(":plan ") {
            match parse_rpe(rpe_text).map_err(|e| e.to_string()).and_then(|r| {
                plan_rpe(graph.schema(), &r, &GraphEstimator { graph: &graph }).map_err(|e| e.to_string())
            }) {
                Ok(plan) => {
                    for op in plan.operators() {
                        println!("  {op}");
                    }
                    println!(
                        "  source: {}  target: {}  length limit: {} elements",
                        graph.schema().path_name(plan.source_class),
                        graph.schema().path_name(plan.target_class),
                        plan.max_elements
                    );
                }
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        if let Some(q) = line.strip_prefix(":sql ") {
            match run(&mut engine, q) {
                Ok(()) => {
                    for stmt in engine.registry.get(Some("pg")).map(|b| b.last_generated()).unwrap_or_default() {
                        println!("{stmt}");
                    }
                }
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        if line == ":profile" {
            println!("usage: :profile <query>");
            continue;
        }
        if line.starts_with(':') {
            println!("unknown command {}; :help lists commands", line.split_whitespace().next().unwrap_or(line));
            continue;
        }
        // EXPLAIN ANALYZE or a plain query.
        match parse_statement(line) {
            Ok(Statement::ExplainAnalyze(_)) => {
                let q = line
                    .trim_start()
                    .get("EXPLAIN".len()..)
                    .map(|r| r.trim_start())
                    .and_then(|r| r.get("ANALYZE".len()..))
                    .unwrap_or(line);
                if let Err(e) = run_profiled(&mut engine, &graph, q.trim()) {
                    println!("error: {e}");
                }
            }
            Ok(Statement::Query(_)) => {
                if let Err(e) = run_and_print(&mut engine, &graph, line) {
                    println!("error: {e}");
                }
            }
            Err(e) => println!("error: {e}"),
        }
        // A tripped token is sticky: re-arm so one cancellation does not
        // poison every subsequent query in the session.
        if session_cancel.lock().unwrap().is_cancelled() {
            rearm_cancel(&mut engine, &session_cancel);
            println!("(cancel token re-armed)");
        }
    }
}

fn run_trace_command(engine: &Engine, arg: &str) {
    match arg {
        "" => {
            let t = &engine.tracer;
            println!(
                "tracing: {}  sample: 1-in-{}  slow keep: {}  buffered traces: {}",
                if t.enabled() { "on" } else { "off" },
                t.sample_every(),
                fmt_ns(t.slow_threshold_ns()),
                t.len()
            );
            for s in t.summaries() {
                println!("  #{:<4} {:>10}  {:>3} span(s)  {}", s.id, fmt_ns(s.dur_ns), s.spans, s.name);
            }
        }
        "on" => {
            engine.tracer.set_enabled(true);
            println!("tracing on (1-in-{} sampling; slow queries always kept)", engine.tracer.sample_every());
        }
        "off" => {
            engine.tracer.set_enabled(false);
            println!("tracing off");
        }
        _ => {
            if let Some(file) = arg.strip_prefix("export").map(str::trim).filter(|f| !f.is_empty()) {
                match engine.tracer.export_latest_chrome() {
                    Some(json) => match std::fs::write(file, &json) {
                        Ok(()) => {
                            println!("wrote {file} ({} bytes); open in chrome://tracing or ui.perfetto.dev", json.len())
                        }
                        Err(e) => println!("error: could not write {file}: {e}"),
                    },
                    None => println!("no traces buffered; :trace on, run a query, then export"),
                }
            } else {
                println!("usage: :trace | :trace on | :trace off | :trace export <file>");
            }
        }
    }
}

fn run_qlog_command(engine: &mut Engine, arg: &str) {
    match arg {
        "" => {
            match &engine.qlog {
                Some(log) => println!(
                    "query log: on  file: {}  records: {}  bytes: {}  rotations: {}",
                    log.path().display(),
                    log.records(),
                    log.bytes(),
                    log.rotations()
                ),
                None => println!("query log: off (:qlog on [file] to enable)"),
            }
            print!("{}", engine.feedback.render_text(10));
        }
        "off" => {
            engine.disable_qlog();
            println!("query log off");
        }
        _ => {
            if let Some(rest) = arg.strip_prefix("top") {
                match rest.trim().parse::<usize>() {
                    Ok(n) if n > 0 => print!("{}", engine.feedback.render_text(n)),
                    _ => println!("usage: :qlog top N"),
                }
            } else if let Some(rest) = arg.strip_prefix("on") {
                let file = rest.trim();
                let file = if file.is_empty() { "nepal-qlog.jsonl" } else { file };
                match engine.enable_qlog(file, 16 * 1024 * 1024, 4) {
                    Ok(()) => println!("query log on: appending JSONL records to {file}"),
                    Err(e) => println!("error: could not open {file}: {e}"),
                }
            } else {
                println!("usage: :qlog | :qlog on [file] | :qlog off | :qlog top N");
            }
        }
    }
}

fn run(engine: &mut Engine, q: &str) -> Result<(), String> {
    // Force the pg backend for :sql by appending USING pg to each source —
    // parse, rewrite, execute.
    let mut parsed = nepal::core::parse_query(q).map_err(|e| e.to_string())?;
    for s in &mut parsed.sources {
        s.backend = Some("pg".to_string());
    }
    engine.execute(&parsed).map_err(|e| e.to_string())?;
    Ok(())
}

fn run_profiled(engine: &mut Engine, graph: &Arc<TemporalGraph>, q: &str) -> Result<(), String> {
    let (result, profile) = engine.query_profiled(q).map_err(|e| e.to_string())?;
    print!("{}", profile.render());
    print_rows(&result, graph, 5);
    Ok(())
}

fn run_and_print(engine: &mut Engine, graph: &Arc<TemporalGraph>, q: &str) -> Result<(), String> {
    let t0 = std::time::Instant::now();
    let result = engine.query(q).map_err(|e| e.to_string())?;
    let elapsed = t0.elapsed();
    println!("-- {} row(s) in {:.3} ms", result.rows.len(), elapsed.as_secs_f64() * 1e3);
    print_rows(&result, graph, 20);
    Ok(())
}

fn print_rows(result: &nepal::core::QueryResult, graph: &Arc<TemporalGraph>, limit: usize) {
    for (i, row) in result.rows.iter().enumerate() {
        if i >= limit {
            println!("   … ({} more rows)", result.rows.len() - limit);
            break;
        }
        if !row.values.is_empty() {
            let vals: Vec<String> = row.values.iter().map(|v| v.to_string()).collect();
            println!("   {}", vals.join(" | "));
        } else {
            for (var, p) in &row.pathways {
                println!("   {var}: {}", p.display(graph));
            }
        }
        if let Some(times) = &row.times {
            println!("      times: {times}");
        }
    }
}
