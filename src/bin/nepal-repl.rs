//! Interactive Nepal shell.
//!
//! ```text
//! cargo run --release --bin nepal-repl            # virtualized demo inventory
//! cargo run --release --bin nepal-repl -- legacy  # legacy topology
//! ```
//!
//! Commands:
//! ```text
//! :help                  this help
//! :schema                list node/edge classes
//! :plan <rpe>            show the Select/Extend/Union plan for an RPE
//! :sql <query>           run on the relational backend and show its SQL
//! :stats                 graph statistics
//! :quit                  exit
//! <anything else>        executed as a Nepal query
//! ```

use std::io::{BufRead, Write};
use std::sync::Arc;

use nepal::core::{BackendRegistry, Engine, NativeBackend, RelationalBackend};
use nepal::graph::TemporalGraph;
use nepal::rpe::{parse_rpe, plan_rpe, GraphEstimator};
use nepal::workload::{generate_legacy, generate_virtualized, LegacyParams, VirtParams};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let graph: Arc<TemporalGraph> = if args.iter().any(|a| a == "legacy") {
        eprintln!("loading legacy topology (20k nodes)…");
        Arc::new(
            generate_legacy(LegacyParams { nodes: 20_000, edges: 90_000, ..Default::default() })
                .graph,
        )
    } else {
        eprintln!("loading virtualized service inventory (~2k nodes / ~11k edges)…");
        Arc::new(generate_virtualized(VirtParams::default()).graph)
    };
    let mut registry = BackendRegistry::new("native", Box::new(NativeBackend::new(graph.clone())));
    registry.add(
        "pg",
        Box::new(RelationalBackend::from_graph(&graph).expect("relational load")),
    );
    let mut engine = Engine::new(registry);
    eprintln!("ready. :help for commands.\n");

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("nepal> ");
        out.flush().ok();
        let mut line = String::new();
        match stdin.lock().read_line(&mut line) {
            Ok(0) => break,
            Ok(_) => {}
            Err(_) => break,
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        if line == ":quit" || line == ":q" {
            break;
        }
        if line == ":help" {
            println!(
                ":schema | :stats | :plan <rpe> | :sql <query> | :quit | <Nepal query>\n\
                 example: Retrieve P From PATHS P Where P MATCHES VNF()->[Vertical()]{{1,6}}->Host(host_id=1015)"
            );
            continue;
        }
        if line == ":schema" {
            let s = graph.schema();
            println!("node classes:");
            for c in s.node_classes() {
                if c != nepal::schema::NODE {
                    println!("  {}", s.path_name(c));
                }
            }
            println!("edge classes:");
            for c in s.edge_classes() {
                if c != nepal::schema::EDGE {
                    println!("  {}", s.path_name(c));
                }
            }
            continue;
        }
        if line == ":stats" {
            println!(
                "entities: {}  versions: {}  nodes alive: {}  edges alive: {}",
                graph.num_entities(),
                graph.num_versions(),
                graph.alive_count(nepal::schema::NODE),
                graph.alive_count(nepal::schema::EDGE)
            );
            continue;
        }
        if let Some(rpe_text) = line.strip_prefix(":plan ") {
            match parse_rpe(rpe_text)
                .map_err(|e| e.to_string())
                .and_then(|r| {
                    plan_rpe(graph.schema(), &r, &GraphEstimator { graph: &graph })
                        .map_err(|e| e.to_string())
                }) {
                Ok(plan) => {
                    for op in plan.operators() {
                        println!("  {op}");
                    }
                    println!(
                        "  source: {}  target: {}  length limit: {} elements",
                        graph.schema().path_name(plan.source_class),
                        graph.schema().path_name(plan.target_class),
                        plan.max_elements
                    );
                }
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        if let Some(q) = line.strip_prefix(":sql ") {
            match run(&mut engine, q) {
                Ok(()) => {
                    for stmt in engine.registry.get(Some("pg")).map(|b| b.last_generated()).unwrap_or_default() {
                        println!("{stmt}");
                    }
                }
                Err(e) => println!("error: {e}"),
            }
            continue;
        }
        if let Err(e) = run_and_print(&mut engine, &graph, line) {
            println!("error: {e}");
        }
    }
}

fn run(engine: &mut Engine, q: &str) -> Result<(), String> {
    // Force the pg backend for :sql by appending USING pg to each source —
    // parse, rewrite, execute.
    let mut parsed = nepal::core::parse_query(q).map_err(|e| e.to_string())?;
    for s in &mut parsed.sources {
        s.backend = Some("pg".to_string());
    }
    engine.execute(&parsed).map_err(|e| e.to_string())?;
    Ok(())
}

fn run_and_print(
    engine: &mut Engine,
    graph: &Arc<TemporalGraph>,
    q: &str,
) -> Result<(), String> {
    let t0 = std::time::Instant::now();
    let result = engine.query(q).map_err(|e| e.to_string())?;
    let elapsed = t0.elapsed();
    println!("-- {} row(s) in {:.3} ms", result.rows.len(), elapsed.as_secs_f64() * 1e3);
    for (i, row) in result.rows.iter().enumerate() {
        if i >= 20 {
            println!("   … ({} more rows)", result.rows.len() - 20);
            break;
        }
        if !row.values.is_empty() {
            let vals: Vec<String> = row.values.iter().map(|v| v.to_string()).collect();
            println!("   {}", vals.join(" | "));
        } else {
            for (var, p) in &row.pathways {
                println!("   {var}: {}", p.display(graph));
            }
        }
        if let Some(times) = &row.times {
            println!("      times: {times}");
        }
    }
    Ok(())
}
