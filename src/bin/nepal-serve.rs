//! Long-running Nepal demo server: Gremlin wire endpoint + telemetry HTTP.
//!
//! ```text
//! cargo run --release --bin nepal-serve                  # defaults
//! cargo run --release --bin nepal-serve -- --http 9464 --gremlin 8182 --ttl 120 --threads 4
//! cargo run --release --bin nepal-serve -- --qlog nepal-qlog.jsonl   # durable query log
//! ```
//!
//! Starts a Gremlin server over the virtualized demo inventory, an engine
//! with native / relational / gremlin backends and span tracing enabled,
//! and a std-only telemetry HTTP listener serving:
//!
//! ```text
//! GET /metrics        Prometheus text format (engine + store gauges)
//!                     (?deep=1 adds the exact store walk; default scrapes
//!                     run only cheap O(classes) refreshers)
//! GET /metrics.json   the same registry as JSON
//! GET /top            per-fingerprint cost attribution (?n=, ?sort=)
//! GET /top.json       the same as JSON
//! GET /history.json   metrics history ring (?tail=)
//! GET /healthz        deep readiness: checks + store watermarks + alerts
//! GET /alerts         SLO alert states as text (also /alerts.json)
//! GET /dashboard      self-contained HTML operations dashboard
//! GET /slow           slow-query ring buffer
//! GET /qlog           worst-estimated query fingerprints (planner q-error)
//! GET /qlog.json      query-log status + per-fingerprint feedback as JSON
//! GET /traces         buffered trace summaries
//! GET /traces/<id>    one trace as Chrome trace-event JSON
//! GET /flight         recent flight-recorder wide events as JSON
//! GET /snapshot       list of on-disk diagnostics bundles
//! POST /snapshot      write a diagnostics bundle now
//! GET /drain          final drain report (404 until shutdown)
//! ```
//!
//! `--ttl <seconds>` exits after that many seconds (0 = run forever) so CI
//! can start the server in the background without leaking it.
//!
//! Serving limits (see DESIGN.md §5e):
//!
//! ```text
//! --deadline-ms <ms>   per-request deadline (Gremlin wire + engine queries)
//! --max-inflight <n>   serving worker pool size (default 4)
//! --queue-depth <n>    bounded admission queue; excess arrivals are shed
//!                      with an explicit 503 overload frame (default 16)
//! --drain-ms <ms>      graceful-drain budget on SIGTERM/SIGINT (default 2000)
//! ```
//!
//! Flight recorder (see DESIGN.md §5f):
//!
//! ```text
//! --flight-events <n>       per-thread ring capacity in events, 0 = off
//!                           (default 4096)
//! --flight-dir <dir>        diagnostics-bundle directory (default
//!                           nepal-snapshots)
//! --flight-keep <n>         bundles kept before rotation (default 8)
//! --flight-window-secs <s>  seconds of wide events included per bundle
//!                           (default 30)
//! ```
//!
//! Snapshots are triggered by a panic anywhere in the process, an SLO
//! alert entering `firing`, SIGQUIT, `POST /snapshot`, and shutdown.
//!
//! On SIGTERM (or SIGINT / ttl expiry) the server stops accepting, lets
//! in-flight work finish within the drain budget, cancels stragglers via
//! the cooperative token, and exits cleanly.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use parking_lot::RwLock;

use nepal::core::{BackendRegistry, Engine, GremlinBackend, NativeBackend, RelationalBackend, StandardSlos};
use nepal::graph::{resource_summary, StoreGauges, TemporalGraph};
use nepal::gremlin::{property_graph_from, GremlinClient, GremlinServer, ServeConfig};
use nepal::obs::{install_panic_hook, HistoryRing, SnapshotConfig, Telemetry, TelemetryServer};
use nepal::workload::{generate_virtualized, VirtParams};

fn arg_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1)).cloned()
}

/// SIGTERM/SIGINT land here; the main loop polls the flag and drains.
/// std links libc on every supported target, so declaring `signal`
/// directly avoids a dependency for two lines of handler registration.
static SHUTDOWN: AtomicBool = AtomicBool::new(false);
/// SIGQUIT requests a diagnostics snapshot without shutting down; the main
/// loop polls this flag and writes a bundle when it flips.
static SNAPSHOT_REQ: AtomicBool = AtomicBool::new(false);

extern "C" fn on_signal(_sig: i32) {
    SHUTDOWN.store(true, Ordering::SeqCst);
}

extern "C" fn on_sigquit(_sig: i32) {
    SNAPSHOT_REQ.store(true, Ordering::SeqCst);
}

#[cfg(unix)]
fn install_signal_handlers() {
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGQUIT: i32 = 3;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGTERM, on_signal);
        signal(SIGINT, on_signal);
        signal(SIGQUIT, on_sigquit);
    }
}

#[cfg(not(unix))]
fn install_signal_handlers() {}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let http_port: u16 = arg_value(&args, "--http").and_then(|v| v.parse().ok()).unwrap_or(9464);
    let gremlin_port: u16 = arg_value(&args, "--gremlin").and_then(|v| v.parse().ok()).unwrap_or(0);
    let ttl_secs: u64 = arg_value(&args, "--ttl").and_then(|v| v.parse().ok()).unwrap_or(0);
    // Evaluator worker threads: 0 = auto (NEPAL_THREADS or core count).
    let threads: usize = arg_value(&args, "--threads").and_then(|v| v.parse().ok()).unwrap_or(0);
    // Durable query-log file (off unless given).
    let qlog_path = arg_value(&args, "--qlog");
    // Serving limits: deadline, worker pool, admission queue, drain budget.
    let deadline_ms: Option<u64> = arg_value(&args, "--deadline-ms").and_then(|v| v.parse().ok());
    let max_inflight: usize = arg_value(&args, "--max-inflight").and_then(|v| v.parse().ok()).unwrap_or(4);
    let queue_depth: usize = arg_value(&args, "--queue-depth").and_then(|v| v.parse().ok()).unwrap_or(16);
    let drain_ms: u64 = arg_value(&args, "--drain-ms").and_then(|v| v.parse().ok()).unwrap_or(2000);
    // Flight recorder + diagnostics snapshots (see DESIGN.md §5f).
    let flight_events: usize = arg_value(&args, "--flight-events").and_then(|v| v.parse().ok()).unwrap_or(4096);
    let flight_dir = arg_value(&args, "--flight-dir").unwrap_or_else(|| "nepal-snapshots".to_string());
    let flight_keep: usize = arg_value(&args, "--flight-keep").and_then(|v| v.parse().ok()).unwrap_or(8);
    let flight_window_secs: u64 = arg_value(&args, "--flight-window-secs").and_then(|v| v.parse().ok()).unwrap_or(30);
    // Workload introspection: statement-stats table capacity (0 = off) and
    // metrics-history resolution in seconds (0 = off).
    let stmt_capacity: usize = arg_value(&args, "--stmt-capacity").and_then(|v| v.parse().ok()).unwrap_or(512);
    let history_secs: u64 = arg_value(&args, "--history-secs").and_then(|v| v.parse().ok()).unwrap_or(5);

    // Enable the process-wide flight recorder before any subsystem starts,
    // so even startup activity (journal replay, warm-up) is on the record.
    if flight_events > 0 {
        let rec = nepal::obs::flight::recorder();
        rec.set_capacity(flight_events);
        rec.set_enabled(true);
        eprintln!("flight recorder: {flight_events} events/thread, snapshots in {flight_dir}/ (keep {flight_keep})");
    } else {
        eprintln!("flight recorder: off (--flight-events 0)");
    }

    eprintln!("loading virtualized service inventory (~2k nodes / ~11k edges)…");
    let graph: Arc<TemporalGraph> = Arc::new(generate_virtualized(VirtParams::default()).graph);

    // Engine with all three backends; tracing on so every request is
    // eligible for the trace ring served at /traces.
    let mut registry = BackendRegistry::new("native", Box::new(NativeBackend::new(graph.clone())));
    match RelationalBackend::from_graph(&graph) {
        Ok(pg) => registry.add("pg", Box::new(pg)),
        Err(e) => eprintln!("warning: relational backend unavailable ({e})"),
    }
    let mut engine = Engine::new(registry);
    engine.eval_options.threads = threads;
    engine.default_deadline = deadline_ms.map(Duration::from_millis);
    if let Some(ms) = deadline_ms {
        eprintln!("per-request deadline: {ms} ms");
    }
    engine.tracer.set_enabled(true);
    engine.tracer.set_sample_every(1);
    eprintln!("evaluator threads: {}", nepal::rpe::resolved_threads(threads));
    if let Some(path) = &qlog_path {
        match engine.enable_qlog(path, 16 * 1024 * 1024, 4) {
            Ok(()) => eprintln!("query log: appending JSONL records to {path}"),
            Err(e) => eprintln!("warning: could not open query log {path}: {e}"),
        }
    }

    // Per-fingerprint cost attribution: one shared table aggregates both
    // engine queries and Gremlin wire requests, served at /top[.json].
    let stmt = (stmt_capacity > 0).then(|| engine.enable_stmt(stmt_capacity));

    // Gremlin wire endpoint over a property-graph mirror, sharing the
    // engine's tracer so server-side request spans land in the same ring.
    let pg = Arc::new(RwLock::new(property_graph_from(&graph)));
    let serve_cfg = ServeConfig {
        workers: max_inflight.max(1),
        queue_depth,
        deadline: deadline_ms.map(Duration::from_millis),
        drain: Duration::from_millis(drain_ms),
        stmt: stmt.clone(),
        ..ServeConfig::default()
    };
    let mut server = match GremlinServer::start_cfg(
        pg,
        &format!("127.0.0.1:{gremlin_port}"),
        Some(engine.tracer.clone()),
        serve_cfg,
    ) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: could not bind gremlin server: {e}");
            std::process::exit(1);
        }
    };
    eprintln!("serving limits: {} worker(s), queue depth {}", max_inflight.max(1), queue_depth);
    let gremlin_addr = server.addr;
    match server.connect() {
        Ok(stream) => {
            let client = GremlinClient::new(stream);
            engine.registry.add("gremlin", Box::new(GremlinBackend::new(client, graph.schema().clone())));
        }
        Err(e) => eprintln!("warning: gremlin backend unavailable ({e})"),
    }

    // Telemetry endpoint: engine metrics + store gauges, health checks,
    // slow log and the trace ring.
    let telemetry = Arc::new(Telemetry::new(engine.metrics.clone(), engine.slow_log.clone(), engine.tracer.clone()));
    telemetry.set_qlog(engine.feedback.clone(), engine.qlog.clone());
    // The shared statement table serves /top, /top.json and the
    // nepal_stmt_* families.
    if let Some(stmt) = &stmt {
        telemetry.set_stmt(stmt.clone());
        eprintln!("statement stats: tracking up to {stmt_capacity} fingerprints (/top)");
    }
    // Metrics history ring: self-scrape snapshots driven from the main
    // poll loop, served at /history.json and embedded in bundles.
    if history_secs > 0 {
        telemetry.set_history(Arc::new(HistoryRing::new(Duration::from_secs(history_secs), 720)));
        eprintln!("metrics history: {history_secs}s resolution, 720 snapshots (/history.json)");
    }
    if flight_events > 0 {
        telemetry.set_flight(nepal::obs::flight::recorder().clone());
        telemetry.set_snapshots(SnapshotConfig {
            dir: flight_dir.clone().into(),
            keep: flight_keep.max(1),
            window: Duration::from_secs(flight_window_secs.max(1)),
        });
        telemetry.set_build_info(vec![
            ("bin".to_string(), "nepal-serve".to_string()),
            ("version".to_string(), env!("CARGO_PKG_VERSION").to_string()),
            ("workers".to_string(), max_inflight.max(1).to_string()),
            ("queue_depth".to_string(), queue_depth.to_string()),
            ("deadline_ms".to_string(), deadline_ms.map_or("none".to_string(), |d| d.to_string())),
        ]);
        // A panicking worker (or any thread) leaves a diagnostics bundle
        // behind before the panic propagates.
        install_panic_hook(telemetry.clone());
    }
    let gauges = Arc::new(StoreGauges::register(&engine.metrics));
    // Seed the exact footprint once at startup, then keep the cheap
    // O(classes) refresh on every scrape; the exact store walk (unique
    // index, journal estimate, chain histogram) runs only on demand via
    // /metrics?deep=1 so a default scrape never pays for it.
    gauges.refresh_deep(&graph);
    {
        let (gauges, graph) = (gauges.clone(), graph.clone());
        telemetry.add_refresher(move || {
            gauges.refresh(&graph);
        });
    }
    {
        let (gauges, graph) = (gauges.clone(), graph.clone());
        telemetry.add_deep_refresher(move || {
            gauges.refresh_deep(&graph);
        });
    }
    let slo = engine.install_standard_slos(&StandardSlos::default());
    telemetry.set_slo(slo.clone());
    {
        let graph = graph.clone();
        telemetry.set_resources(move || resource_summary(&graph.memory_report()));
    }
    {
        let graph = graph.clone();
        telemetry.add_health("store", move || Ok(format!("{} entities", graph.num_entities())));
    }
    {
        let stats = server.stats.clone();
        telemetry.add_health("gremlin", move || {
            Ok(format!("{} request(s) served", stats.requests.load(std::sync::atomic::Ordering::Relaxed)))
        });
    }
    {
        // Serving-limit metrics: gauges mirror the live values; monotonic
        // counters advance by the delta since the previous scrape so
        // Prometheus `rate()` works even though the source is a snapshot.
        let stats = server.stats.clone();
        let m = &engine.metrics;
        let shed = m.counter("nepal_serve_shed_total", "Connections shed at admission with a 503 overload frame");
        let deadlines =
            m.counter("nepal_serve_deadline_total", "Requests abandoned because the serving deadline passed");
        let cancelled = m.counter("nepal_serve_cancelled_total", "In-flight requests cancelled by drain");
        let requests = m.counter("nepal_serve_requests_total", "Requests served on the Gremlin wire endpoint");
        let queue = m.gauge("nepal_serve_queue_depth", "Connections waiting for a serving worker");
        let inflight = m.gauge("nepal_serve_inflight", "Requests being evaluated right now");
        let prev = std::sync::Mutex::new([0u64; 4]);
        telemetry.add_refresher(move || {
            use std::sync::atomic::Ordering::Relaxed;
            let now = [
                stats.shed.load(Relaxed),
                stats.deadline_timeouts.load(Relaxed),
                stats.cancelled_inflight.load(Relaxed),
                stats.requests.load(Relaxed),
            ];
            let mut p = prev.lock().unwrap();
            shed.add(now[0].saturating_sub(p[0]));
            deadlines.add(now[1].saturating_sub(p[1]));
            cancelled.add(now[2].saturating_sub(p[2]));
            requests.add(now[3].saturating_sub(p[3]));
            *p = now;
            queue.set(stats.queue_depth.load(Relaxed) as i64);
            inflight.set(stats.inflight.load(Relaxed) as i64);
        });
    }
    let http = match TelemetryServer::start(telemetry.clone(), &format!("127.0.0.1:{http_port}")) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: could not bind telemetry server: {e}");
            std::process::exit(1);
        }
    };

    // Warm the metrics with one traced query through each backend.
    for backend in ["native", "pg", "gremlin"] {
        let q = format!(
            "Retrieve P From PATHS P USING {backend} Where P MATCHES VM()->[Vertical()]{{1,4}}->Host(host_id=1015)"
        );
        match engine.query(&q) {
            Ok(r) => eprintln!("warm-up ({backend}): {} row(s)", r.rows.len()),
            Err(e) => eprintln!("warm-up ({backend}) failed: {e}"),
        }
    }
    // Drain the cold-start warm-up latencies out of the SLO windows so the
    // first external probe scores only real traffic.
    slo.evaluate();

    println!("gremlin: {gremlin_addr}");
    println!("telemetry: http://{}", http.local_addr());
    println!("try: curl -s http://{}/metrics | head", http.local_addr());

    install_signal_handlers();

    // Run until SIGTERM/SIGINT (or ttl expiry), polling the flag so the
    // drain starts within ~100 ms of the signal.
    let deadline = (ttl_secs > 0).then(|| std::time::Instant::now() + Duration::from_secs(ttl_secs));
    loop {
        if SHUTDOWN.load(Ordering::SeqCst) {
            eprintln!("signal received; draining (budget {drain_ms} ms)");
            break;
        }
        if deadline.is_some_and(|d| std::time::Instant::now() >= d) {
            eprintln!("ttl reached; draining (budget {drain_ms} ms)");
            break;
        }
        if SNAPSHOT_REQ.swap(false, Ordering::SeqCst) {
            match telemetry.snapshot("sigquit") {
                Ok(path) => eprintln!("snapshot written: {}", path.display()),
                Err(e) => eprintln!("snapshot failed: {e}"),
            }
        }
        // Admit a metrics-history snapshot when one is due (no-op between
        // intervals; one lock + compare per poll).
        telemetry.tick_history();
        std::thread::sleep(Duration::from_millis(100));
    }

    // Graceful drain: stop accepting, finish in-flight work within the
    // budget, cancel stragglers through the cooperative token.
    let t_drain = std::time::Instant::now();
    let report = server.drain(Duration::from_millis(drain_ms));
    if report.clean {
        eprintln!("drain complete: all in-flight work finished");
    } else {
        eprintln!("drain budget exceeded: stragglers cancelled via token");
    }
    if report.shed_queued > 0 {
        eprintln!("drain shed {} queued connection(s) with overload frames", report.shed_queued);
    }
    // Publish the final drain report through telemetry and leave one last
    // diagnostics bundle behind as the flight recorder's shutdown record.
    telemetry.set_drain_json(format!(
        "{{\"clean\":{},\"shed_queued\":{},\"budget_ms\":{},\"waited_ms\":{}}}",
        report.clean,
        report.shed_queued,
        drain_ms,
        t_drain.elapsed().as_millis()
    ));
    if flight_events > 0 {
        match telemetry.snapshot("shutdown") {
            Ok(path) => eprintln!("shutdown snapshot: {}", path.display()),
            Err(e) => eprintln!("shutdown snapshot failed: {e}"),
        }
    }
}
