//! Property tests for the flight recorder's lock-free per-thread rings:
//! whatever the thread count, per-thread event volume, and ring capacity,
//! the stitched stream must carry no duplicated or invented events, retain
//! exactly the newest `capacity` events per ring, and preserve emission
//! order — and a reader racing live writers must never observe a torn
//! event (the seqlock either yields a consistent record or skips the slot).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use nepal::obs::{FlightKind, FlightRecorder};
use proptest::prelude::*;

/// Payload invariant every emitted event satisfies: `b = a + 1`,
/// `c = a ^ 0xA5A5`. A torn read (payload half-old, half-new) would break
/// it, since every event carries a distinct `a`.
fn emit_checked(h: &nepal::obs::FlightHandle, a: u64) {
    h.emit(FlightKind::QueryStart, a, a + 1, a ^ 0xA5A5, "prop");
}

fn payload_consistent(e: &nepal::obs::WideEvent) -> bool {
    e.b == e.a + 1 && e.c == (e.a ^ 0xA5A5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Quiescent correctness: after all writers join, the stitched stream
    /// has unique seqs, strictly increasing order, the newest
    /// `min(per_thread, capacity)` events of each thread in emission
    /// order, and ring stats that account for every emit.
    #[test]
    fn stitched_stream_is_complete_and_ordered(
        threads in 2usize..6,
        per_thread in 1usize..200,
        capacity in 8usize..96,
    ) {
        let rec = FlightRecorder::new(capacity);
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let rec = rec.clone();
                std::thread::spawn(move || {
                    let h = rec.handle(&format!("w{t}"));
                    for i in 0..per_thread {
                        // Thread id in the high bits, local index low.
                        emit_checked(&h, ((t as u64) << 32) | i as u64);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }

        let events = rec.events();
        // No duplicates, strictly ordered by seq (events() sorts; equal
        // seqs would mean a duplicated slot).
        for w in events.windows(2) {
            prop_assert!(w[0].seq < w[1].seq, "duplicate or unordered seq {}", w[1].seq);
        }
        prop_assert!(events.iter().all(payload_consistent));

        // Retention: each thread keeps exactly its newest min(n, cap)
        // events, in emission order.
        let keep = per_thread.min(capacity);
        for t in 0..threads as u64 {
            let mine: Vec<u64> =
                events.iter().filter(|e| e.a >> 32 == t).map(|e| e.a & 0xFFFF_FFFF).collect();
            let expect: Vec<u64> = ((per_thread - keep) as u64..per_thread as u64).collect();
            prop_assert_eq!(&mine, &expect, "thread {} retained wrong events", t);
        }

        let stats = rec.stats();
        prop_assert_eq!(stats.total_written, (threads * per_thread) as u64);
        let dropped_expect = (threads * per_thread.saturating_sub(capacity)) as u64;
        prop_assert_eq!(stats.total_dropped, dropped_expect);
    }

    /// Live contention: a reader stitching while writers wrap their rings
    /// never sees a torn payload or a duplicated seq. (Events may be
    /// missed mid-overwrite — that is the design — but never invented.)
    #[test]
    fn racing_reader_never_observes_torn_events(
        threads in 2usize..5,
        capacity in 8usize..32,
    ) {
        let rec = FlightRecorder::new(capacity);
        let stop = Arc::new(AtomicBool::new(false));
        let writers: Vec<_> = (0..threads)
            .map(|t| {
                let rec = rec.clone();
                let stop = stop.clone();
                std::thread::spawn(move || {
                    let h = rec.handle(&format!("w{t}"));
                    let mut i = 0u64;
                    while !stop.load(Ordering::Relaxed) {
                        emit_checked(&h, ((t as u64) << 32) | (i & 0xFFFF_FFFF));
                        i += 1;
                    }
                })
            })
            .collect();
        // Read hard while the rings are wrapping underneath.
        for _ in 0..50 {
            let events = rec.events();
            prop_assert!(events.iter().all(payload_consistent), "torn event observed");
            let mut seqs: Vec<u64> = events.iter().map(|e| e.seq).collect();
            seqs.dedup();
            prop_assert_eq!(seqs.len(), events.len(), "duplicated seq observed");
        }
        stop.store(true, Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
    }
}

/// Ring reuse keeps the registry bounded: threads that exit hand their
/// ring back, so churning many short-lived threads through the recorder
/// registers no more rings than the peak concurrency.
#[test]
fn short_lived_threads_reuse_rings_via_global_recorder() {
    let rec = nepal::obs::flight::recorder();
    rec.set_enabled(true);
    let before = rec.stats().rings.len();
    for batch in 0..8 {
        let h = std::thread::spawn(move || {
            nepal::obs::flight::emit(FlightKind::PoolPark, batch, 0, 0, "churn");
        });
        h.join().unwrap();
    }
    let after = rec.stats().rings.len();
    assert!(after <= before + 1, "sequential short-lived threads must share one reused ring: {before} -> {after}");
    rec.set_enabled(false);
}
