//! Durable query log acceptance tests: records written through the full
//! engine round-trip from JSONL with stable result digests, the `/qlog`
//! telemetry routes serve planner feedback once attached, and the query
//! fingerprint is invariant under literal and whitespace changes (checked
//! on a corpus and property-tested over generated RPE shapes).

use std::sync::Arc;

use nepal::core::{digest_result, engine_over, Engine};
use nepal::graph::TemporalGraph;
use nepal::obs::{fingerprint, QueryLog, Telemetry};
use nepal::schema::dsl::parse_schema;
use nepal::schema::Value;
use proptest::prelude::*;

fn demo_graph() -> Arc<TemporalGraph> {
    let schema = Arc::new(
        parse_schema(
            r#"
            node VM { vm_id: int unique }
            node Host { host_id: int unique }
            edge HostedOn { }
            allow HostedOn (VM -> Host)
            "#,
        )
        .unwrap(),
    );
    let vm_class = schema.class_by_name("VM").unwrap();
    let host_class = schema.class_by_name("Host").unwrap();
    let hosted = schema.class_by_name("HostedOn").unwrap();
    let mut g = TemporalGraph::new(schema);
    let host = g.insert_node(host_class, vec![Value::Int(7)], 0).unwrap();
    for i in 0..4 {
        let vm = g.insert_node(vm_class, vec![Value::Int(50 + i)], 0).unwrap();
        g.insert_edge(hosted, vm, host, vec![], 0).unwrap();
    }
    Arc::new(g)
}

fn demo_engine() -> Engine {
    engine_over(demo_graph())
}

const OK_QUERY: &str = "Retrieve P From PATHS P Where P MATCHES VM()->HostedOn()->Host(host_id=7)";
const AGG_QUERY: &str = "Select count(P) From PATHS P Where P MATCHES VM()->HostedOn()->Host()";
const BAD_QUERY: &str = "Retrieve P From PATHS P Where P MATCHES Phantom()->HostedOn()->Host()";

/// Queries run with the qlog enabled land in the JSONL file, round-trip
/// through the parser, and carry digests that a fresh engine over the
/// same graph reproduces exactly.
#[test]
fn qlog_records_roundtrip_with_reproducible_digests() {
    let dir = std::env::temp_dir().join(format!("nepal-qlog-facade-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("qlog.jsonl");
    let path = path.to_str().unwrap();
    let _ = std::fs::remove_file(path);

    let mut engine = demo_engine();
    engine.enable_qlog(path, 1 << 20, 2).unwrap();
    assert_eq!(engine.query(OK_QUERY).unwrap().rows.len(), 4);
    assert_eq!(engine.query(AGG_QUERY).unwrap().rows.len(), 1);
    assert!(engine.query(BAD_QUERY).is_err());
    engine.disable_qlog();

    let records = QueryLog::read_records(path).unwrap();
    assert_eq!(records.len(), 3, "one record per query, errors included");
    assert_eq!(records[0].query, OK_QUERY);
    assert_eq!(records[0].rows, 4);
    assert!(records[0].error.is_none());
    assert!(records[0].total_ns > 0);
    assert!(records[0].ts_ms > 0, "wall-clock stamped while qlog on");
    assert!(!records[0].feedback.vars.is_empty(), "plan feedback captured");
    assert!(records[2].error.is_some(), "failed query recorded with its error");

    // A fresh engine over the same graph must reproduce each digest.
    let mut fresh = demo_engine();
    for rec in records.iter().filter(|r| r.error.is_none()) {
        let (result, _) = fresh.query_profiled(&rec.query).unwrap();
        assert_eq!(digest_result(&result), rec.digest, "digest drift for {}", rec.query);
        assert_eq!(result.rows.len() as u64, rec.rows);
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// `/qlog` and `/qlog.json` 404 until planner feedback is attached, then
/// serve per-fingerprint estimate accuracy and log status.
#[test]
fn telemetry_qlog_routes_serve_feedback_after_queries() {
    let dir = std::env::temp_dir().join(format!("nepal-qlog-http-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("qlog.jsonl");
    let path = path.to_str().unwrap();
    let _ = std::fs::remove_file(path);

    let mut engine = demo_engine();
    let telemetry = Telemetry::new(engine.metrics.clone(), engine.slow_log.clone(), engine.tracer.clone());
    let (status, _, _) = telemetry.handle("/qlog");
    assert_eq!(status, 404, "route 404s before attachment");

    engine.enable_qlog(path, 1 << 20, 2).unwrap();
    engine.query(OK_QUERY).unwrap();
    telemetry.set_qlog(engine.feedback.clone(), engine.qlog.clone());

    let (status, _, body) = telemetry.handle("/qlog");
    assert_eq!(status, 200);
    assert!(body.contains("fingerprint"), "{body}");
    let (status, _, body) = telemetry.handle("/qlog.json");
    assert_eq!(status, 200);
    assert!(body.contains("\"enabled\":true"), "{body}");
    assert!(body.contains("\"records\":1"), "{body}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// Rotation boundary: a record whose line lands exactly on the size
/// threshold is never split — rotation only ever moves whole files, so
/// every generation holds complete JSONL lines and a replay across all
/// generations sees every record exactly once, in order.
#[test]
fn rotation_never_splits_a_record_and_replay_sees_all_generations() {
    use nepal::obs::{PlanFeedback, QlogRecord};

    let dir = std::env::temp_dir().join(format!("nepal-qlog-rotate-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("qlog.jsonl");
    let _ = std::fs::remove_file(&path);

    let rec = |i: usize| QlogRecord {
        ts_ms: 1000,
        query: format!("Retrieve P From PATHS P Where P MATCHES VM(vm_id={i})"),
        fingerprint: 7,
        trace_id: None,
        threads: 1,
        parse_ns: 10,
        plan_ns: 10,
        exec_ns: 10,
        total_ns: 30,
        rows: 1,
        digest: 9,
        error: None,
        feedback: PlanFeedback::default(),
    };
    // All single-digit ids → identical line lengths.
    let line_len = (rec(0).to_json_line().len() + 1) as u64;

    // Capacity of exactly three lines per generation.
    let log = QueryLog::open(&path, 3 * line_len, 2).unwrap();
    for i in 0..3 {
        log.append(&rec(i));
    }
    // The third record ends exactly at the threshold: no rotation, and the
    // live file holds three whole records.
    assert_eq!(log.rotations(), 0, "bytes == max must not rotate");
    assert_eq!(log.bytes(), 3 * line_len);
    assert_eq!(QueryLog::read_records(&path).unwrap().len(), 3);

    // Push through two rotations (rotation fires on the append that
    // crosses the bound, after the record is fully written).
    for i in 3..10 {
        log.append(&rec(i));
    }
    assert_eq!(log.rotations(), 2);
    assert_eq!(log.records(), 10);

    // Every generation holds only whole lines (every line parses), and
    // the oldest-to-newest concatenation replays all ten records in order.
    let mut replayed = Vec::new();
    for gen in [Some(2), Some(1), None] {
        let gen_path = match gen {
            Some(n) => dir.join(format!("qlog.jsonl.{n}")),
            None => path.clone(),
        };
        let text = std::fs::read_to_string(&gen_path).unwrap();
        let parsed = QueryLog::read_records(&gen_path).unwrap();
        assert_eq!(parsed.len(), text.lines().count(), "unparseable (split?) line in {}", gen_path.display());
        assert!(text.ends_with('\n'), "generation must end on a record boundary");
        replayed.extend(parsed);
    }
    assert_eq!(replayed.len(), 10, "replay across generations sees every record");
    for (i, r) in replayed.iter().enumerate() {
        assert_eq!(r.query, rec(i).query, "order preserved across rotation");
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// The fingerprint folds literals and whitespace but preserves structure:
/// the same query shape with different constants collides, a different
/// repetition bound does not.
#[test]
fn fingerprint_ignores_literals_and_whitespace() {
    let a = fingerprint("Retrieve P From PATHS P Where P MATCHES VM()->[Vertical()]{1,4}->Host(host_id=1015)");
    let b = fingerprint("Retrieve  P  From PATHS P Where P MATCHES VM() -> [Vertical()]{1,4} -> Host(host_id=7)");
    let c = fingerprint("Retrieve P From PATHS P Where P MATCHES VM()->[Vertical()]{1,6}->Host(host_id=1015)");
    let d = fingerprint("Retrieve P From PATHS P Where P MATCHES VM()->[Vertical()]{1,4}->Host(name='x-7')");
    assert_eq!(a, b, "literals and spacing must not change the fingerprint");
    assert_ne!(a, c, "repetition bounds are structural");
    assert_ne!(a, d, "predicate field names are structural");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any generated two-atom RPE keeps its fingerprint when the predicate
    /// literal and the padding around arrows change, and changes it when
    /// the repetition bounds change.
    #[test]
    fn fingerprint_stable_over_generated_rpes(
        // src (3) x dst (2) x pad_a (3) x pad_b (3) shapes, mixed-radix.
        shape in 0usize..54,
        lo in 1u32..3,
        extra in 0u32..4,
        lits in (0i64..1_000_000, 0i64..1_000_000),
    ) {
        let src = ["VM", "Host", "VNF"][shape % 3];
        let dst = ["Host", "Server"][(shape / 3) % 2];
        let pad_a = ["", " ", "  "][(shape / 6) % 3];
        let pad_b = ["", " ", "\t"][(shape / 18) % 3];
        let (lit_a, lit_b) = lits;
        let hi = lo + extra;
        let q = |lit: i64, pad: &str| {
            format!(
                "Retrieve P From PATHS P Where P MATCHES {src}(){pad}->{pad}[Vertical()]{{{lo},{hi}}}{pad}->{pad}{dst}(x={lit})"
            )
        };
        prop_assert_eq!(
            fingerprint(&q(lit_a, pad_a)),
            fingerprint(&q(lit_b, pad_b)),
            "literal/pad variants must share a fingerprint"
        );
        let bumped = format!(
            "Retrieve P From PATHS P Where P MATCHES {src}()->[Vertical()]{{{lo},{}}}->{dst}(x={lit_a})",
            hi + 1
        );
        prop_assert!(
            fingerprint(&q(lit_a, pad_a)) != fingerprint(&bumped),
            "changing a repetition bound must change the fingerprint"
        );
    }
}
