//! Acceptance tests for the incremental resource accounting: under
//! arbitrary interleavings of inserts, updates, deletes (including
//! same-instant rewrites and cascades), the incrementally maintained
//! [`memory_report`] must agree with the brute-force [`memory_recount`]
//! walk within 1% — in practice, exactly.
//!
//! [`memory_report`]: nepal::graph::TemporalGraph::memory_report
//! [`memory_recount`]: nepal::graph::TemporalGraph::memory_recount

use std::sync::Arc;

use nepal::graph::{MemoryReport, TemporalGraph, Uid};
use nepal::schema::dsl::parse_schema;
use nepal::schema::{Schema, Value};
use nepal::workload::{alive_edges, apply_churn, generate_virtualized, updatable_entities, ChurnParams, VirtParams};
use proptest::prelude::*;

fn schema() -> Arc<Schema> {
    Arc::new(
        parse_schema(
            r#"
            node VM { vm_id: int unique, status: str }
            node Host { host_id: int }
            edge HostedOn { weight: int }
            allow HostedOn (VM -> Host)
            "#,
        )
        .unwrap(),
    )
}

fn rel_err(a: u64, b: u64) -> f64 {
    if b == 0 {
        if a == 0 {
            0.0
        } else {
            1.0
        }
    } else {
        (a as f64 - b as f64).abs() / b as f64
    }
}

/// Assert every figure of `report` is within 1% of `recount` (the
/// acceptance bound; the implementation actually agrees exactly).
fn assert_within_one_percent(report: &MemoryReport, recount: &MemoryReport) {
    for (what, a, b) in [
        ("entity_bytes", report.entity_bytes, recount.entity_bytes),
        ("adjacency_bytes", report.adjacency_bytes, recount.adjacency_bytes),
        ("unique_index_bytes", report.unique_index_bytes, recount.unique_index_bytes),
        ("total_bytes", report.total_bytes, recount.total_bytes),
    ] {
        assert!(rel_err(a, b) <= 0.01, "{what}: report {a} vs recount {b}");
    }
    assert_eq!(report.chain_histogram, recount.chain_histogram, "chain histogram drifted");
    for (a, b) in report.classes.iter().zip(recount.classes.iter()) {
        assert_eq!(a.class, b.class);
        assert_eq!((a.entities, a.alive, a.versions), (b.entities, b.alive, b.versions), "class {}", a.name);
        assert!(rel_err(a.bytes, b.bytes) <= 0.01, "class {} bytes: {} vs {}", a.name, a.bytes, b.bytes);
    }
}

#[derive(Debug, Clone)]
enum Op {
    InsertVm {
        id: i64,
        status: String,
    },
    InsertHost {
        id: i64,
    },
    InsertEdge {
        vm: usize,
        host: usize,
        weight: i64,
    },
    Update {
        target: usize,
        status: String,
    },
    Delete {
        target: usize,
    },
    /// Update at the same timestamp as the previous op (in-place rewrite).
    SameInstantUpdate {
        target: usize,
        status: String,
    },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0i64..10_000, "[a-z]{0,12}").prop_map(|(id, status)| Op::InsertVm { id, status }),
        (0i64..10_000).prop_map(|id| Op::InsertHost { id }),
        ((0usize..16), (0usize..16), 0i64..100).prop_map(|(vm, host, weight)| Op::InsertEdge { vm, host, weight }),
        ((0usize..32), "[a-z]{0,20}").prop_map(|(target, status)| Op::Update { target, status }),
        (0usize..32).prop_map(|target| Op::Delete { target }),
        ((0usize..32), "[a-z]{0,8}").prop_map(|(target, status)| Op::SameInstantUpdate { target, status }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn report_matches_recount_under_churn(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let s = schema();
        let vm_c = s.class_by_name("VM").unwrap();
        let host_c = s.class_by_name("Host").unwrap();
        let edge_c = s.class_by_name("HostedOn").unwrap();
        let mut g = TemporalGraph::new(s);
        let mut vms: Vec<Uid> = Vec::new();
        let mut hosts: Vec<Uid> = Vec::new();
        let mut all: Vec<Uid> = Vec::new();
        let mut ts = 0i64;
        for op in &ops {
            ts += 10;
            match op {
                Op::InsertVm { id, status } => {
                    if let Ok(u) = g.insert_node(vm_c, vec![Value::Int(*id), Value::Str(status.clone())], ts) {
                        vms.push(u);
                        all.push(u);
                    }
                }
                Op::InsertHost { id } => {
                    let u = g.insert_node(host_c, vec![Value::Int(*id)], ts).unwrap();
                    hosts.push(u);
                    all.push(u);
                }
                Op::InsertEdge { vm, host, weight } => {
                    if vms.is_empty() || hosts.is_empty() { continue; }
                    let (a, b) = (vms[vm % vms.len()], hosts[host % hosts.len()]);
                    if let Ok(u) = g.insert_edge(edge_c, a, b, vec![Value::Int(*weight)], ts) {
                        all.push(u);
                    }
                }
                Op::Update { target, status } => {
                    if vms.is_empty() { continue; }
                    let u = vms[target % vms.len()];
                    let _ = g.update(u, &[(1, Value::Str(status.clone()))], ts);
                }
                Op::Delete { target } => {
                    if all.is_empty() { continue; }
                    let u = all[target % all.len()];
                    let _ = g.delete(u, ts);
                }
                Op::SameInstantUpdate { target, status } => {
                    if vms.is_empty() { continue; }
                    let u = vms[target % vms.len()];
                    // Two updates at one timestamp: the second rewrites the
                    // first's version in place.
                    let _ = g.update(u, &[(1, Value::Str(status.clone()))], ts);
                    let _ = g.update(u, &[(1, Value::Str(format!("{status}!")))], ts);
                }
            }
        }
        let report = g.memory_report();
        let recount = g.memory_recount();
        assert_within_one_percent(&report, &recount);
        // Spot-check the invariant total.
        prop_assert_eq!(
            report.total_bytes,
            report.entity_bytes + report.adjacency_bytes + report.unique_index_bytes
        );
    }
}

#[test]
fn report_matches_recount_after_workload_churn() {
    // The real generator + churn workload (field updates and edge
    // rewires), as used by `reproduce obs-report`.
    let mut topo = generate_virtualized(VirtParams { seed: 7, ..Default::default() });
    let baseline = topo.graph.memory_report();
    assert_within_one_percent(&baseline, &topo.graph.memory_recount());

    let updatable = updatable_entities(&topo.graph, "status");
    let rewirable = alive_edges(&topo.graph);
    let params = ChurnParams { days: 30, daily_update_fraction: 0.004, daily_rewire_fraction: 0.002, seed: 7 };
    apply_churn(&mut topo.graph, &updatable, &rewirable, topo.params.start_ts, &params);

    let churned = topo.graph.memory_report();
    assert_within_one_percent(&churned, &topo.graph.memory_recount());
    assert!(churned.total_bytes > baseline.total_bytes, "churn must grow the footprint");
    assert!(churned.journal_bytes > baseline.journal_bytes);
}

#[test]
fn container_payloads_are_counted() {
    let s = Arc::new(parse_schema("node Svc { name: str, tags: list<str> }").unwrap());
    let svc = s.class_by_name("Svc").unwrap();
    let mut g = TemporalGraph::new(s);
    let u = g
        .insert_node(
            svc,
            vec![
                Value::Str("edge-cache".into()),
                Value::List(vec![Value::Str("prod".into()), Value::Str("cdn".into())]),
            ],
            10,
        )
        .unwrap();
    let before = g.memory_report();
    assert_within_one_percent(&before, &g.memory_recount());

    // Growing the list payload must grow the class bytes.
    g.update(u, &[(1, Value::List((0..8).map(|i| Value::Str(format!("tag-number-{i}"))).collect()))], 20).unwrap();
    let after = g.memory_report();
    assert_within_one_percent(&after, &g.memory_recount());
    assert!(after.entity_bytes > before.entity_bytes);
}
