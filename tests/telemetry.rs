//! End-to-end observability acceptance tests: hierarchical traces through
//! the full engine, cross-wire client/server correlation over a real TCP
//! Gremlin server, Chrome trace-event export validity, and the telemetry
//! HTTP endpoint over a real socket.

use std::io::{Read, Write};
use std::sync::Arc;

use parking_lot::RwLock;

use nepal::core::{engine_over, BackendRegistry, Engine, GremlinBackend, NativeBackend, StandardSlos};
use nepal::graph::{resource_summary, StoreGauges, TemporalGraph};
use nepal::gremlin::{parse_json, property_graph_from, GremlinClient, GremlinServer};
use nepal::obs::{HistoryRing, SloRule, Telemetry, TelemetryServer, TRACK_SERVER};
use nepal::schema::dsl::parse_schema;
use nepal::schema::Value;

const QUERY: &str = "Retrieve P From PATHS P Where P MATCHES VM()->HostedOn()->Host(host_id=7)";

fn demo_graph() -> Arc<TemporalGraph> {
    let schema = Arc::new(
        parse_schema(
            r#"
            node VM { vm_id: int unique }
            node Host { host_id: int unique }
            edge HostedOn { }
            allow HostedOn (VM -> Host)
            "#,
        )
        .unwrap(),
    );
    let vm_class = schema.class_by_name("VM").unwrap();
    let host_class = schema.class_by_name("Host").unwrap();
    let hosted = schema.class_by_name("HostedOn").unwrap();
    let mut g = TemporalGraph::new(schema);
    let host = g.insert_node(host_class, vec![Value::Int(7)], 0).unwrap();
    for i in 0..4 {
        let vm = g.insert_node(vm_class, vec![Value::Int(50 + i)], 0).unwrap();
        g.insert_edge(hosted, vm, host, vec![], 0).unwrap();
    }
    Arc::new(g)
}

/// Chrome trace-event "X" events must parse as JSON and be well nested:
/// every child span's interval lies within its parent's.
#[test]
fn chrome_export_is_valid_json_with_well_nested_spans() {
    let mut engine = engine_over(demo_graph());
    engine.tracer.set_enabled(true);
    engine.tracer.set_sample_every(1);
    let rows = engine.query(QUERY).unwrap().rows.len();
    assert_eq!(rows, 4);

    let json = engine.tracer.export_latest_chrome().expect("a trace was recorded");
    let doc = parse_json(&json).expect("export is valid JSON");
    let events = doc.get("traceEvents").and_then(|e| e.as_arr()).expect("traceEvents array");

    // Collect complete events keyed by span id.
    let mut by_id = std::collections::BTreeMap::new();
    for ev in events {
        if ev.get("ph").and_then(|p| p.as_str()) != Some("X") {
            continue;
        }
        let id = ev.get("args").and_then(|a| a.get("span_id")).and_then(|v| v.as_u64()).expect("span_id");
        let parent = ev.get("args").and_then(|a| a.get("parent_id")).and_then(|v| v.as_u64()).expect("parent_id");
        let ts = ev.get("ts").and_then(|v| v.as_f64()).expect("ts");
        let dur = ev.get("dur").and_then(|v| v.as_f64()).expect("dur");
        by_id.insert(id, (parent, ts, dur));
    }
    assert!(by_id.len() >= 5, "expected a span tree, got {} spans", by_id.len());

    let names: Vec<&str> = events.iter().filter_map(|e| e.get("name").and_then(|n| n.as_str())).collect();
    for phase in ["parse", "plan", "execute", "join", "head"] {
        assert!(names.contains(&phase), "missing {phase} span in {names:?}");
    }

    let mut roots = 0;
    for (id, (parent, ts, dur)) in &by_id {
        if *parent == 0 {
            roots += 1;
            continue;
        }
        let (_, pts, pdur) = by_id.get(parent).unwrap_or_else(|| panic!("span {id} has unknown parent {parent}"));
        // 3-decimal µs rounding in the exporter → allow a 1ns slop.
        assert!(*ts + 0.002 >= *pts, "span {id} starts before parent {parent}");
        assert!(ts + dur <= pts + pdur + 0.002, "span {id} ends after parent {parent}");
    }
    assert_eq!(roots, 1, "exactly one root span");
}

/// Acceptance: a query through the Gremlin backend against a real TCP
/// server yields ONE trace holding both the client round-trip spans and
/// the server-side request spans (correlated via the requestId echo), and
/// that trace exports as Chrome JSON with distinct client/server threads.
#[test]
fn gremlin_query_produces_single_cross_wire_trace() {
    let graph = demo_graph();
    let registry = BackendRegistry::new("native", Box::new(NativeBackend::new(graph.clone())));
    let mut engine = Engine::new(registry);
    engine.tracer.set_enabled(true);
    engine.tracer.set_sample_every(1);

    let pg = Arc::new(RwLock::new(property_graph_from(&graph)));
    let server = GremlinServer::start_addr(pg, "127.0.0.1:0", Some(engine.tracer.clone())).unwrap();
    let client = GremlinClient::new(server.connect().unwrap());
    engine.registry.add("gremlin", Box::new(GremlinBackend::new(client, graph.schema().clone())));

    let q = QUERY.replace("From PATHS P", "From PATHS P USING gremlin");
    let rows = engine.query(&q).unwrap().rows.len();
    assert_eq!(rows, 4);

    // Find the engine's trace for the query (the ring also holds the
    // server's own gremlin:request traces).
    let summaries = engine.tracer.summaries();
    let qt = summaries.iter().find(|s| s.name.contains("USING gremlin")).expect("query trace recorded");
    let trace = engine.tracer.get(qt.id).unwrap();

    let round_trips: Vec<_> = trace.spans.iter().filter(|s| s.name == "gremlin:round-trip").collect();
    assert!(!round_trips.is_empty(), "client round-trip spans in the query trace");
    let server_spans: Vec<_> = trace.spans.iter().filter(|s| s.track == TRACK_SERVER).collect();
    assert!(!server_spans.is_empty(), "server-side spans grafted into the same trace");
    assert!(
        server_spans.iter().any(|s| s.name == "evaluate"),
        "server evaluate phase present: {:?}",
        server_spans.iter().map(|s| &s.name).collect::<Vec<_>>()
    );
    // Correlation: each grafted server span carries the request id of a
    // client round trip.
    for s in &server_spans {
        let rid = s.attrs.iter().find(|(k, _)| k == "requestId").map(|(_, v)| v.as_str()).expect("requestId attr");
        assert!(
            round_trips.iter().any(|rt| rt.attrs.iter().any(|(k, v)| k == "request_id" && v == rid)),
            "server span {} correlates with a client round trip",
            s.name
        );
    }

    // The server also recorded its own request trace.
    assert!(summaries.iter().any(|s| s.name == "gremlin:request"), "server-side request trace in the ring");

    // Chrome export shows both sides as separate named threads.
    let json = engine.tracer.export_chrome(qt.id).unwrap();
    let doc = parse_json(&json).unwrap();
    let thread_names: Vec<&str> = doc
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .unwrap()
        .iter()
        .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
        .filter_map(|e| e.get("args").and_then(|a| a.get("name")).and_then(|n| n.as_str()))
        .collect();
    assert!(thread_names.contains(&"client"), "client thread in {thread_names:?}");
    assert!(thread_names.contains(&"server"), "server thread in {thread_names:?}");
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    write!(s, "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n").unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    let status: u16 = resp.split_whitespace().nth(1).unwrap().parse().unwrap();
    let body = resp.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

/// The telemetry endpoint answers real HTTP over a real socket.
#[test]
fn telemetry_endpoint_serves_metrics_and_health_over_socket() {
    let mut engine = engine_over(demo_graph());
    engine.tracer.set_enabled(true);
    engine.tracer.set_sample_every(1);
    engine.query(QUERY).unwrap();

    let telemetry = Arc::new(Telemetry::new(engine.metrics.clone(), engine.slow_log.clone(), engine.tracer.clone()));
    telemetry.add_health("store", || Ok("ok".into()));
    let server = TelemetryServer::start(telemetry, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let (status, body) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("nepal_queries_total 1"), "{body}");
    assert!(body.contains("nepal_query_duration_ns_p50"), "quantiles exported: {body}");

    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(body.contains("\"store\""), "{body}");

    let (status, body) = http_get(addr, "/metrics.json");
    assert_eq!(status, 200);
    assert!(parse_json(&body).is_ok(), "metrics.json parses: {body}");

    // The trace ring is reachable through the endpoint too.
    let id = engine.tracer.latest_id().unwrap();
    let (status, body) = http_get(addr, &format!("/traces/{id}"));
    assert_eq!(status, 200);
    assert!(body.contains("traceEvents"), "{body}");

    let (status, _) = http_get(addr, "/nope");
    assert_eq!(status, 404);
}

/// Satellite: `/metrics` must be a conformant Prometheus 0.0.4 exposition
/// — versioned Content-Type, one HELP/TYPE per family, `_total` counter
/// names — and stay intact under many concurrent scrapes.
#[test]
fn metrics_exposition_survives_concurrent_scrapes() {
    let mut engine = engine_over(demo_graph());
    for _ in 0..3 {
        engine.query(QUERY).unwrap();
    }
    let telemetry = Arc::new(Telemetry::new(engine.metrics.clone(), engine.slow_log.clone(), engine.tracer.clone()));
    let server = TelemetryServer::start(telemetry, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // Content-Type conformance on a raw response.
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    write!(s, "GET /metrics HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    assert!(resp.contains("Content-Type: text/plain; version=0.0.4"), "{resp}");

    // 8 scraping threads, 5 scrapes each; every body must be complete and
    // internally consistent (every sample's family has HELP and TYPE).
    let workers: Vec<_> = (0..8)
        .map(|_| {
            std::thread::spawn(move || {
                for _ in 0..5 {
                    let (status, body) = http_get(addr, "/metrics");
                    assert_eq!(status, 200);
                    assert!(body.contains("nepal_queries_total 3"), "truncated body: {body}");
                    for line in body.lines() {
                        if line.is_empty() || line.starts_with('#') {
                            continue;
                        }
                        let name = line.split(['{', ' ']).next().unwrap();
                        let family = name
                            .strip_suffix("_bucket")
                            .or_else(|| name.strip_suffix("_sum"))
                            .or_else(|| name.strip_suffix("_count"))
                            .unwrap_or(name);
                        assert!(
                            body.contains(&format!("# HELP {family} ")) || body.contains(&format!("# HELP {name} ")),
                            "no HELP for {name}"
                        );
                        assert!(
                            body.contains(&format!("# TYPE {family} ")) || body.contains(&format!("# TYPE {name} ")),
                            "no TYPE for {name}"
                        );
                    }
                }
            })
        })
        .collect();
    for w in workers {
        w.join().unwrap();
    }
}

/// A client that sends half a request and stalls must not block other
/// scrapers (thread-per-connection with a read timeout).
#[test]
fn slow_client_does_not_starve_other_scrapers() {
    let engine = engine_over(demo_graph());
    let telemetry = Arc::new(Telemetry::new(engine.metrics.clone(), engine.slow_log.clone(), engine.tracer.clone()));
    let server = TelemetryServer::start(telemetry, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // Hold a half-written request open on one connection…
    let mut stalled = std::net::TcpStream::connect(addr).unwrap();
    stalled.write_all(b"GET /metr").unwrap();
    // …and a second one that connects but never writes at all.
    let _silent = std::net::TcpStream::connect(addr).unwrap();

    let t0 = std::time::Instant::now();
    let (status, body) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("nepal_"), "{body}");
    assert!(t0.elapsed() < std::time::Duration::from_millis(1500), "scrape blocked behind stalled clients");
}

/// Workload introspection end to end: engine queries land in the shared
/// statement table, `/top.json` attributes per-fingerprint cost,
/// `/history.json` serves the ticked ring, the statement gauges ride the
/// scrape, and `?deep=1` is the only path that walks the store.
#[test]
fn top_and_history_routes_attribute_workload_over_socket() {
    let graph = demo_graph();
    let mut engine = engine_over(graph.clone());
    let stmt = engine.enable_stmt(32);
    let gauges = Arc::new(StoreGauges::register(&engine.metrics));

    let telemetry = Arc::new(Telemetry::new(engine.metrics.clone(), engine.slow_log.clone(), engine.tracer.clone()));
    telemetry.set_stmt(stmt);
    let history = Arc::new(HistoryRing::new(std::time::Duration::from_millis(0), 16));
    telemetry.set_history(history);
    {
        let (gauges, graph) = (gauges.clone(), graph.clone());
        telemetry.add_refresher(move || gauges.refresh(&graph));
    }
    {
        let (gauges, graph) = (gauges, graph);
        telemetry.add_deep_refresher(move || {
            gauges.refresh_deep(&graph);
        });
    }

    for _ in 0..3 {
        engine.query(QUERY).unwrap();
    }
    // Resolution clamps to 1ms, so back-to-back ticks in the same
    // millisecond are (correctly) rejected — tick until two are admitted.
    let mut admitted = 0;
    while admitted < 2 {
        if telemetry.tick_history() {
            admitted += 1;
        } else {
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }

    let server = TelemetryServer::start(telemetry, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let (status, body) = http_get(addr, "/top.json");
    assert_eq!(status, 200);
    let doc = parse_json(&body).expect("top.json parses");
    let stmts = doc.get("statements").and_then(|s| s.as_arr()).expect("statements array");
    assert_eq!(stmts.len(), 1, "one fingerprint for the repeated query: {body}");
    let top = &stmts[0];
    assert_eq!(top.get("calls").and_then(|c| c.as_u64()), Some(3));
    assert!(top.get("rows").and_then(|r| r.as_u64()).unwrap_or(0) > 0, "{body}");
    assert!(top.get("bytes_scanned").and_then(|b| b.as_u64()).unwrap_or(0) > 0, "{body}");
    assert!(top.get("fingerprint").and_then(|f| f.as_str()).is_some(), "{body}");

    let (status, body) = http_get(addr, "/history.json");
    assert_eq!(status, 200);
    let doc = parse_json(&body).expect("history.json parses");
    let snaps = doc.get("snapshots").and_then(|s| s.as_arr()).expect("snapshots array");
    assert!(snaps.len() >= 2, "two ticks -> two snapshots: {body}");

    // Cheap scrape carries stmt gauges and live store totals, but not the
    // deep-walk-only chain distribution; ?deep=1 adds it.
    let (_, body) = http_get(addr, "/metrics");
    assert!(body.contains("nepal_stmt_calls 3"), "{body}");
    assert!(body.contains("nepal_store_total_bytes"), "{body}");
    assert!(!body.contains("nepal_store_chain_entities"), "deep families must wait for ?deep=1: {body}");
    let (_, body) = http_get(addr, "/metrics?deep=1");
    assert!(body.contains("nepal_store_chain_entities"), "{body}");

    let (status, body) = http_get(addr, "/top");
    assert_eq!(status, 200);
    assert!(body.contains("calls"), "{body}");
}

/// Acceptance: induced overload (an impossible latency SLO) flips
/// `/healthz` to 503 and `/alerts` to firing; once the breach window
/// drains, both recover.
#[test]
fn induced_overload_flips_healthz_and_alerts_then_resolves() {
    let graph = demo_graph();
    let mut engine = engine_over(graph.clone());
    let telemetry = Arc::new(Telemetry::new(engine.metrics.clone(), engine.slow_log.clone(), engine.tracer.clone()));

    // Standard rules (healthy thresholds) plus one impossible latency rule.
    let slo = engine.install_standard_slos(&StandardSlos::default());
    slo.add(SloRule::latency("induced-overload", "nepal_query_duration_ns", 0.99, 1));
    telemetry.set_slo(slo.clone());
    let gauges = Arc::new(StoreGauges::register(&engine.metrics));
    {
        let (gauges, graph) = (gauges.clone(), graph.clone());
        telemetry.add_refresher(move || {
            gauges.refresh_deep(&graph);
        });
    }
    {
        let graph = graph.clone();
        telemetry.set_resources(move || resource_summary(&graph.memory_report()));
    }
    let server = TelemetryServer::start(telemetry, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    // Before any query: empty window, healthy.
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"store\""), "deep healthz carries store watermarks: {body}");

    // Breach: any real query's p99 exceeds 1ns. Every endpoint hit
    // evaluates (and thereby drains) the window, so re-breach before each
    // probe of the firing phase.
    engine.query(QUERY).unwrap();
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 503, "overload must flip healthz: {body}");
    assert!(body.contains("\"status\":\"unhealthy\""), "{body}");
    engine.query(QUERY).unwrap();
    let (status, body) = http_get(addr, "/alerts");
    assert_eq!(status, 200);
    assert!(body.contains("induced-overload") && body.contains("firing"), "{body}");
    engine.query(QUERY).unwrap();
    let (_, json) = http_get(addr, "/alerts.json");
    assert!(json.contains("\"firing\":1"), "{json}");

    // No new observations: the next evaluation sees an empty window and
    // the alert resolves; healthz recovers.
    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200, "alert must resolve once the window drains: {body}");
    let (_, body) = http_get(addr, "/alerts");
    assert!(!body.contains("firing"), "{body}");

    // The dashboard renders through all of this.
    let (status, body) = http_get(addr, "/dashboard");
    assert_eq!(status, 200);
    assert!(body.contains("<html") || body.contains("<!doctype"), "{body}");
    assert!(body.contains("induced-overload"), "dashboard lists alert rules: {body}");
}
