//! End-to-end observability acceptance tests: hierarchical traces through
//! the full engine, cross-wire client/server correlation over a real TCP
//! Gremlin server, Chrome trace-event export validity, and the telemetry
//! HTTP endpoint over a real socket.

use std::io::{Read, Write};
use std::sync::Arc;

use parking_lot::RwLock;

use nepal::core::{engine_over, BackendRegistry, Engine, GremlinBackend, NativeBackend};
use nepal::graph::TemporalGraph;
use nepal::gremlin::{parse_json, property_graph_from, GremlinClient, GremlinServer};
use nepal::obs::{Telemetry, TelemetryServer, TRACK_SERVER};
use nepal::schema::dsl::parse_schema;
use nepal::schema::Value;

const QUERY: &str = "Retrieve P From PATHS P Where P MATCHES VM()->HostedOn()->Host(host_id=7)";

fn demo_graph() -> Arc<TemporalGraph> {
    let schema = Arc::new(
        parse_schema(
            r#"
            node VM { vm_id: int unique }
            node Host { host_id: int unique }
            edge HostedOn { }
            allow HostedOn (VM -> Host)
            "#,
        )
        .unwrap(),
    );
    let vm_class = schema.class_by_name("VM").unwrap();
    let host_class = schema.class_by_name("Host").unwrap();
    let hosted = schema.class_by_name("HostedOn").unwrap();
    let mut g = TemporalGraph::new(schema);
    let host = g.insert_node(host_class, vec![Value::Int(7)], 0).unwrap();
    for i in 0..4 {
        let vm = g.insert_node(vm_class, vec![Value::Int(50 + i)], 0).unwrap();
        g.insert_edge(hosted, vm, host, vec![], 0).unwrap();
    }
    Arc::new(g)
}

/// Chrome trace-event "X" events must parse as JSON and be well nested:
/// every child span's interval lies within its parent's.
#[test]
fn chrome_export_is_valid_json_with_well_nested_spans() {
    let mut engine = engine_over(demo_graph());
    engine.tracer.set_enabled(true);
    engine.tracer.set_sample_every(1);
    let rows = engine.query(QUERY).unwrap().rows.len();
    assert_eq!(rows, 4);

    let json = engine.tracer.export_latest_chrome().expect("a trace was recorded");
    let doc = parse_json(&json).expect("export is valid JSON");
    let events = doc.get("traceEvents").and_then(|e| e.as_arr()).expect("traceEvents array");

    // Collect complete events keyed by span id.
    let mut by_id = std::collections::BTreeMap::new();
    for ev in events {
        if ev.get("ph").and_then(|p| p.as_str()) != Some("X") {
            continue;
        }
        let id = ev.get("args").and_then(|a| a.get("span_id")).and_then(|v| v.as_u64()).expect("span_id");
        let parent = ev.get("args").and_then(|a| a.get("parent_id")).and_then(|v| v.as_u64()).expect("parent_id");
        let ts = ev.get("ts").and_then(|v| v.as_f64()).expect("ts");
        let dur = ev.get("dur").and_then(|v| v.as_f64()).expect("dur");
        by_id.insert(id, (parent, ts, dur));
    }
    assert!(by_id.len() >= 5, "expected a span tree, got {} spans", by_id.len());

    let names: Vec<&str> = events.iter().filter_map(|e| e.get("name").and_then(|n| n.as_str())).collect();
    for phase in ["parse", "plan", "execute", "join", "head"] {
        assert!(names.contains(&phase), "missing {phase} span in {names:?}");
    }

    let mut roots = 0;
    for (id, (parent, ts, dur)) in &by_id {
        if *parent == 0 {
            roots += 1;
            continue;
        }
        let (_, pts, pdur) = by_id.get(parent).unwrap_or_else(|| panic!("span {id} has unknown parent {parent}"));
        // 3-decimal µs rounding in the exporter → allow a 1ns slop.
        assert!(*ts + 0.002 >= *pts, "span {id} starts before parent {parent}");
        assert!(ts + dur <= pts + pdur + 0.002, "span {id} ends after parent {parent}");
    }
    assert_eq!(roots, 1, "exactly one root span");
}

/// Acceptance: a query through the Gremlin backend against a real TCP
/// server yields ONE trace holding both the client round-trip spans and
/// the server-side request spans (correlated via the requestId echo), and
/// that trace exports as Chrome JSON with distinct client/server threads.
#[test]
fn gremlin_query_produces_single_cross_wire_trace() {
    let graph = demo_graph();
    let registry = BackendRegistry::new("native", Box::new(NativeBackend::new(graph.clone())));
    let mut engine = Engine::new(registry);
    engine.tracer.set_enabled(true);
    engine.tracer.set_sample_every(1);

    let pg = Arc::new(RwLock::new(property_graph_from(&graph)));
    let server = GremlinServer::start_addr(pg, "127.0.0.1:0", Some(engine.tracer.clone())).unwrap();
    let client = GremlinClient::new(server.connect().unwrap());
    engine.registry.add("gremlin", Box::new(GremlinBackend::new(client, graph.schema().clone())));

    let q = QUERY.replace("From PATHS P", "From PATHS P USING gremlin");
    let rows = engine.query(&q).unwrap().rows.len();
    assert_eq!(rows, 4);

    // Find the engine's trace for the query (the ring also holds the
    // server's own gremlin:request traces).
    let summaries = engine.tracer.summaries();
    let qt = summaries.iter().find(|s| s.name.contains("USING gremlin")).expect("query trace recorded");
    let trace = engine.tracer.get(qt.id).unwrap();

    let round_trips: Vec<_> = trace.spans.iter().filter(|s| s.name == "gremlin:round-trip").collect();
    assert!(!round_trips.is_empty(), "client round-trip spans in the query trace");
    let server_spans: Vec<_> = trace.spans.iter().filter(|s| s.track == TRACK_SERVER).collect();
    assert!(!server_spans.is_empty(), "server-side spans grafted into the same trace");
    assert!(
        server_spans.iter().any(|s| s.name == "evaluate"),
        "server evaluate phase present: {:?}",
        server_spans.iter().map(|s| &s.name).collect::<Vec<_>>()
    );
    // Correlation: each grafted server span carries the request id of a
    // client round trip.
    for s in &server_spans {
        let rid = s.attrs.iter().find(|(k, _)| k == "requestId").map(|(_, v)| v.as_str()).expect("requestId attr");
        assert!(
            round_trips.iter().any(|rt| rt.attrs.iter().any(|(k, v)| k == "request_id" && v == rid)),
            "server span {} correlates with a client round trip",
            s.name
        );
    }

    // The server also recorded its own request trace.
    assert!(summaries.iter().any(|s| s.name == "gremlin:request"), "server-side request trace in the ring");

    // Chrome export shows both sides as separate named threads.
    let json = engine.tracer.export_chrome(qt.id).unwrap();
    let doc = parse_json(&json).unwrap();
    let thread_names: Vec<&str> = doc
        .get("traceEvents")
        .and_then(|e| e.as_arr())
        .unwrap()
        .iter()
        .filter(|e| e.get("name").and_then(|n| n.as_str()) == Some("thread_name"))
        .filter_map(|e| e.get("args").and_then(|a| a.get("name")).and_then(|n| n.as_str()))
        .collect();
    assert!(thread_names.contains(&"client"), "client thread in {thread_names:?}");
    assert!(thread_names.contains(&"server"), "server thread in {thread_names:?}");
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> (u16, String) {
    let mut s = std::net::TcpStream::connect(addr).unwrap();
    write!(s, "GET {path} HTTP/1.1\r\nHost: localhost\r\nConnection: close\r\n\r\n").unwrap();
    let mut resp = String::new();
    s.read_to_string(&mut resp).unwrap();
    let status: u16 = resp.split_whitespace().nth(1).unwrap().parse().unwrap();
    let body = resp.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

/// The telemetry endpoint answers real HTTP over a real socket.
#[test]
fn telemetry_endpoint_serves_metrics_and_health_over_socket() {
    let mut engine = engine_over(demo_graph());
    engine.tracer.set_enabled(true);
    engine.tracer.set_sample_every(1);
    engine.query(QUERY).unwrap();

    let telemetry = Arc::new(Telemetry::new(engine.metrics.clone(), engine.slow_log.clone(), engine.tracer.clone()));
    telemetry.add_health("store", || Ok("ok".into()));
    let server = TelemetryServer::start(telemetry, "127.0.0.1:0").unwrap();
    let addr = server.local_addr();

    let (status, body) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("nepal_queries_total 1"), "{body}");
    assert!(body.contains("nepal_query_duration_ns_p50"), "quantiles exported: {body}");

    let (status, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(body.contains("\"store\""), "{body}");

    let (status, body) = http_get(addr, "/metrics.json");
    assert_eq!(status, 200);
    assert!(parse_json(&body).is_ok(), "metrics.json parses: {body}");

    // The trace ring is reachable through the endpoint too.
    let id = engine.tracer.latest_id().unwrap();
    let (status, body) = http_get(addr, &format!("/traces/{id}"));
    assert_eq!(status, 200);
    assert!(body.contains("traceEvents"), "{body}");

    let (status, _) = http_get(addr, "/nope");
    assert_eq!(status, 404);
}
