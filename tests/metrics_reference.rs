//! Doc-sync: the metrics reference table in DESIGN.md §5h must stay in
//! lockstep with what the code actually registers. The test instruments a
//! full engine the way `nepal-serve` does — store gauges (cheap + deep),
//! statement attribution, access heatmap, SLO engine — then diffs the
//! registry's family list against the table. A missing or stale row fails
//! with the exact markdown to paste.

use std::collections::BTreeMap;
use std::sync::Arc;

use nepal::core::{engine_over, StandardSlos};
use nepal::graph::{GraphView, StoreGauges, TemporalGraph, TimeFilter};
use nepal::rpe::{evaluate_metered, parse_rpe, plan_rpe, EvalOptions, GraphEstimator, Seeds};
use nepal::schema::dsl::parse_schema;
use nepal::schema::Value;

fn demo_graph() -> Arc<TemporalGraph> {
    let schema = Arc::new(
        parse_schema(
            r#"
            node VM { vm_id: int unique }
            node Host { host_id: int unique }
            edge HostedOn { }
            allow HostedOn (VM -> Host)
            "#,
        )
        .unwrap(),
    );
    let vm_class = schema.class_by_name("VM").unwrap();
    let host_class = schema.class_by_name("Host").unwrap();
    let hosted = schema.class_by_name("HostedOn").unwrap();
    let mut g = TemporalGraph::new(schema);
    let host = g.insert_node(host_class, vec![Value::Int(7)], 0).unwrap();
    for i in 0..2 {
        let vm = g.insert_node(vm_class, vec![Value::Int(50 + i)], 0).unwrap();
        g.insert_edge(hosted, vm, host, vec![], 0).unwrap();
    }
    Arc::new(g)
}

/// Families registered only by the long-running binaries (server wire
/// stats in `nepal-serve`'s refresher); listed in the doc, not
/// instantiable from a test.
const BINARY_ONLY: &[&str] = &[
    "nepal_serve_shed_total",
    "nepal_serve_deadline_total",
    "nepal_serve_cancelled_total",
    "nepal_serve_requests_total",
    "nepal_serve_queue_depth",
    "nepal_serve_inflight",
];

#[test]
fn design_metrics_reference_matches_registry() {
    let graph = demo_graph();
    let mut engine = engine_over(graph.clone());
    let _slo = engine.install_standard_slos(&StandardSlos::default());
    let stmt = engine.enable_stmt(16);
    let gauges = StoreGauges::register(&engine.metrics);
    engine.query("Retrieve P From PATHS P Where P MATCHES VM()->HostedOn()->Host(host_id=7)").unwrap();
    gauges.refresh_deep(&graph);
    stmt.export(&engine.metrics);
    // The `nepal_rpe_*` families register only when the work-stealing
    // evaluator actually runs; force one parallel evaluation so the diff
    // below is independent of the ambient NEPAL_THREADS setting.
    {
        let view = GraphView::new(&graph, TimeFilter::Current);
        let rpe = parse_rpe("VM()->HostedOn()->Host()").unwrap();
        let plan = plan_rpe(graph.schema(), &rpe, &GraphEstimator { graph: &graph }).unwrap();
        let opts = EvalOptions { threads: 2, ..Default::default() };
        evaluate_metered(
            &view,
            &plan,
            Seeds::Anchor,
            &opts,
            None,
            &nepal::obs::SpanHandle::none(),
            Some(&engine.metrics),
        )
        .unwrap();
    }

    let registered: BTreeMap<String, (&'static str, String)> =
        engine.metrics.families().into_iter().map(|(name, kind, help)| (name, (kind, help))).collect();

    let design = std::fs::read_to_string(concat!(env!("CARGO_MANIFEST_DIR"), "/DESIGN.md")).unwrap();
    // Table rows look like: | `nepal_foo` | gauge | source | help text |
    let documented: BTreeMap<String, String> = design
        .lines()
        .filter_map(|l| {
            let mut cells = l.split('|').map(str::trim);
            cells.next()?; // leading empty cell
            let name = cells.next()?.strip_prefix('`')?.strip_suffix('`')?;
            let kind = cells.next()?;
            name.starts_with("nepal_").then(|| (name.to_string(), kind.to_string()))
        })
        .collect();

    let mut errors = Vec::new();
    for (name, (kind, help)) in &registered {
        match documented.get(name) {
            None => errors.push(format!("missing from DESIGN.md §5h:\n| `{name}` | {kind} | {help} |")),
            Some(doc_kind) if doc_kind != kind => {
                errors.push(format!("DESIGN.md lists `{name}` as {doc_kind}, registry says {kind}"))
            }
            Some(_) => {}
        }
    }
    for name in documented.keys() {
        if !registered.contains_key(name) && !BINARY_ONLY.contains(&name.as_str()) {
            errors.push(format!("stale row in DESIGN.md §5h: `{name}` is no longer registered"));
        }
    }
    for name in BINARY_ONLY {
        if !documented.contains_key(*name) {
            errors.push(format!("binary-only family `{name}` missing from DESIGN.md §5h"));
        }
    }
    assert!(errors.is_empty(), "metrics reference out of sync:\n{}", errors.join("\n"));
}
