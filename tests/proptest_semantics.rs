//! Property tests: the NFA-based anchored evaluator agrees with an
//! independent *reference implementation* of the paper's §3.3 pathway
//! satisfaction semantics (recursive, directly following the four
//! concatenation conditions), on randomized graphs and a corpus of RPEs.

use std::sync::Arc;

use nepal::graph::{GraphView, TemporalGraph, TimeFilter, Uid};
use nepal::rpe::{evaluate, parse_rpe, plan_rpe, BoundAtom, EvalOptions, GraphEstimator, Norm, Rpe, Seeds};
use nepal::schema::dsl::parse_schema;
use nepal::schema::{Schema, Value};
use proptest::prelude::*;

const SCHEMA: &str = r#"
    node A { aid: int unique, color: str }
    node B : A { }
    node C { cid: int unique }
    edge X { weight: int }
    edge Y : X { }
    edge Z { weight2: int }
"#;

/// A direct recursive implementation of §3.3 satisfaction over the
/// normalized (repetition-free) form, using the same bound atoms.
fn ref_matches_norm(g: &TemporalGraph, atoms: &[BoundAtom], norm: &Norm, path: &[Uid]) -> bool {
    match norm {
        Norm::Atom(a) => {
            if path.len() != 1 {
                return false;
            }
            let atom = &atoms[*a as usize];
            let uid = path[0];
            if g.is_node(uid) != atom.is_node {
                return false;
            }
            let class = g.class_of(uid).unwrap();
            if !g.schema().is_subclass(class, atom.class) {
                return false;
            }
            match g.current_version(uid) {
                Some(v) => atom.matches_fields(v.fields()),
                None => false,
            }
        }
        Norm::Alt(parts) => parts.iter().any(|p| ref_matches_norm(g, atoms, p, path)),
        Norm::Seq(parts) => {
            // Left-fold binary concatenation with the 4-way split rule.
            fn concat(g: &TemporalGraph, atoms: &[BoundAtom], left: &[Norm], right: &Norm, path: &[Uid]) -> bool {
                for k in 0..=path.len() {
                    // Adjacent split (conditions 1/2).
                    if seq_matches(g, atoms, left, &path[..k]) && ref_matches_norm(g, atoms, right, &path[k..]) {
                        return true;
                    }
                    // Skip exactly one element at the boundary (3/4).
                    if k < path.len()
                        && seq_matches(g, atoms, left, &path[..k])
                        && ref_matches_norm(g, atoms, right, &path[k + 1..])
                    {
                        return true;
                    }
                }
                false
            }
            fn seq_matches(g: &TemporalGraph, atoms: &[BoundAtom], parts: &[Norm], path: &[Uid]) -> bool {
                match parts.len() {
                    0 => false,
                    1 => ref_matches_norm(g, atoms, &parts[0], path),
                    n => concat(g, atoms, &parts[..n - 1], &parts[n - 1], path),
                }
            }
            seq_matches(g, atoms, parts, path)
        }
    }
}

/// Whole-pathway satisfaction: the core form, possibly with implicit
/// endpoint nodes stripped ("a single edge has implicit nodes at its
/// endpoints"). Stripping a node from a node-initial RPE can never help,
/// so trying all combinations is equivalent to the NFA wrapper.
fn ref_matches(g: &TemporalGraph, atoms: &[BoundAtom], norm: &Norm, path: &[Uid]) -> bool {
    if path.is_empty() || !g.is_node(path[0]) || !g.is_node(*path.last().unwrap()) {
        return false;
    }
    let n = path.len();
    if ref_matches_norm(g, atoms, norm, path) {
        return true;
    }
    if n > 1 && ref_matches_norm(g, atoms, norm, &path[1..]) {
        return true;
    }
    if n > 1 && ref_matches_norm(g, atoms, norm, &path[..n - 1]) {
        return true;
    }
    n > 2 && ref_matches_norm(g, atoms, norm, &path[1..n - 1])
}

/// Enumerate every simple alternating pathway up to `max_elems` elements.
fn all_pathways(g: &TemporalGraph, max_elems: usize) -> Vec<Vec<Uid>> {
    let mut out = Vec::new();
    let nodes: Vec<Uid> =
        (0..g.num_entities() as u64).map(Uid).filter(|&u| g.is_node(u) && g.current_version(u).is_some()).collect();
    fn dfs(g: &TemporalGraph, path: &mut Vec<Uid>, max: usize, out: &mut Vec<Vec<Uid>>) {
        out.push(path.clone());
        if path.len() + 2 > max {
            return;
        }
        let last = *path.last().unwrap();
        for adj in g.out_adj(last) {
            if g.current_version(adj.edge).is_none() || g.current_version(adj.other).is_none() {
                continue;
            }
            if path.contains(&adj.edge) || path.contains(&adj.other) {
                continue;
            }
            path.push(adj.edge);
            path.push(adj.other);
            dfs(g, path, max, out);
            path.pop();
            path.pop();
        }
    }
    for n in nodes {
        let mut path = vec![n];
        dfs(g, &mut path, max_elems, &mut out);
    }
    out
}

fn build_graph(seed: u64, n_nodes: usize, n_edges: usize) -> TemporalGraph {
    let schema: Arc<Schema> = Arc::new(parse_schema(SCHEMA).unwrap());
    let mut g = TemporalGraph::new(schema.clone());
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut rng = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let classes = ["A", "B", "C"];
    let colors = ["red", "green"];
    let mut nodes = Vec::new();
    for i in 0..n_nodes {
        let cls = classes[(rng() % 3) as usize];
        let c = schema.class_by_name(cls).unwrap();
        let fields = if cls == "C" {
            vec![Value::Int(i as i64)]
        } else {
            vec![Value::Int(i as i64), Value::Str(colors[(rng() % 2) as usize].into())]
        };
        nodes.push(g.insert_node(c, fields, 0).unwrap());
    }
    let edge_classes = ["X", "Y", "Z"];
    for _ in 0..n_edges {
        let cls = edge_classes[(rng() % 3) as usize];
        let c = schema.class_by_name(cls).unwrap();
        let a = nodes[(rng() as usize) % nodes.len()];
        let b = nodes[(rng() as usize) % nodes.len()];
        if a == b {
            continue;
        }
        let _ = g.insert_edge(c, a, b, vec![Value::Int((rng() % 10) as i64)], 0);
    }
    g
}

const RPES: &[&str] = &[
    "A(aid=0)",
    "B()",
    "A(color='red')->A(color='green')",
    "A(aid=1)->[X()]{1,3}->C()",
    "X()->Y()",
    "(A(aid=0)|C(cid=1))",
    "A(aid=2)->X()->C()",
    "[Y()]{1,2}->A(aid=0)",
    "C(cid=0)->(X()|Z()){1,2}->A()",
    "A(aid=3)->[X(weight>=5)]{1,2}->A()",
    // Alternation of sequences, repetition of a sequence, exact bounds.
    "(A(aid=0)->X()|C(cid=0)->Z())->A()",
    "[X()->Y()]{1,2}->C(cid=2)",
    "A(aid=1)->[X()]{2,3}->B()",
    "B(color='red')->Y()->B(color='red')",
];

fn check_rpe_on_graph(g: &TemporalGraph, rpe_text: &str) {
    let rpe: Rpe = parse_rpe(rpe_text).unwrap();
    let plan = plan_rpe(g.schema(), &rpe, &GraphEstimator { graph: g }).unwrap();
    let view = GraphView::new(g, TimeFilter::Current);
    let engine_paths: std::collections::HashSet<Vec<Uid>> =
        evaluate(&view, &plan, Seeds::Anchor, &EvalOptions::default()).into_iter().map(|p| p.elems).collect();
    // Reference: brute-force over every simple pathway up to the plan's
    // length limit.
    let mut ref_paths = std::collections::HashSet::new();
    for path in all_pathways(g, plan.max_elements.min(7)) {
        if ref_matches(g, &plan.atoms, &plan.norm, &path) {
            ref_paths.insert(path);
        }
    }
    // The engine may legitimately find longer matches than the brute-force
    // bound; compare only up to the enumeration limit.
    let engine_limited: std::collections::HashSet<Vec<Uid>> =
        engine_paths.iter().filter(|p| p.len() <= plan.max_elements.min(7)).cloned().collect();
    assert_eq!(
        ref_paths,
        engine_limited,
        "semantics mismatch for `{rpe_text}`:\n  reference-only: {:?}\n  engine-only: {:?}",
        ref_paths.difference(&engine_limited).collect::<Vec<_>>(),
        engine_limited.difference(&ref_paths).collect::<Vec<_>>(),
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn nfa_engine_agrees_with_reference_semantics(seed in 0u64..5000) {
        let g = build_graph(seed, 7, 10);
        for rpe in RPES {
            check_rpe_on_graph(&g, rpe);
        }
    }

    #[test]
    fn rpe_parser_round_trips(seed in 0u64..10_000) {
        // Pick a corpus entry and mutate predicate constants — the printed
        // form must re-parse to an identical AST.
        let idx = (seed as usize) % RPES.len();
        let ast = parse_rpe(RPES[idx]).unwrap();
        let printed = ast.to_string();
        let reparsed = parse_rpe(&printed).unwrap();
        prop_assert_eq!(ast, reparsed);
    }
}

#[test]
fn dense_graph_regression() {
    // A denser deterministic case that historically exercises the
    // combination of alternation anchors and boundary skips.
    let g = build_graph(424242, 9, 20);
    for rpe in RPES {
        check_rpe_on_graph(&g, rpe);
    }
}
