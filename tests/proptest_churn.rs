//! Churn property tests: the store's delta-encoded version chains must be
//! bit-identical to an uncompressed shadow store at every step.
//!
//! The shadow keeps every version fully materialized (span + complete field
//! vector) and mirrors the store's documented mutation semantics by hand:
//! same-instant updates rewrite the head in place (rebasing the backward
//! delta beneath it), same-instant insert+delete drops the head version
//! entirely (re-fulling the one below), and node deletes cascade to all
//! currently asserted incident edges. After every operation the store's
//! chains — materialized through the keyframe/delta machinery — must match
//! the shadow exactly, and the structural invariants (head is full, every
//! keyframe slot is full) must hold.

use std::collections::HashMap;
use std::sync::Arc;

use nepal::graph::{materialize_version, Interval, TemporalGraph, Uid, FOREVER, KEYFRAME_INTERVAL};
use nepal::schema::dsl::parse_schema;
use nepal::schema::{Schema, Value};
use proptest::prelude::*;

fn schema() -> Arc<Schema> {
    Arc::new(
        parse_schema(
            "node VM   { status: str }\n\
             edge Link { status: str }",
        )
        .unwrap(),
    )
}

/// Uncompressed mirror of the store: full field vectors for every version.
#[derive(Default)]
struct Shadow {
    versions: HashMap<Uid, Vec<(Interval, Vec<Value>)>>,
    /// Edge uid -> endpoints, for replaying delete cascades.
    edges: HashMap<Uid, (Uid, Uid)>,
    nodes: Vec<Uid>,
    all: Vec<Uid>,
}

impl Shadow {
    fn alive(&self, uid: Uid) -> bool {
        self.versions.get(&uid).and_then(|v| v.last()).is_some_and(|(span, _)| span.to == FOREVER)
    }

    fn insert(&mut self, uid: Uid, fields: Vec<Value>, ts: i64, endpoints: Option<(Uid, Uid)>) {
        self.versions.insert(uid, vec![(Interval::new(ts, FOREVER), fields)]);
        match endpoints {
            Some(e) => {
                self.edges.insert(uid, e);
            }
            None => self.nodes.push(uid),
        }
        self.all.push(uid);
    }

    fn update(&mut self, uid: Uid, fields: Vec<Value>, ts: i64) {
        let chain = self.versions.get_mut(&uid).unwrap();
        let last = chain.last_mut().unwrap();
        if last.0.from == ts {
            // Same-instant rewrite: no zero-length version.
            last.1 = fields;
        } else {
            last.0 = Interval::new(last.0.from, ts);
            chain.push((Interval::new(ts, FOREVER), fields));
        }
    }

    fn close(&mut self, uid: Uid, ts: i64) {
        let chain = self.versions.get_mut(&uid).unwrap();
        let last = chain.last_mut().unwrap();
        if last.0.from == ts {
            // Inserted and deleted at the same instant: the version never
            // existed for any observable time.
            chain.pop();
        } else {
            last.0 = Interval::new(last.0.from, ts);
        }
    }

    /// Delete with the store's cascade semantics: a node takes all its
    /// currently asserted incident edges with it.
    fn delete(&mut self, uid: Uid, ts: i64) {
        if !self.edges.contains_key(&uid) {
            let incident: Vec<Uid> = self
                .edges
                .iter()
                .filter(|(e, (s, d))| (*s == uid || *d == uid) && self.alive(**e))
                .map(|(e, _)| *e)
                .collect();
            for e in incident {
                self.close(e, ts);
            }
        }
        self.close(uid, ts);
    }
}

/// Every chain in the store must match the shadow bit-for-bit: same number
/// of versions, same spans, and identical field values once the store's
/// keyframe/delta representation is materialized.
fn assert_chains_identical(g: &TemporalGraph, shadow: &Shadow) {
    for &uid in &shadow.all {
        let got = g.versions(uid);
        let want = &shadow.versions[&uid];
        prop_assert_eq!(got.len(), want.len(), "chain length for uid {:?}", uid);
        for (i, (span, fields)) in want.iter().enumerate() {
            prop_assert_eq!(&got[i].span, span, "span of uid {:?} version {}", uid, i);
            let mat = materialize_version(got, i);
            prop_assert_eq!(mat.as_ref(), fields.as_slice(), "fields of uid {:?} version {}", uid, i);
            // Structural invariants the readers rely on: the chain head and
            // every keyframe slot are stored full, never as deltas.
            if i == got.len() - 1 || i % KEYFRAME_INTERVAL == 0 {
                prop_assert!(!got[i].is_delta(), "uid {:?} version {} must be full", uid, i);
            }
        }
    }
}

#[derive(Debug, Clone)]
enum Op {
    InsertNode { status: String, advance: bool },
    InsertEdge { a: usize, b: usize, advance: bool },
    Update { target: usize, status: String, advance: bool },
    Delete { target: usize, advance: bool },
}

fn update_strategy() -> impl Strategy<Value = Op> {
    (0usize..24, "[a-c]{1,3}", any::<bool>()).prop_map(|(target, status, advance)| Op::Update {
        target,
        status,
        advance,
    })
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // The vendored proptest's `prop_oneof!` is unweighted; repeating the
    // update arm skews the mix toward chain growth (the delta-encoding path
    // under test) without starving inserts, edges, and cascades.
    prop_oneof![
        ("[a-c]{1,3}", any::<bool>()).prop_map(|(status, advance)| Op::InsertNode { status, advance }),
        (0usize..16, 0usize..16, any::<bool>()).prop_map(|(a, b, advance)| Op::InsertEdge { a, b, advance }),
        update_strategy(),
        update_strategy(),
        update_strategy(),
        (0usize..24, any::<bool>()).prop_map(|(target, advance)| Op::Delete { target, advance }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Random interleavings of inserts, updates (half of them same-instant),
    /// deletes (with cascades), and edge churn.
    #[test]
    fn churned_chains_match_uncompressed_shadow(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let s = schema();
        let vm = s.class_by_name("VM").unwrap();
        let link = s.class_by_name("Link").unwrap();
        let mut g = TemporalGraph::new(s);
        let mut shadow = Shadow::default();
        let mut ts = 10i64;
        for op in &ops {
            match op {
                Op::InsertNode { status, advance } => {
                    if *advance { ts += 10; }
                    let u = g.insert_node(vm, vec![Value::Str(status.clone())], ts).unwrap();
                    shadow.insert(u, vec![Value::Str(status.clone())], ts, None);
                }
                Op::InsertEdge { a, b, advance } => {
                    if shadow.nodes.is_empty() { continue; }
                    if *advance { ts += 10; }
                    let src = shadow.nodes[a % shadow.nodes.len()];
                    let dst = shadow.nodes[b % shadow.nodes.len()];
                    let ok = shadow.alive(src) && shadow.alive(dst);
                    let fields = vec![Value::Str("up".into())];
                    let got = g.insert_edge(link, src, dst, fields.clone(), ts);
                    prop_assert_eq!(got.is_ok(), ok, "insert_edge {:?}->{:?} at {}", src, dst, ts);
                    if let Ok(u) = got {
                        shadow.insert(u, fields, ts, Some((src, dst)));
                    }
                }
                Op::Update { target, status, advance } => {
                    if shadow.all.is_empty() { continue; }
                    if *advance { ts += 10; }
                    let u = shadow.all[target % shadow.all.len()];
                    let ok = shadow.alive(u);
                    let got = g.update(u, &[(0, Value::Str(status.clone()))], ts);
                    prop_assert_eq!(got.is_ok(), ok, "update {:?} at {}", u, ts);
                    if got.is_ok() {
                        shadow.update(u, vec![Value::Str(status.clone())], ts);
                    }
                }
                Op::Delete { target, advance } => {
                    if shadow.all.is_empty() { continue; }
                    if *advance { ts += 10; }
                    let u = shadow.all[target % shadow.all.len()];
                    let ok = shadow.alive(u);
                    let got = g.delete(u, ts);
                    prop_assert_eq!(got.is_ok(), ok, "delete {:?} at {}", u, ts);
                    if got.is_ok() {
                        shadow.delete(u, ts);
                    }
                }
            }
            assert_chains_identical(&g, &shadow);
        }
        // Incremental byte accounting must agree with a from-scratch recount
        // after the whole churn history (deltas, rebases, dropped heads).
        prop_assert_eq!(g.memory_report(), g.memory_recount());
    }

    /// Deep single-entity chains: enough updates to cross several keyframe
    /// boundaries, with same-instant rewrites landing on arbitrary slots
    /// (including keyframes and delta-rebase positions).
    #[test]
    fn deep_chain_matches_shadow_across_keyframes(
        steps in proptest::collection::vec(("[a-d]{1,2}", any::<bool>()), 1..48),
        close_at_end in any::<bool>(),
    ) {
        let s = schema();
        let vm = s.class_by_name("VM").unwrap();
        let mut g = TemporalGraph::new(s);
        let mut shadow = Shadow::default();
        let mut ts = 10i64;
        let u = g.insert_node(vm, vec![Value::Str("init".into())], ts).unwrap();
        shadow.insert(u, vec![Value::Str("init".into())], ts, None);
        for (status, advance) in &steps {
            if *advance { ts += 10; }
            g.update(u, &[(0, Value::Str(status.clone()))], ts).unwrap();
            shadow.update(u, vec![Value::Str(status.clone())], ts);
            assert_chains_identical(&g, &shadow);
        }
        if close_at_end {
            ts += 10;
            g.delete(u, ts).unwrap();
            shadow.delete(u, ts);
            assert_chains_identical(&g, &shadow);
        }
        prop_assert_eq!(g.memory_report(), g.memory_recount());
    }
}
