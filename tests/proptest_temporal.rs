//! Property tests for the temporal machinery: interval-set algebra laws,
//! time-slice consistency against an operation replay, and snapshot-diff
//! idempotence.

use std::collections::HashMap;
use std::sync::Arc;

use nepal::graph::{Interval, IntervalSet, SnapshotLoader, SnapshotNode, TemporalGraph, Uid};
use nepal::schema::dsl::parse_schema;
use nepal::schema::{Schema, Value};
use proptest::prelude::*;

fn interval_strategy() -> impl Strategy<Value = Interval> {
    (0i64..200, 1i64..60).prop_map(|(a, len)| Interval::new(a, a + len))
}

fn set_strategy() -> impl Strategy<Value = IntervalSet> {
    proptest::collection::vec(interval_strategy(), 0..8).prop_map(IntervalSet::from_intervals)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn interval_set_invariants(ivs in proptest::collection::vec(interval_strategy(), 0..10)) {
        let s = IntervalSet::from_intervals(ivs.clone());
        // Sorted, disjoint, non-adjacent.
        for w in s.intervals().windows(2) {
            prop_assert!(w[0].to < w[1].from, "not disjoint/sorted: {:?}", s);
        }
        // Membership agrees with the raw inputs.
        for t in 0..270 {
            let raw = ivs.iter().any(|iv| iv.contains(t));
            prop_assert_eq!(s.contains(t), raw, "contains({}) mismatch", t);
        }
    }

    #[test]
    fn union_and_intersection_laws(a in set_strategy(), b in set_strategy()) {
        let u = a.union(&b);
        let i = a.intersect(&b);
        prop_assert_eq!(&u, &b.union(&a), "union commutes");
        prop_assert_eq!(&i, &b.intersect(&a), "intersection commutes");
        prop_assert_eq!(&a.union(&a), &a, "union idempotent");
        prop_assert_eq!(&a.intersect(&a), &a, "intersection idempotent");
        for t in 0..270 {
            prop_assert_eq!(u.contains(t), a.contains(t) || b.contains(t));
            prop_assert_eq!(i.contains(t), a.contains(t) && b.contains(t));
        }
    }

    #[test]
    fn distributivity(a in set_strategy(), b in set_strategy(), c in set_strategy()) {
        let left = a.intersect(&b.union(&c));
        let right = a.intersect(&b).union(&a.intersect(&c));
        prop_assert_eq!(left, right);
    }
}

// ---------------------------------------------------------------------
// Time-slice consistency: as_of(t) == replay of operations ≤ t.
// ---------------------------------------------------------------------

#[derive(Debug, Clone)]
enum Op {
    Insert { status: String },
    Update { target: usize, status: String },
    Delete { target: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        "[a-d]{1,3}".prop_map(|status| Op::Insert { status }),
        ((0usize..12), "[a-d]{1,3}").prop_map(|(target, status)| Op::Update { target, status }),
        (0usize..12).prop_map(|target| Op::Delete { target }),
    ]
}

fn schema() -> Arc<Schema> {
    Arc::new(parse_schema("node VM { status: str }").unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn as_of_matches_operation_replay(ops in proptest::collection::vec(op_strategy(), 1..25)) {
        let s = schema();
        let vm = s.class_by_name("VM").unwrap();
        let mut g = TemporalGraph::new(s);
        let mut uids: Vec<Uid> = Vec::new();
        // Apply ops at ts = 10, 20, 30, …
        let mut applied: Vec<(i64, Op, Option<Uid>)> = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let ts = (i as i64 + 1) * 10;
            match op {
                Op::Insert { status } => {
                    let u = g.insert_node(vm, vec![Value::Str(status.clone())], ts).unwrap();
                    uids.push(u);
                    applied.push((ts, op.clone(), Some(u)));
                }
                Op::Update { target, status } => {
                    if uids.is_empty() { continue; }
                    let u = uids[target % uids.len()];
                    if g.update(u, &[(0, Value::Str(status.clone()))], ts).is_ok() {
                        applied.push((ts, op.clone(), Some(u)));
                    }
                }
                Op::Delete { target } => {
                    if uids.is_empty() { continue; }
                    let u = uids[target % uids.len()];
                    if g.delete(u, ts).is_ok() {
                        applied.push((ts, op.clone(), Some(u)));
                    }
                }
            }
        }
        // Replay to every probe time and compare with version_at.
        for probe in [5i64, 15, 25, 55, 105, 1000] {
            let mut expect: HashMap<Uid, Option<String>> = HashMap::new();
            for (ts, op, uid) in &applied {
                if *ts > probe { break; }
                let u = uid.unwrap();
                match op {
                    Op::Insert { status } | Op::Update { status, .. } => {
                        expect.insert(u, Some(status.clone()));
                    }
                    Op::Delete { .. } => {
                        expect.insert(u, None);
                    }
                }
            }
            for &u in &uids {
                let got = g.fields_at(u, probe).map(|f| match &f[0] {
                    Value::Str(s) => s.clone(),
                    _ => unreachable!(),
                });
                let want = expect.get(&u).cloned().flatten();
                prop_assert_eq!(got, want, "uid {:?} at t={}", u, probe);
            }
        }
    }

    #[test]
    fn snapshot_application_is_idempotent(
        statuses in proptest::collection::vec("[a-c]{1,2}", 1..10)
    ) {
        let s = schema();
        let vm = s.class_by_name("VM").unwrap();
        let mut g = TemporalGraph::new(s);
        let mut loader = SnapshotLoader::new();
        let nodes: Vec<SnapshotNode> = statuses
            .iter()
            .enumerate()
            .map(|(i, st)| SnapshotNode {
                ext_id: format!("n{i}"),
                class: vm,
                fields: vec![Value::Str(st.clone())],
            })
            .collect();
        let first = loader.apply(&mut g, 10, &nodes, &[]).unwrap();
        prop_assert_eq!(first.inserted, nodes.len());
        let versions_after_first = g.num_versions();
        // Re-applying the identical snapshot is a no-op.
        let second = loader.apply(&mut g, 20, &nodes, &[]).unwrap();
        prop_assert_eq!(second.inserted + second.updated + second.deleted, 0);
        prop_assert_eq!(g.num_versions(), versions_after_first);
    }
}
