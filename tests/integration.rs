//! Cross-crate integration tests: the full stack end to end — ONAP-scale
//! workload, the three backends returning identical answers through the
//! engine, translator snapshots, and the wire protocol over real TCP.

use std::sync::Arc;

use nepal::core::{engine_over, Backend, BackendRegistry, Engine, GremlinBackend, NativeBackend, RelationalBackend};
use nepal::gremlin::{property_graph_from, GremlinClient, GremlinServer};
use nepal::schema::Value;
use nepal::workload::{generate_virtualized, VirtParams};
use parking_lot::RwLock;

fn small_topo() -> nepal::workload::VirtTopology {
    generate_virtualized(VirtParams {
        services: 3,
        vnfs_per_service: 2,
        vfcs_per_vnf: 3,
        containers_per_vfc: 2,
        hosts: 12,
        tor_switches: 4,
        spine_switches: 2,
        routers: 2,
        vnets: 8,
        vrouters: 4,
        racks: 2,
        datacenters: 1,
        ..Default::default()
    })
}

#[test]
fn all_three_backends_agree_through_the_engine() {
    let topo = small_topo();
    let graph = Arc::new(topo.graph);
    let queries = [
        "Retrieve P From PATHS P Where P MATCHES VNF()->[Vertical()]{1,6}->Host()",
        "Retrieve P From PATHS P Where P MATCHES Container(status='Green')->OnServer()->Host()",
        "Retrieve P From PATHS P Where P MATCHES ComposedOf()->ComposedOf()",
    ];

    let collect = |engine: &mut Engine| -> Vec<Vec<Vec<u64>>> {
        queries
            .iter()
            .map(|q| {
                let r = engine.query(q).unwrap();
                let mut v: Vec<Vec<u64>> =
                    r.rows.iter().map(|row| row.pathways[0].1.elems.iter().map(|u| u.0).collect()).collect();
                v.sort();
                v
            })
            .collect()
    };

    let mut native = engine_over(graph.clone());
    let native_results = collect(&mut native);

    let rel = RelationalBackend::from_graph(&graph).unwrap();
    let mut rel_engine = Engine::new(BackendRegistry::new("pg", Box::new(rel)));
    let rel_results = collect(&mut rel_engine);
    assert_eq!(native_results, rel_results, "relational differs");

    let pg = Arc::new(RwLock::new(property_graph_from(&graph)));
    let server = GremlinServer::start(pg).unwrap();
    let client = GremlinClient::new(server.connect().unwrap());
    let gremlin = GremlinBackend::new(client, graph.schema().clone());
    let mut g_engine = Engine::new(BackendRegistry::new("g", Box::new(gremlin)));
    let g_results = collect(&mut g_engine);
    assert_eq!(native_results, g_results, "gremlin differs");
}

#[test]
fn translator_snapshots() {
    // The generated SQL has the §5.2 shape: Select into a TEMP table, then
    // Extends joining per-class tables with uid_list cycle predicates.
    let topo = small_topo();
    let graph = Arc::new(topo.graph);
    let rel = RelationalBackend::from_graph(&graph).unwrap();
    let mut engine = Engine::new(BackendRegistry::new("pg", Box::new(rel)));
    let vnf_id = match &graph.current_version(topo.vnfs[0]).unwrap().fields()[0] {
        Value::Int(i) => *i,
        _ => unreachable!(),
    };
    engine
        .query(&format!("Retrieve P From PATHS P Where P MATCHES VNF(vnf_id={vnf_id})->[Vertical()]{{1,6}}->Host()"))
        .unwrap();
    let sql = engine.registry.get(Some("pg")).unwrap().last_generated().join("\n");
    for needle in [
        "create TEMP table tmp_select_node_1",
        "ARRAY[N.id_] as uid_list",
        "concept_list",
        "NOT H.id_ = ANY(T.uid_list)",
        "where N.vnf_id = ",
    ] {
        assert!(sql.contains(needle), "missing `{needle}` in:\n{sql}");
    }
    // The DDL phase renders INHERITS.
    let mut db = nepal::relational::RelDb::new();
    let ddl = nepal::relational::create_schema(&mut db, graph.schema()).unwrap();
    assert!(ddl.iter().any(|d| d.contains("INHERITS(vm)")));
    assert!(ddl.iter().any(|d| d.starts_with("CREATE TABLE uids")));
}

#[test]
fn wire_protocol_survives_concurrent_clients() {
    let topo = small_topo();
    let graph = Arc::new(topo.graph);
    let pg = Arc::new(RwLock::new(property_graph_from(&graph)));
    let server = GremlinServer::start(pg).unwrap();
    let addr = server.addr;
    let mut handles = Vec::new();
    for _ in 0..4 {
        let h = std::thread::spawn(move || {
            let conn = std::net::TcpStream::connect(addr).unwrap();
            conn.set_nodelay(true).unwrap();
            let mut client = GremlinClient::new(conn);
            let mut total = 0usize;
            for _ in 0..20 {
                total +=
                    client.submit(&[nepal::gremlin::GStep::V(vec![]), nepal::gremlin::GStep::Count]).unwrap().len();
            }
            total
        });
        handles.push(h);
    }
    for h in handles {
        assert_eq!(h.join().unwrap(), 20);
    }
}

#[test]
fn engine_handles_onap_scale_default_topology() {
    // Full default scale (~2k nodes / ~11k edges): a realistic end-to-end
    // smoke test of the query pipeline.
    let topo = generate_virtualized(VirtParams::default());
    let graph = Arc::new(topo.graph);
    let mut engine = engine_over(graph.clone());
    let r = engine
        .query(
            "Select source(P).vnf_name From PATHS P \
             Where P MATCHES VNF()->[Vertical()]{1,6}->Host(host_id=1015)",
        )
        .unwrap();
    // host_id 1015 may or may not exist depending on id assignment; the
    // query must simply run. Check a guaranteed-nonempty one as well.
    let _ = r;
    let vnf_id = match &graph.current_version(topo.vnfs[0]).unwrap().fields()[0] {
        Value::Int(i) => *i,
        _ => unreachable!(),
    };
    let r2 = engine
        .query(&format!(
            "Select target(P).host_id From PATHS P \
             Where P MATCHES VNF(vnf_id={vnf_id})->[Vertical()]{{1,6}}->Host()"
        ))
        .unwrap();
    assert!(!r2.rows.is_empty());
}

#[test]
fn backend_trait_objects_compose() {
    // The registry accepts heterogeneous trait objects and routes by name.
    let topo = small_topo();
    let graph = Arc::new(topo.graph);
    let mut registry = BackendRegistry::new("native", Box::new(NativeBackend::new(graph.clone())));
    registry.add("pg", Box::new(RelationalBackend::from_graph(&graph).unwrap()) as Box<dyn Backend>);
    let mut engine = Engine::new(registry);
    let r = engine
        .query(
            "Retrieve A, B From PATHS A, PATHS B USING pg \
             Where A MATCHES VNF()->ComposedOf()->VFC() \
             And B MATCHES VFC()->OnVM()->Container() \
             And target(A) = source(B)",
        )
        .unwrap();
    assert!(!r.rows.is_empty());
    for row in &r.rows {
        let a = &row.pathways.iter().find(|(v, _)| v == "A").unwrap().1;
        let b = &row.pathways.iter().find(|(v, _)| v == "B").unwrap().1;
        assert_eq!(a.target(), b.source());
    }
}
