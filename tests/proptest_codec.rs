//! Property tests for the canonical value codec (journal persistence) and
//! the GraphSON-lite JSON codec: arbitrary nested values must round-trip
//! exactly through both encodings.

use nepal::gremlin::json::{json_to_value, value_to_json};
use nepal::gremlin::parse_json;
use nepal::schema::codec::{value_from_text, value_to_text};
use nepal::schema::Value;
use proptest::prelude::*;

fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        Just(Value::Null),
        any::<bool>().prop_map(Value::Bool),
        any::<i64>().prop_map(Value::Int),
        // Finite floats only for the JSON codec (NaN is tested separately
        // in the unit tests; JSON numbers cannot carry NaN).
        (-1e15..1e15f64).prop_map(Value::Float),
        "[ -~]{0,12}".prop_map(Value::Str),
        (0i64..2_000_000_000_000_000).prop_map(Value::Ts),
        prop_oneof![
            Just(Value::Ip("10.1.2.3".parse().unwrap())),
            Just(Value::Ip("::1".parse().unwrap())),
            Just(Value::Ip("fe80::42".parse().unwrap())),
        ],
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::List),
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::set),
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Composite),
            proptest::collection::btree_map(inner.clone(), inner, 0..3).prop_map(Value::Map),
        ]
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn journal_codec_round_trips(v in value_strategy()) {
        let text = value_to_text(&v);
        let back = value_from_text(&text)
            .unwrap_or_else(|e| panic!("decode failed: {e} for `{text}`"));
        prop_assert_eq!(&v, &back);
        // Encoding is canonical: re-encoding the decoded value is identical.
        prop_assert_eq!(text, value_to_text(&back));
    }

    #[test]
    fn graphson_codec_round_trips(v in value_strategy()) {
        let j = value_to_json(&v);
        let wire = j.to_string();
        let parsed = parse_json(&wire)
            .unwrap_or_else(|e| panic!("json parse failed: {e} for `{wire}`"));
        // Float fidelity through JSON text is approximate for exotic
        // values; compare via the decoded Value, which uses tag objects
        // with exact bit patterns only for the journal codec. Here we
        // assert structural equality, accepting float text round-trip.
        let back = json_to_value(&parsed);
        prop_assert_eq!(normalize(&v), normalize(&back));
    }
}

/// Collapse float values to their shortest-text representation so JSON
/// round-trips compare stably.
fn normalize(v: &Value) -> Value {
    match v {
        Value::Float(f) => Value::Float(format!("{f}").parse().unwrap()),
        Value::List(x) => Value::List(x.iter().map(normalize).collect()),
        Value::Set(x) => Value::set(x.iter().map(normalize).collect()),
        Value::Composite(x) => Value::Composite(x.iter().map(normalize).collect()),
        Value::Map(m) => Value::Map(m.iter().map(|(k, v)| (normalize(k), normalize(v))).collect()),
        other => other.clone(),
    }
}
