//! Temporal forensics over a churning inventory (§4).
//!
//! Builds the virtualized service graph, runs 60 days of maintenance
//! churn, and answers the paper's history questions: "What was the
//! physical and virtual footprint of a VNF, and how did it evolve over
//! time? Between timestamps t1 and t2, which network paths flowed through
//! a given network element?"
//!
//! ```text
//! cargo run --example temporal_forensics
//! ```

use std::sync::Arc;

use nepal::core::engine_over;
use nepal::schema::{format_ts, Value};
use nepal::workload::{apply_churn, generate_virtualized, updatable_entities, ChurnParams, VirtParams};

fn main() {
    let mut topo = generate_virtualized(VirtParams::default());
    let updatable = updatable_entities(&topo.graph, "status");
    let stats = apply_churn(
        &mut topo.graph,
        &updatable,
        &[],
        topo.params.start_ts,
        &ChurnParams { days: 60, daily_update_fraction: 0.003, daily_rewire_fraction: 0.0, seed: 5 },
    );
    println!(
        "applied {} updates over 60 days; history is {:.1}% larger than the snapshot",
        stats.updates,
        stats.history_growth * 100.0
    );
    let graph = Arc::new(topo.graph);
    let mut engine = engine_over(graph.clone());

    let vnf_id = match &graph.current_version(topo.vnfs[0]).unwrap().fields()[0] {
        Value::Int(i) => *i,
        _ => unreachable!(),
    };

    // When has this VNF been fully placed on host infrastructure?
    let r = engine
        .query(&format!(
            "First Time When Exists From PATHS P \
             Where P MATCHES VNF(vnf_id={vnf_id})->[Vertical()]{{1,6}}->Host()"
        ))
        .unwrap();
    if let Some(row) = r.rows.first() {
        if let Value::Ts(t) = row.values[0] {
            println!("\nVNF {vnf_id} first fully placed at {}", format_ts(t));
        }
    }

    // Which Green containers carried it during a mid-history window — with
    // maximal assertion ranges?
    let w1 = "2017-03-01 00:00";
    let w2 = "2017-03-15 00:00";
    let r = engine
        .query(&format!(
            "AT '{w1}' : '{w2}' Retrieve P From PATHS P \
             Where P MATCHES VNF(vnf_id={vnf_id})->[Vertical()]{{1,4}}->Container(status='Green')"
        ))
        .unwrap();
    println!("\nGreen placements during [{w1}, {w2}]: {} pathways", r.rows.len());
    for row in r.rows.iter().take(4) {
        let p = &row.pathways[0].1;
        println!("  {} asserted {}", p.display(&graph), row.times.as_ref().map(|t| t.to_string()).unwrap_or_default());
    }

    // The §4 two-snapshot join: same VNF placed on the same host at both
    // the start and the end of the history.
    let host_id = {
        let r = engine
            .query(&format!(
                "Select target(P).host_id From PATHS P \
                 Where P MATCHES VNF(vnf_id={vnf_id})->[Vertical()]{{1,6}}->Host()"
            ))
            .unwrap();
        r.rows[0].values[0].clone()
    };
    let r = engine
        .query(&format!(
            "Select source(P) From PATHS P(@'2017-02-15 10:00'), PATHS Q(@'2017-04-01 10:00') \
             Where P MATCHES VNF()->[Vertical()]{{1,6}}->Host(host_id={host_id}) \
             And Q MATCHES VNF()->[Vertical()]{{1,6}}->Host(host_id={host_id}) \
             And source(P) = source(Q)"
        ))
        .unwrap();
    println!("\nVNFs on host {host_id} at BOTH 2017-02-15 and 2017-04-01: {}", r.rows.len());

    // Path evolution for one pathway: the §4 visualization drill-down.
    let r = engine
        .query(&format!(
            "Retrieve P From PATHS P \
             Where P MATCHES VNF(vnf_id={vnf_id})->[Vertical()]{{1,4}}->Container()"
        ))
        .unwrap();
    let path = &r.rows[0].pathways[0].1;
    println!("\nevolution of {}:", path.display(&graph));
    for ev in nepal::core::path_evolution(&graph, path, None) {
        println!("  {}#{}: {} versions", ev.class_name, ev.uid.0, ev.versions.len());
    }
}
