//! History-based troubleshooting (§2.3.2 / §4).
//!
//! Scenario from the paper: "to diagnose an increase in dropped calls
//! starting at 10:00 am, the network engineer needs to consult the state
//! of the network at 10:00 am, not the current, e.g. 1:00 pm, state."
//!
//! We build a virtualized service topology, run maintenance churn over it
//! (a VM migration at 11:30), and then troubleshoot at 13:00 using
//! time-travel queries, shared-fate analysis, and a path change log.
//!
//! ```text
//! cargo run --example troubleshooting
//! ```

use std::sync::Arc;

use nepal::core::{change_log, engine_over};
use nepal::graph::TemporalGraph;
use nepal::schema::{parse_ts, Value};
use nepal::workload::{generate_virtualized, VirtParams};

fn main() {
    // A realistic inventory from the evaluation generator.
    let topo = generate_virtualized(VirtParams::default());
    let vnf = topo.vnfs[0];
    let mut g = topo.graph;

    // --- the incident ---------------------------------------------------
    // At 11:30 a container of our VNF is migrated: the old OnServer edge
    // is deleted and a new host is attached; its status flaps on the way.
    let t_flap = parse_ts("2017-02-12 10:00").unwrap();
    let t_migrate = parse_ts("2017-02-12 11:30").unwrap();
    // Find one container under the VNF via a query.
    let graph_tmp = Arc::new(g);
    let mut engine = engine_over(graph_tmp.clone());
    let vnf_id = match &graph_tmp.current_version(vnf).unwrap().fields()[0] {
        Value::Int(i) => *i,
        _ => unreachable!(),
    };
    let r = engine
        .query(&format!(
            "Retrieve P From PATHS P Where P MATCHES VNF(vnf_id={vnf_id})->[Vertical()]{{1,4}}->Container()"
        ))
        .unwrap();
    let container = r.rows[0].pathways[0].1.target();
    let old_path = r.rows[0].pathways[0].1.clone();
    drop(engine);
    g = Arc::try_unwrap(graph_tmp).ok().expect("sole owner");

    // Status flap, then migration (delete cascades the OnServer edge).
    g.update(container, &[(0, Value::Str("Red".into()))], t_flap).unwrap();
    g.update(container, &[(0, Value::Str("Green".into()))], t_flap + 600_000_000).unwrap();
    let old_host_edge = g
        .out_adj(container)
        .iter()
        .find(|a| {
            let c = g.class_of(a.edge).unwrap();
            g.schema().class(c).name == "OnServer"
        })
        .map(|a| a.edge)
        .expect("container has a host edge");
    g.delete(old_host_edge, t_migrate).unwrap();
    let new_host = topo.hosts[1];
    let onserver = g.schema().class_by_name("OnServer").unwrap();
    g.insert_edge(onserver, container, new_host, vec![], t_migrate + 1).unwrap();

    let graph = Arc::new(g);
    let mut engine = engine_over(graph.clone());

    // --- troubleshooting at 13:00 ----------------------------------------
    println!("== What does the service footprint look like NOW? ==");
    let now = engine
        .query(&format!(
            "Select target(P).host_id From PATHS P \
             Where P MATCHES VNF(vnf_id={vnf_id})->[Vertical()]{{1,6}}->Host()"
        ))
        .unwrap();
    println!("   hosts now: {} distinct", now.rows.len());

    println!("\n== What did it look like when the calls started dropping (10:00)? ==");
    let then = engine
        .query(&format!(
            "AT '2017-02-12 10:00' Select target(P).host_id From PATHS P \
             Where P MATCHES VNF(vnf_id={vnf_id})->[Vertical()]{{1,6}}->Host()"
        ))
        .unwrap();
    println!("   hosts at 10:00: {} distinct", then.rows.len());

    println!("\n== When exactly did the old placement exist? ==");
    let when = engine
        .query(&format!(
            "AT '2017-02-12 08:00' : '2017-02-12 13:00' Retrieve P From PATHS P \
             Where P MATCHES VNF(vnf_id={vnf_id})->[Vertical()]{{1,6}}->Host()"
        ))
        .unwrap();
    for row in when.rows.iter().take(4) {
        let p = &row.pathways[0].1;
        println!("   {} asserted {}", p.display(&graph), row.times.as_ref().map(|t| t.to_string()).unwrap_or_default());
    }

    println!("\n== Path evolution: what changed along the old path? ==");
    for ev in change_log(&graph, &old_path) {
        match ev.kind {
            nepal::core::ChangeKind::Updated => println!(
                "   {} {}#{} updated: {:?}",
                nepal::schema::format_ts(ev.at),
                ev.class_name,
                ev.uid.0,
                ev.changed.iter().map(|(f, a, b)| format!("{f}: {a} -> {b}")).collect::<Vec<_>>()
            ),
            nepal::core::ChangeKind::Deleted => {
                println!("   {} {}#{} DELETED", nepal::schema::format_ts(ev.at), ev.class_name, ev.uid.0)
            }
            nepal::core::ChangeKind::Inserted => {}
        }
    }

    println!("\n== Shared fate: what else depends on the new host? ==");
    let host_id = match &graph.current_version(new_host).unwrap().fields()[0] {
        Value::Int(i) => *i,
        _ => unreachable!(),
    };
    let fate = engine
        .query(&format!(
            "Select source(P).vnf_name From PATHS P \
             Where P MATCHES VNF()->[Vertical()]{{1,6}}->Host(host_id={host_id})"
        ))
        .unwrap();
    println!("   VNFs that would be affected by a failure of host {host_id}:");
    for row in fate.rows.iter().take(8) {
        println!("     {}", row.values[0]);
    }

    println!("\n== Why was that slow? EXPLAIN ANALYZE the footprint query ==");
    let (_, profile) = engine
        .query_profiled(&format!(
            "Retrieve P From PATHS P \
             Where P MATCHES VNF(vnf_id={vnf_id})->[Vertical()]{{1,6}}->Host()"
        ))
        .unwrap();
    print!("{}", profile.render());

    println!("\n== Engine metrics after the session (Prometheus format) ==");
    print!("{}", engine.metrics.render_prometheus());
    let _ = TemporalGraph::new(graph.schema().clone()); // keep type in scope
}
