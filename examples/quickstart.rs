//! Quickstart: define a schema, load a small inventory, and run path
//! queries — the Fig. 3 scenario from the paper.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use std::sync::Arc;

use nepal::core::engine_over;
use nepal::graph::TemporalGraph;
use nepal::schema::dsl::parse_schema;
use nepal::schema::{Schema, Value};

fn main() {
    // 1. A Nepal schema: strongly-typed node/edge classes with
    //    inheritance, plus allowed-edge (capability) rules.
    let schema: Arc<Schema> = Arc::new(
        parse_schema(
            r#"
            node VNF      { vnf_id: int unique, vnf_name: str }
            node DNS : VNF { }
            node VFC      { vfc_id: int unique }
            node Container { status: str }
            node VM : Container  { vm_id: int unique }
            node Docker : Container { docker_id: int unique }
            node Host     { host_id: int unique }
            edge Vertical { }
            edge ComposedOf : Vertical { }
            edge HostedOn : Vertical { }
            allow ComposedOf (VNF -> VFC)
            allow HostedOn (VFC -> Container)
            allow HostedOn (Container -> Host)
            "#,
        )
        .expect("schema parses"),
    );
    let c = |n: &str| schema.class_by_name(n).unwrap();

    // 2. Load a little inventory (timestamps are transaction times).
    let mut g = TemporalGraph::new(schema.clone());
    let t0 = nepal::schema::parse_ts("2017-02-01 09:00").unwrap();
    let vnf = g.insert_node(c("DNS"), vec![Value::Int(123), Value::Str("dns-east".into())], t0).unwrap();
    let vfc = g.insert_node(c("VFC"), vec![Value::Int(11)], t0).unwrap();
    let vm = g.insert_node(c("VM"), vec![Value::Str("Green".into()), Value::Int(55)], t0).unwrap();
    let host = g.insert_node(c("Host"), vec![Value::Int(23245)], t0).unwrap();
    g.insert_edge(c("ComposedOf"), vnf, vfc, vec![], t0).unwrap();
    g.insert_edge(c("HostedOn"), vfc, vm, vec![], t0).unwrap();
    g.insert_edge(c("HostedOn"), vm, host, vec![], t0).unwrap();

    // The schema would reject a VNF hosted directly on a Host:
    let err = g.insert_edge(c("HostedOn"), vnf, host, vec![], t0).unwrap_err();
    println!("schema enforcement: {err}\n");

    let graph = Arc::new(g);
    let mut engine = engine_over(graph.clone());

    // 3. The paper's first example: which VNFs land on host 23245?
    let q = "Retrieve P From PATHS P \
             WHERE P MATCHES VNF()->[Vertical()]{1,6}->Host(host_id=23245)";
    println!("query: {q}");
    let result = engine.query(q).unwrap();
    for row in &result.rows {
        for (var, p) in &row.pathways {
            println!("  {var}: {}", p.display(&graph));
        }
    }

    // 4. Select post-processing: names instead of pathways.
    let q2 = "Select source(P).vnf_name From PATHS P \
              WHERE P MATCHES VNF()->[Vertical()]{1,6}->Host(host_id=23245)";
    println!("\nquery: {q2}");
    let result = engine.query(q2).unwrap();
    for row in &result.rows {
        println!("  affected VNF: {}", row.values[0]);
    }

    // 5. The inspectable plan: Select / Extend / Union operators.
    use nepal::rpe::{parse_rpe, plan_rpe, GraphEstimator};
    let plan = plan_rpe(
        graph.schema(),
        &parse_rpe("VNF()->[Vertical()]{1,6}->Host(host_id=23245)").unwrap(),
        &GraphEstimator { graph: &graph },
    )
    .unwrap();
    println!("\noperator plan:");
    for op in plan.operators() {
        println!("  {op}");
    }
}
