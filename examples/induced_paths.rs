//! Induced paths across layers (§2.3.2).
//!
//! "Determining an induced path for a given network path at a different
//! layer includes calculating the corresponding network elements by
//! traversing the layers vertically, and then calculating the induced path
//! at that layer. For example, if a service path includes VNFs 1, 2, and
//! 3, determining the corresponding induced path at the physical layer
//! will require to calculate the physical servers over which the VNFs run,
//! and the paths between those physical servers."
//!
//! ```text
//! cargo run --example induced_paths
//! ```

use std::sync::Arc;

use nepal::core::engine_over;
use nepal::schema::Value;
use nepal::workload::{generate_virtualized, VirtParams};

fn main() {
    let topo = generate_virtualized(VirtParams::default());
    let graph = Arc::new(topo.graph);
    let mut engine = engine_over(graph.clone());

    // A service-layer data flow: two VNFs of the same service.
    let vnf_id = |u| match &graph.current_version(u).unwrap().fields()[0] {
        Value::Int(i) => *i,
        _ => unreachable!(),
    };
    let (vnf_a, vnf_b) = (topo.vnfs[0], topo.vnfs[1]);
    println!("service-layer flow: VNF {} -> VNF {}\n", vnf_id(vnf_a), vnf_id(vnf_b));

    // Step 1: the VNFs' physical footprints ("Calculating service
    // dependencies on physical infrastructure").
    for (label, vnf) in [("A", vnf_a), ("B", vnf_b)] {
        let r = engine
            .query(&format!(
                "Select target(P).host_id From PATHS P \
                 Where P MATCHES VNF(vnf_id={})->[Vertical()]{{1,6}}->Host()",
                vnf_id(vnf)
            ))
            .unwrap();
        println!("footprint of VNF {label}: {} hosts", r.rows.len());
    }

    // Step 2: the induced physical path — the paper's three-variable join.
    // D1/D2 drop to the physical layer; Phys has no anchor of its own and
    // imports one from the join (§3.4).
    let q = format!(
        "Retrieve Phys \
         From PATHS D1, PATHS D2, PATHS Phys \
         Where D1 MATCHES VNF(vnf_id={})->[Vertical()]{{1,6}}->Host() \
         And D2 MATCHES VNF(vnf_id={})->[Vertical()]{{1,6}}->Host() \
         And Phys MATCHES ConnectedTo(){{1,4}} \
         And source(Phys)=target(D1) \
         And target(Phys)=target(D2)",
        vnf_id(vnf_a),
        vnf_id(vnf_b)
    );
    let r = engine.query(&q).unwrap();
    println!("\ninduced physical paths between the footprints: {}", r.rows.len());
    let mut seen = std::collections::HashSet::new();
    for row in &r.rows {
        let phys = &row.pathways.iter().find(|(v, _)| v == "Phys").unwrap().1;
        if seen.insert(phys.elems.clone()) && seen.len() <= 5 {
            println!("  {}", phys.display(&graph));
        }
    }

    // Step 3: shared fate — which fabric switches carry BOTH footprints?
    // (The troubleshooting question: "do the data flows … share a common
    // set of elements, which may be responsible for the issue".)
    let mut shared = std::collections::HashMap::<u64, usize>::new();
    for row in &r.rows {
        let phys = &row.pathways.iter().find(|(v, _)| v == "Phys").unwrap().1;
        for n in phys.nodes() {
            *shared.entry(n.0).or_default() += 1;
        }
    }
    let mut hot: Vec<(u64, usize)> = shared.into_iter().collect();
    hot.sort_by_key(|(_, c)| std::cmp::Reverse(*c));
    println!("\nmost-shared physical elements across the induced paths:");
    for (uid, count) in hot.into_iter().take(5) {
        let class = graph.class_of(nepal::graph::Uid(uid)).unwrap();
        println!("  {}#{uid} appears in {count} induced paths", graph.schema().class(class).name);
    }
}
