//! Update-by-snapshot ingestion + persistence (§3.1).
//!
//! Simulates an A&AI-style source that delivers a full inventory snapshot
//! every day. Nepal's snapshot loader diffs each delivery into minimal
//! inserts/updates/deletes, building transaction-time history as a side
//! effect; the journal then persists the whole temporal graph and reloads
//! it bit-for-bit.
//!
//! ```text
//! cargo run --example inventory_feed
//! ```

use std::sync::Arc;

use nepal::core::engine_over;
use nepal::graph::{SnapshotLoader, TemporalGraph};
use nepal::workload::{generate_virtualized, InventoryFeed, VirtParams};

fn main() {
    // The "source of truth" inventory that will feed us snapshots.
    let origin = generate_virtualized(VirtParams::default());
    let start_ts = nepal::schema::parse_ts("2017-02-01 03:00").unwrap();
    let mut feed = InventoryFeed::from_graph(&origin.graph, "OnServer", "Host", 7, start_ts);

    // Nepal's own store starts empty and is synchronized purely from
    // snapshots.
    let mut g = TemporalGraph::new(origin.graph.schema().clone());
    let mut loader = SnapshotLoader::new();
    let (n, e) = feed.emit();
    let day0 = loader.apply(&mut g, feed.day_ts(), n, e).unwrap();
    println!("day 0: inserted {} entities from the initial snapshot", day0.inserted);

    // Two weeks of daily deliveries: a few status flips and container
    // migrations per day.
    for _ in 0..14 {
        let day = feed.advance(6, 2);
        let (n, e) = feed.emit();
        let stats = loader.apply(&mut g, feed.day_ts(), n, e).unwrap();
        println!(
            "day {:>2}: +{} / ~{} / -{}   ({} unchanged rows diffed away)",
            day, stats.inserted, stats.updated, stats.deleted, stats.unchanged
        );
    }
    println!(
        "\nafter 14 days: {} entities, {} versions (history from diffs alone)",
        g.num_entities(),
        g.num_versions()
    );

    // Persist and reload through the journal.
    let dir = std::env::temp_dir().join("nepal-feed-example");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("inventory.nj");
    nepal::graph::save_to_file(&g, &path).unwrap();
    let size = std::fs::metadata(&path).unwrap().len();
    let reloaded = nepal::graph::load_from_file(g.schema().clone(), &path).unwrap();
    println!("journal: wrote {} KB to {}, reloaded {} versions", size / 1024, path.display(), reloaded.num_versions());

    // Queries work identically on the reloaded store — including time
    // travel back to the feed's first delivery.
    let graph = Arc::new(reloaded);
    let mut engine = engine_over(graph.clone());
    let now = engine.query("Select count(P) From PATHS P Where P MATCHES Container()->OnServer()->Host()").unwrap();
    let then = engine
        .query(
            "AT '2017-02-01 04:00' Select count(P) From PATHS P \
             Where P MATCHES Container()->OnServer()->Host()",
        )
        .unwrap();
    println!("placements now: {}   placements on day 0: {}", now.rows[0].values[0], then.rows[0].values[0]);
    let moved = engine
        .query(
            "Select count(P) From PATHS P(@'2017-02-01 04:00'), PATHS Q \
             Where P MATCHES Container()->OnServer()->Host() \
             And Q MATCHES Container()->OnServer()->Host() \
             And source(P) = source(Q) And target(P) != target(Q)",
        )
        .unwrap();
    println!("containers on a different host than on day 0: {}", moved.rows[0].values[0]);
    std::fs::remove_dir_all(&dir).ok();
}
